//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! API subset the workspace's property tests use: the `proptest!` macro,
//! `prop_assert*`/`prop_assume!`, `prop_oneof!`, `Just`, `prop_map`,
//! integer/float range strategies, tuples, `collection::vec`/`btree_set`,
//! and `bool::ANY`.
//!
//! Differences from the real crate, deliberately accepted:
//! * no shrinking — a failing case panics with the sampled values' effects
//!   but does not minimize them;
//! * sampling is a deterministic xorshift sequence seeded from the test's
//!   module path and name, so runs are reproducible by construction;
//! * `collection::btree_set` may produce fewer elements than requested
//!   when duplicates collide (sets dedup).

/// Deterministic xorshift64* RNG seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a), so every test gets a
    /// distinct but stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h | 1)
    }

    /// Next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Run configuration: number of cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases sampled per property function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator. Object-safe (`prop_map` is `Sized`-gated) so
/// `prop_oneof!` can box heterogeneous strategies.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let frac = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
        self.start + frac * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let frac = rng.next_u64() as f64 / u64::MAX as f64;
        self.start() + frac * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Boxes a strategy for heterogeneous sets (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Wraps a non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Element-count specification: a fixed size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `Vec` of `size.into()` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `BTreeSet` of up to `size.into()` elements (duplicates dedup).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Everything tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{Just, ProptestConfig, Strategy};

    /// The `prop::` alias namespace (`prop::bool::ANY`,
    /// `prop::collection::vec`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                let mut run = || {
                    $(let $p = $crate::Strategy::sample(&($s), &mut rng);)+
                    $body
                };
                run();
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among the listed strategies (all must generate the same
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($s)),+])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::sample(&(1u8..=100), &mut rng);
            assert!((1..=100).contains(&w));
            let f = Strategy::sample(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn collections_and_oneof_sample() {
        let mut rng = crate::TestRng::from_name("coll");
        let strat = prop::collection::vec((0u64..10, prop::bool::ANY), 2..5);
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
        }
        let one = prop_oneof![(0u64..1).prop_map(|_| 7u64), Just(9u64),];
        for _ in 0..50 {
            let v = Strategy::sample(&one, &mut rng);
            assert!(v == 7 || v == 9);
        }
        let fixed = prop::collection::vec(0u32..4, 4);
        assert_eq!(Strategy::sample(&fixed, &mut rng).len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        fn macro_generates_tests(x in 0u64..100, mut v in prop::collection::vec(0u8..3, 0..4)) {
            prop_assume!(x != 1000); // always holds
            v.push(0);
            prop_assert!(x < 100);
            prop_assert_eq!(*v.last().unwrap(), 0);
        }
    }
}
