//! Trace-fed runtime invariant sanitizer.
//!
//! The static newtypes in this crate stop unit mixups at compile time;
//! this module catches the *accounting* bugs that still type-check —
//! a migration path that moves bytes over the link without counting
//! them, RSS exceeding physical capacity, a page table disagreeing with
//! the physical allocator. The machine feeds a [`Snapshot`] of its state
//! to a [`Sanitizer`] after every simulation phase; the sanitizer checks
//! conservation invariants and accumulates typed [`Violation`]s into a
//! [`SanitizerReport`] that lands in the run report.
//!
//! Invariants checked per snapshot:
//!
//! 1. **Link conservation** — bulk bytes moved over the link per
//!    direction equal the sum of migrated bytes plus explicit transfers
//!    recorded on the observability bus (only when tracing is on; the
//!    bus is the source of the right-hand side).
//! 2. **Capacity** — per-node usage never exceeds node capacity; on a
//!    unified pool (MI300A) the *joint* usage must fit the single pool.
//! 3. **Residency** — bytes the physical allocator attributes to a node
//!    equal what the page tables (plus fixed carve-outs) say is resident
//!    there.
//! 4. **Clock monotonicity** — virtual time never moves backwards.
//! 5. **Capability gating** — on platforms without migration support,
//!    migration counters are exactly zero.
//!
//! The sanitizer is observation-only: it never mutates simulator state,
//! never advances the clock, and never force-enables tracing, so a
//! sanitized run is bitwise-identical to an unsanitized one.

use crate::Bytes;
use std::fmt;

/// Which invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Link bulk bytes != migrated bytes + explicit transfers.
    LinkConservation,
    /// Node usage exceeds physical capacity.
    Capacity,
    /// Physical allocator and page tables disagree on residency.
    Residency,
    /// Virtual clock moved backwards.
    ClockMonotone,
    /// A capability-gated counter is non-zero on a platform lacking the
    /// capability.
    CapabilityGated,
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Invariant::LinkConservation => "link-conservation",
            Invariant::Capacity => "capacity",
            Invariant::Residency => "residency",
            Invariant::ClockMonotone => "clock-monotone",
            Invariant::CapabilityGated => "capability-gated",
        };
        f.write_str(s)
    }
}

/// One broken invariant, with the phase it was observed after.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant class.
    pub invariant: Invariant,
    /// Phase label active when the snapshot was taken.
    pub phase: String,
    /// Human-readable detail (both sides of the failed equation).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] after phase `{}`: {}",
            self.invariant, self.phase, self.detail
        )
    }
}

/// The sanitizer's verdict for a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Snapshots checked.
    pub snapshots: u64,
    /// Individual invariant checks evaluated.
    pub checks: u64,
    /// Everything that failed (empty on a healthy run).
    pub violations: Vec<Violation>,
}

impl SanitizerReport {
    /// True when every check passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sanitizer: {} snapshots, {} checks, {} violations",
            self.snapshots,
            self.checks,
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// Everything the sanitizer needs to know about the machine at a phase
/// boundary. All quantities are cumulative since machine construction.
/// Plain data: the sanitizer depends on no simulator crate, so every
/// model layer can feed it.
#[derive(Debug, Clone)]
pub struct Snapshot<'a> {
    /// Label of the phase that just ended.
    pub phase: &'a str,
    /// Virtual clock reading.
    pub now: u64,
    /// Whether both nodes share one physical pool (MI300A).
    pub unified_pool: bool,
    /// CPU node capacity (== pool size when unified).
    pub cpu_capacity: Bytes,
    /// GPU node capacity (== pool size when unified).
    pub gpu_capacity: Bytes,
    /// Bytes the physical allocator attributes to the CPU node.
    pub cpu_used: Bytes,
    /// Bytes the physical allocator attributes to the GPU node
    /// (driver baseline included).
    pub gpu_used: Bytes,
    /// What the page tables say should be resident on the CPU node.
    pub expected_cpu_used: Bytes,
    /// What the page tables plus fixed carve-outs (driver baseline,
    /// oversubscription balloon) say should be resident on the GPU node.
    pub expected_gpu_used: Bytes,
    /// Cumulative *bulk* bytes the link moved host→device.
    pub bulk_h2d: Bytes,
    /// Cumulative *bulk* bytes the link moved device→host.
    pub bulk_d2h: Bytes,
    /// Bus-recorded bytes migrated/copied host→device (`None` when
    /// tracing is off — the conservation check is skipped then).
    pub traced_h2d: Option<Bytes>,
    /// Bus-recorded bytes migrated/copied device→host.
    pub traced_d2h: Option<Bytes>,
    /// Whether this platform supports page migration between tiers.
    pub migration_supported: bool,
    /// Cumulative pages migrated in either direction (state-level
    /// counter, available without tracing).
    pub migrated_pages: u64,
}

/// Accumulates invariant checks over a run's phase snapshots.
#[derive(Debug, Clone, Default)]
pub struct Sanitizer {
    last_now: u64,
    report: SanitizerReport,
}

impl Sanitizer {
    /// A fresh sanitizer (clock at zero, empty report).
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks every invariant against `snap`, accumulating violations.
    pub fn check(&mut self, snap: &Snapshot<'_>) {
        self.report.snapshots += 1;
        self.clock_monotone(snap);
        self.capacity(snap);
        self.residency(snap);
        self.link_conservation(snap);
        self.capability_gated(snap);
    }

    /// Consumes the sanitizer and returns the accumulated report.
    pub fn finish(self) -> SanitizerReport {
        self.report
    }

    /// The report so far (for mid-run inspection).
    pub fn report(&self) -> &SanitizerReport {
        &self.report
    }

    fn fail(&mut self, invariant: Invariant, phase: &str, detail: String) {
        self.report.violations.push(Violation {
            invariant,
            phase: phase.to_string(),
            detail,
        });
    }

    fn clock_monotone(&mut self, s: &Snapshot<'_>) {
        self.report.checks += 1;
        if s.now < self.last_now {
            self.fail(
                Invariant::ClockMonotone,
                s.phase,
                format!("clock moved backwards: {} -> {}", self.last_now, s.now),
            );
        }
        self.last_now = s.now;
    }

    fn capacity(&mut self, s: &Snapshot<'_>) {
        self.report.checks += 1;
        if s.unified_pool {
            let joint = s.cpu_used + s.gpu_used;
            if joint > s.gpu_capacity {
                self.fail(
                    Invariant::Capacity,
                    s.phase,
                    format!(
                        "joint usage {joint} exceeds unified pool {}",
                        s.gpu_capacity
                    ),
                );
            }
        } else {
            if s.cpu_used > s.cpu_capacity {
                self.fail(
                    Invariant::Capacity,
                    s.phase,
                    format!(
                        "CPU usage {} exceeds capacity {}",
                        s.cpu_used, s.cpu_capacity
                    ),
                );
            }
            if s.gpu_used > s.gpu_capacity {
                self.fail(
                    Invariant::Capacity,
                    s.phase,
                    format!(
                        "GPU usage {} exceeds capacity {}",
                        s.gpu_used, s.gpu_capacity
                    ),
                );
            }
        }
    }

    fn residency(&mut self, s: &Snapshot<'_>) {
        self.report.checks += 1;
        if s.cpu_used != s.expected_cpu_used {
            self.fail(
                Invariant::Residency,
                s.phase,
                format!(
                    "CPU node: allocator says {}, page tables say {}",
                    s.cpu_used, s.expected_cpu_used
                ),
            );
        }
        if s.gpu_used != s.expected_gpu_used {
            self.fail(
                Invariant::Residency,
                s.phase,
                format!(
                    "GPU node: allocator says {}, page tables + carve-outs say {}",
                    s.gpu_used, s.expected_gpu_used
                ),
            );
        }
    }

    fn link_conservation(&mut self, s: &Snapshot<'_>) {
        let (Some(th2d), Some(td2h)) = (s.traced_h2d, s.traced_d2h) else {
            return; // tracing off: no right-hand side to compare against
        };
        self.report.checks += 1;
        if s.bulk_h2d != th2d {
            self.fail(
                Invariant::LinkConservation,
                s.phase,
                format!(
                    "H2D: link moved {} in bulk, bus accounts for {}",
                    s.bulk_h2d, th2d
                ),
            );
        }
        if s.bulk_d2h != td2h {
            self.fail(
                Invariant::LinkConservation,
                s.phase,
                format!(
                    "D2H: link moved {} in bulk, bus accounts for {}",
                    s.bulk_d2h, td2h
                ),
            );
        }
    }

    fn capability_gated(&mut self, s: &Snapshot<'_>) {
        if s.migration_supported {
            return;
        }
        self.report.checks += 1;
        if s.migrated_pages != 0 {
            self.fail(
                Invariant::CapabilityGated,
                s.phase,
                format!(
                    "platform does not support migration, yet {} pages migrated",
                    s.migrated_pages
                ),
            );
        }
        if !s.bulk_h2d.is_zero() || !s.bulk_d2h.is_zero() {
            self.fail(
                Invariant::CapabilityGated,
                s.phase,
                format!(
                    "platform does not support migration, yet the link moved {} H2D / {} D2H in bulk",
                    s.bulk_h2d, s.bulk_d2h
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> Snapshot<'static> {
        Snapshot {
            phase: "compute",
            now: 100,
            unified_pool: false,
            cpu_capacity: Bytes::new(1000),
            gpu_capacity: Bytes::new(500),
            cpu_used: Bytes::new(400),
            gpu_used: Bytes::new(300),
            expected_cpu_used: Bytes::new(400),
            expected_gpu_used: Bytes::new(300),
            bulk_h2d: Bytes::new(128),
            bulk_d2h: Bytes::new(64),
            traced_h2d: Some(Bytes::new(128)),
            traced_d2h: Some(Bytes::new(64)),
            migration_supported: true,
            migrated_pages: 3,
        }
    }

    #[test]
    fn healthy_snapshot_is_clean() {
        let mut s = Sanitizer::new();
        s.check(&healthy());
        let r = s.finish();
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.snapshots, 1);
        assert!(r.checks >= 4);
    }

    #[test]
    fn backwards_clock_fires() {
        let mut s = Sanitizer::new();
        let mut snap = healthy();
        snap.now = 100;
        s.check(&snap);
        snap.now = 99;
        s.check(&snap);
        let r = s.finish();
        assert_eq!(r.violations.len(), 1, "{r}");
        assert_eq!(r.violations[0].invariant, Invariant::ClockMonotone);
    }

    #[test]
    fn over_capacity_fires_per_node() {
        let mut s = Sanitizer::new();
        let mut snap = healthy();
        snap.gpu_used = Bytes::new(501);
        snap.expected_gpu_used = Bytes::new(501);
        s.check(&snap);
        let r = s.finish();
        assert_eq!(r.violations.len(), 1, "{r}");
        assert_eq!(r.violations[0].invariant, Invariant::Capacity);
    }

    #[test]
    fn unified_pool_checks_joint_usage() {
        let mut s = Sanitizer::new();
        let mut snap = healthy();
        snap.unified_pool = true;
        snap.cpu_capacity = Bytes::new(1000);
        snap.gpu_capacity = Bytes::new(1000);
        snap.cpu_used = Bytes::new(600);
        snap.gpu_used = Bytes::new(500); // each fits alone, joint does not
        snap.expected_cpu_used = snap.cpu_used;
        snap.expected_gpu_used = snap.gpu_used;
        s.check(&snap);
        let r = s.finish();
        assert_eq!(r.violations.len(), 1, "{r}");
        assert_eq!(r.violations[0].invariant, Invariant::Capacity);
    }

    #[test]
    fn residency_mismatch_fires() {
        let mut s = Sanitizer::new();
        let mut snap = healthy();
        snap.expected_cpu_used = Bytes::new(399);
        s.check(&snap);
        let r = s.finish();
        assert_eq!(r.violations.len(), 1, "{r}");
        assert_eq!(r.violations[0].invariant, Invariant::Residency);
        assert!(
            r.violations[0].detail.contains("399"),
            "{}",
            r.violations[0].detail
        );
    }

    #[test]
    fn link_conservation_fires_on_unaccounted_bytes() {
        let mut s = Sanitizer::new();
        let mut snap = healthy();
        snap.bulk_h2d = Bytes::new(256); // bus only saw 128
        s.check(&snap);
        let r = s.finish();
        assert_eq!(r.violations.len(), 1, "{r}");
        assert_eq!(r.violations[0].invariant, Invariant::LinkConservation);
    }

    #[test]
    fn link_conservation_skipped_without_tracing() {
        let mut s = Sanitizer::new();
        let mut snap = healthy();
        snap.bulk_h2d = Bytes::new(999_999);
        snap.traced_h2d = None;
        snap.traced_d2h = None;
        s.check(&snap);
        assert!(s.finish().is_clean());
    }

    #[test]
    fn capability_gating_fires_on_impossible_migration() {
        let mut s = Sanitizer::new();
        let mut snap = healthy();
        snap.migration_supported = false;
        snap.migrated_pages = 1;
        snap.bulk_h2d = Bytes::ZERO;
        snap.bulk_d2h = Bytes::ZERO;
        snap.traced_h2d = Some(Bytes::ZERO);
        snap.traced_d2h = Some(Bytes::ZERO);
        s.check(&snap);
        let r = s.finish();
        assert_eq!(r.violations.len(), 1, "{r}");
        assert_eq!(r.violations[0].invariant, Invariant::CapabilityGated);
    }

    #[test]
    fn report_display_lists_violations() {
        let mut s = Sanitizer::new();
        let mut snap = healthy();
        snap.expected_cpu_used = Bytes::ZERO;
        s.check(&snap);
        let text = s.finish().to_string();
        assert!(text.contains("1 violations"), "{text}");
        assert!(text.contains("residency"), "{text}");
        assert!(text.contains("compute"), "{text}");
    }
}
