//! Zero-cost unit newtypes for the simulator's dimensional arithmetic.
//!
//! The whole cost model is dimensional analysis — fault counts × per-fault
//! cost, pages × per-PTE teardown, bytes ÷ link bandwidth — and a
//! bytes-vs-pages mixup in a bare-`u64` API compiles clean and silently
//! corrupts every figure. These newtypes make the unit part of the type:
//!
//! | Type       | Wraps | Meaning                                    |
//! |------------|-------|--------------------------------------------|
//! | [`Bytes`]  | `u64` | A byte quantity (capacity, transfer size)  |
//! | [`Pages`]  | `u64` | A page count                               |
//! | [`PageSize`]| `u64`| A power-of-two page size in bytes          |
//! | [`Vpn`]    | `u64` | A virtual page number                      |
//! | [`VpnRange`]| —    | A half-open `[start, end)` range of VPNs   |
//! | [`Lines`]  | `u64` | A cacheline count                          |
//! | [`SimNs`]  | `u64` | A virtual-nanosecond duration              |
//! | [`BwGiBs`] | `f64` | A bandwidth in bytes/ns (== GB/s)          |
//!
//! Arithmetic within a unit is *saturating* (accounting never wraps);
//! crossings between units exist only as the explicit conversions below:
//!
//! * `Bytes / PageSize -> Pages` (floor) and [`Bytes::pages_ceil`] (ceil);
//! * `Pages * PageSize -> Bytes`;
//! * [`Lines::bytes`] (lines × line size);
//! * [`VpnRange::count`] `-> Pages`;
//! * [`BwGiBs::transfer_ns`] / [`transfer_ns`] (bytes ÷ bandwidth, rounded
//!   half-up, saturating — never a truncating `as u64`).
//!
//! Everything else goes through [`get`](Bytes::get) at the raw boundary,
//! which the `no-raw-unit-cast` audit rule confines to this crate and to
//! explicitly-blessed call sites.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

pub mod sanitizer;

/// Widens a `usize` count (e.g. `Vec::len`) to `u64` without spelling the
/// banned `as u64` cast at call sites. `const` so it works in constants.
#[inline]
pub const fn widen(n: usize) -> u64 {
    n as u64
}

/// Deterministic, saturating `f64 -> u64` nanosecond conversion: rounds
/// half-up (half away from zero), maps NaN and negatives to 0, and
/// saturates `+inf`/overflow to `u64::MAX` instead of truncating.
#[inline]
pub fn ns_from_f64(x: f64) -> u64 {
    let r = x.round();
    if r.is_nan() || r < 0.0 {
        // NaN or negative: a cost can only be non-negative.
        return 0;
    }
    if r >= u64::MAX as f64 {
        return u64::MAX;
    }
    r as u64
}

/// Time to move `bytes` at `bw` bytes/ns: `round(bytes / bw)` half-up,
/// saturating, with a 1 ns floor for any non-zero transfer (a zero-byte
/// transfer is free). This is the simulator's single bytes→time crossing.
#[inline]
pub fn transfer_ns(bytes: Bytes, bw: f64) -> u64 {
    if bytes.is_zero() {
        return 0;
    }
    ns_from_f64(bytes.get() as f64 / bw).max(1)
}

macro_rules! scalar_unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0);

            /// Wraps a raw value.
            #[inline]
            pub const fn new(v: u64) -> Self {
                $name(v)
            }

            /// Unwraps to the raw value (the only sanctioned exit).
            #[inline]
            pub const fn get(self) -> u64 {
                self.0
            }

            /// Whether the quantity is zero.
            #[inline]
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }

            /// Saturating addition (accounting never wraps).
            #[inline]
            pub const fn saturating_add(self, rhs: Self) -> Self {
                $name(self.0.saturating_add(rhs.0))
            }

            /// Saturating subtraction (accounting never wraps).
            #[inline]
            pub const fn saturating_sub(self, rhs: Self) -> Self {
                $name(self.0.saturating_sub(rhs.0))
            }

            /// `None` when `rhs` exceeds `self` (for must-not-underflow
            /// release paths that want the error surfaced).
            #[inline]
            pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
                match self.0.checked_sub(rhs.0) {
                    Some(v) => Some($name(v)),
                    None => None,
                }
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.saturating_add(rhs)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = self.saturating_add(rhs);
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.saturating_sub(rhs)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = self.saturating_sub(rhs);
            }
        }

        impl Mul<u64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: u64) -> Self {
                $name(self.0.saturating_mul(rhs))
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> Self {
                iter.fold($name::ZERO, |a, b| a.saturating_add(b))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{} ", $suffix), self.0)
            }
        }
    };
}

scalar_unit!(
    /// A byte quantity: capacities, transfer sizes, RSS.
    Bytes,
    "B"
);
scalar_unit!(
    /// A page count (of whatever page size the context fixes).
    Pages,
    "pages"
);
scalar_unit!(
    /// A cacheline count (64 B CPU lines or 128 B GPU lines).
    Lines,
    "lines"
);
scalar_unit!(
    /// A virtual-nanosecond duration (the simulated clock's unit).
    SimNs,
    "ns"
);

impl Bytes {
    /// Pages spanned by this many bytes, rounding *up* (allocation: a
    /// partial page still occupies a whole page).
    #[inline]
    pub const fn pages_ceil(self, page: PageSize) -> Pages {
        Pages(self.0.div_ceil(page.0))
    }
}

/// `Bytes / PageSize -> Pages`, rounding down (how many whole pages fit).
impl Div<PageSize> for Bytes {
    type Output = Pages;
    #[inline]
    fn div(self, rhs: PageSize) -> Pages {
        Pages(self.0 / rhs.0)
    }
}

/// `Pages * PageSize -> Bytes` (the inverse crossing), saturating.
impl Mul<PageSize> for Pages {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: PageSize) -> Bytes {
        Bytes(self.0.saturating_mul(rhs.0))
    }
}

impl Lines {
    /// Total bytes moved by this many lines of `line` bytes each.
    #[inline]
    pub const fn bytes(self, line: Bytes) -> Bytes {
        Bytes(self.0.saturating_mul(line.0))
    }
}

/// A power-of-two page size in bytes. Constructing a non-power-of-two
/// size panics: every page-size source in the simulator validates first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageSize(u64);

impl PageSize {
    /// Wraps a page size; panics unless `v` is a power of two.
    #[inline]
    pub fn new(v: u64) -> Self {
        assert!(v.is_power_of_two(), "page size must be a power of two");
        PageSize(v)
    }

    /// The raw size in bytes.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The size as a [`Bytes`] quantity (one page's worth).
    #[inline]
    pub const fn bytes(self) -> Bytes {
        Bytes(self.0)
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B/page", self.0)
    }
}

/// A virtual page number (`vaddr / page_size`). Ordered and hashable so
/// page tables and migration sets can key on it directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(u64);

impl Vpn {
    /// Wraps a raw VPN.
    #[inline]
    pub const fn new(v: u64) -> Self {
        Vpn(v)
    }

    /// The raw VPN.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The VPN `n` pages after this one (saturating).
    #[inline]
    pub const fn offset(self, n: u64) -> Vpn {
        Vpn(self.0.saturating_add(n))
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn {}", self.0)
    }
}

/// A half-open `[start, end)` range of virtual page numbers.
///
/// `std::ops::Range<Vpn>` cannot be iterated on stable (the `Step` trait
/// is unstable), so the simulator uses this dedicated range type; it also
/// carries the `count -> Pages` crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VpnRange {
    /// First VPN in the range.
    pub start: Vpn,
    /// One past the last VPN.
    pub end: Vpn,
}

impl VpnRange {
    /// Builds `[start, end)`; an inverted range is treated as empty.
    #[inline]
    pub const fn new(start: Vpn, end: Vpn) -> Self {
        VpnRange { start, end }
    }

    /// The empty range positioned at `at`.
    #[inline]
    pub const fn empty(at: Vpn) -> Self {
        VpnRange { start: at, end: at }
    }

    /// Whether the range holds no VPNs.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.start.0 >= self.end.0
    }

    /// Number of pages the range spans.
    #[inline]
    pub const fn count(self) -> Pages {
        Pages(self.end.0.saturating_sub(self.start.0))
    }

    /// Whether `vpn` falls inside the range.
    #[inline]
    pub const fn contains(self, vpn: Vpn) -> bool {
        vpn.0 >= self.start.0 && vpn.0 < self.end.0
    }

    /// Iterates the VPNs in order.
    pub fn iter(self) -> impl Iterator<Item = Vpn> {
        (self.start.0..self.end.0).map(Vpn)
    }
}

impl IntoIterator for VpnRange {
    type Item = Vpn;
    type IntoIter = std::iter::Map<std::ops::Range<u64>, fn(u64) -> Vpn>;
    fn into_iter(self) -> Self::IntoIter {
        (self.start.0..self.end.0).map(Vpn)
    }
}

impl fmt::Display for VpnRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpns [{}, {})", self.start.0, self.end.0)
    }
}

/// A bandwidth in bytes per nanosecond (numerically equal to GB/s).
/// Construction rejects non-finite and non-positive values so every
/// division by a bandwidth is well-defined.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct BwGiBs(f64);

impl BwGiBs {
    /// Wraps a bandwidth; panics on NaN, infinite, zero or negative input
    /// (cost-model validation rejects these long before this point).
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(
            v.is_finite() && v > 0.0,
            "bandwidth must be finite and positive"
        );
        BwGiBs(v)
    }

    /// The raw bytes/ns value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Time to move `bytes` at this bandwidth (see [`transfer_ns`]).
    #[inline]
    pub fn transfer_ns(self, bytes: Bytes) -> u64 {
        transfer_ns(bytes, self.0)
    }
}

impl fmt::Display for BwGiBs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} GB/s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_page_crossings() {
        let page = PageSize::new(4096);
        assert_eq!(Bytes::new(0).pages_ceil(page), Pages::new(0));
        assert_eq!(Bytes::new(1).pages_ceil(page), Pages::new(1));
        assert_eq!(Bytes::new(4096).pages_ceil(page), Pages::new(1));
        assert_eq!(Bytes::new(4097).pages_ceil(page), Pages::new(2));
        assert_eq!(Bytes::new(8191) / page, Pages::new(1));
        assert_eq!(Pages::new(3) * page, Bytes::new(12288));
    }

    #[test]
    fn saturating_arithmetic_never_wraps() {
        let max = Bytes::new(u64::MAX);
        assert_eq!(max + Bytes::new(1), max);
        assert_eq!(Bytes::new(0) - Bytes::new(1), Bytes::ZERO);
        assert_eq!(
            Pages::new(u64::MAX) * PageSize::new(4096),
            Bytes::new(u64::MAX)
        );
        assert_eq!(Bytes::new(5).checked_sub(Bytes::new(6)), None);
        assert_eq!(Bytes::new(6).checked_sub(Bytes::new(6)), Some(Bytes::ZERO));
    }

    #[test]
    fn lines_to_bytes() {
        assert_eq!(Lines::new(10).bytes(Bytes::new(128)), Bytes::new(1280));
        assert_eq!(Lines::ZERO.bytes(Bytes::new(128)), Bytes::ZERO);
    }

    #[test]
    fn vpn_range_iterates_and_counts() {
        let r = VpnRange::new(Vpn::new(3), Vpn::new(7));
        assert_eq!(r.count(), Pages::new(4));
        assert!(!r.is_empty());
        assert!(r.contains(Vpn::new(3)) && r.contains(Vpn::new(6)));
        assert!(!r.contains(Vpn::new(7)));
        let vs: Vec<u64> = r.iter().map(Vpn::get).collect();
        assert_eq!(vs, vec![3, 4, 5, 6]);
        let empty = VpnRange::empty(Vpn::new(9));
        assert!(empty.is_empty());
        assert_eq!(empty.count(), Pages::ZERO);
        // Inverted ranges are empty, not huge.
        let inv = VpnRange::new(Vpn::new(5), Vpn::new(2));
        assert!(inv.is_empty());
        assert_eq!(inv.count(), Pages::ZERO);
        assert_eq!(inv.iter().count(), 0);
    }

    #[test]
    fn ns_from_f64_rounds_half_up_and_saturates() {
        assert_eq!(ns_from_f64(0.0), 0);
        assert_eq!(ns_from_f64(0.4), 0);
        assert_eq!(ns_from_f64(0.5), 1);
        assert_eq!(ns_from_f64(10.49), 10);
        assert_eq!(ns_from_f64(10.5), 11);
        assert_eq!(ns_from_f64(-3.0), 0);
        assert_eq!(ns_from_f64(f64::NAN), 0);
        assert_eq!(ns_from_f64(f64::INFINITY), u64::MAX);
        assert_eq!(ns_from_f64(1e300), u64::MAX);
    }

    #[test]
    fn transfer_ns_boundaries() {
        // Zero bytes are free; any non-zero transfer takes >= 1 ns.
        assert_eq!(transfer_ns(Bytes::ZERO, 375.0), 0);
        assert_eq!(transfer_ns(Bytes::new(1), 3400.0), 1);
        // Exact multiples divide evenly.
        assert_eq!(transfer_ns(Bytes::new(375_000), 375.0), 1000);
        // Half-up rounding at the GiB/s boundary: 1001/100 = 10.01 -> 10,
        // 1050/100 = 10.5 -> 11.
        assert_eq!(transfer_ns(Bytes::new(1001), 100.0), 10);
        assert_eq!(transfer_ns(Bytes::new(1050), 100.0), 11);
        assert_eq!(transfer_ns(Bytes::new(1049), 100.0), 10);
        // Saturation instead of truncation on pathological inputs.
        assert_eq!(transfer_ns(Bytes::new(u64::MAX), 1e-300), u64::MAX);
        assert_eq!(
            transfer_ns(Bytes::new(u64::MAX), f64::MIN_POSITIVE),
            u64::MAX
        );
    }

    #[test]
    fn bw_wrapper_matches_free_fn() {
        let bw = BwGiBs::new(486.0);
        assert_eq!(bw.transfer_ns(Bytes::new(972)), 2);
        assert_eq!(bw.transfer_ns(Bytes::ZERO), 0);
        assert_eq!(format!("{bw}"), "486 GB/s");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn page_size_rejects_non_power_of_two() {
        PageSize::new(3000);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bandwidth_rejects_zero() {
        BwGiBs::new(0.0);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Bytes::new(42).to_string(), "42 B");
        assert_eq!(Pages::new(7).to_string(), "7 pages");
        assert_eq!(Lines::new(3).to_string(), "3 lines");
        assert_eq!(SimNs::new(9).to_string(), "9 ns");
        assert_eq!(Vpn::new(5).to_string(), "vpn 5");
        assert_eq!(
            VpnRange::new(Vpn::new(1), Vpn::new(4)).to_string(),
            "vpns [1, 4)"
        );
        assert_eq!(PageSize::new(4096).to_string(), "4096 B/page");
    }

    #[test]
    fn ordering_matches_raw_ordering() {
        assert!(Bytes::new(1) < Bytes::new(2));
        assert!(Vpn::new(9) > Vpn::new(8));
        let mut v = vec![Pages::new(3), Pages::new(1), Pages::new(2)];
        v.sort();
        assert_eq!(v, vec![Pages::new(1), Pages::new(2), Pages::new(3)]);
    }

    #[test]
    fn widen_is_lossless() {
        assert_eq!(widen(0), 0);
        assert_eq!(widen(usize::MAX), usize::MAX as u64);
        const N: u64 = widen(16) - 1;
        assert_eq!(N, 15);
    }

    #[test]
    fn sum_saturates() {
        let total: Bytes = [Bytes::new(u64::MAX), Bytes::new(1)].into_iter().sum();
        assert_eq!(total, Bytes::new(u64::MAX));
    }
}
