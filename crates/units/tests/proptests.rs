//! Property tests for the unit newtypes: conversion roundtrips, saturating
//! arithmetic, ordering/display stability.

use gh_units::{transfer_ns, Bytes, Lines, PageSize, Pages, SimNs, Vpn, VpnRange};
use proptest::prelude::*;

proptest! {
    /// Ceil-division never loses bytes: the pages spanned by a byte count
    /// always cover at least that many bytes, and never a full extra page.
    #[test]
    fn bytes_pages_roundtrip_covers(bytes in 0u64..1u64 << 50, shift in 12u32..22) {
        let page = PageSize::new(1u64 << shift);
        let pages = Bytes::new(bytes).pages_ceil(page);
        let covered = pages * page;
        prop_assert!(covered.get() >= bytes, "ceil must cover: {covered} < {bytes}");
        prop_assert!(
            covered.get() - bytes < page.get(),
            "ceil overshoots by a full page: {covered} for {bytes}"
        );
        // Floor division is the exact inverse on page-aligned quantities.
        prop_assert_eq!(covered / page, pages);
        prop_assert_eq!(covered.pages_ceil(page), pages);
    }

    /// Saturating ops never wrap: results are clamped, ordered, and
    /// subtraction never exceeds the minuend.
    #[test]
    fn saturating_ops_never_wrap(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (x, y) = (Bytes::new(a), Bytes::new(b));
        let sum = x + y;
        prop_assert!(sum >= x && sum >= y, "saturating add is monotone");
        prop_assert_eq!(sum.get(), a.saturating_add(b));
        let diff = x - y;
        prop_assert!(diff <= x, "saturating sub never exceeds the minuend");
        prop_assert_eq!(diff.get(), a.saturating_sub(b));
        let prod = Pages::new(a) * PageSize::new(4096);
        prop_assert_eq!(prod.get(), a.saturating_mul(4096));
        let lines = Lines::new(a).bytes(Bytes::new(128));
        prop_assert_eq!(lines.get(), a.saturating_mul(128));
    }

    /// Newtype ordering and equality agree with the raw value's, and
    /// Display output is stable (raw value + fixed suffix).
    #[test]
    fn ordering_and_display_stability(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        prop_assert_eq!(Bytes::new(a) < Bytes::new(b), a < b);
        prop_assert_eq!(Bytes::new(a) == Bytes::new(b), a == b);
        prop_assert_eq!(Vpn::new(a).cmp(&Vpn::new(b)), a.cmp(&b));
        prop_assert_eq!(Bytes::new(a).to_string(), format!("{a} B"));
        prop_assert_eq!(SimNs::new(a).to_string(), format!("{a} ns"));
    }

    /// VpnRange::count matches iteration, and iteration is ordered.
    #[test]
    fn vpn_range_count_matches_iteration(start in 0u64..10_000, span in 0u64..2_000) {
        let r = VpnRange::new(Vpn::new(start), Vpn::new(start + span));
        prop_assert_eq!(r.count().get(), span);
        let vs: Vec<u64> = r.iter().map(Vpn::get).collect();
        prop_assert_eq!(vs.len() as u64, span);
        prop_assert!(vs.windows(2).all(|w| w[0] + 1 == w[1]), "iteration is ordered");
        for &v in &vs {
            prop_assert!(r.contains(Vpn::new(v)));
        }
    }

    /// transfer_ns is monotone in bytes, zero only at zero, and never
    /// truncates below the rounded quotient.
    #[test]
    fn transfer_ns_monotone_and_floored(a in 0u64..1u64 << 48, b in 0u64..1u64 << 48) {
        let bw = 375.0;
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(transfer_ns(Bytes::new(lo), bw) <= transfer_ns(Bytes::new(hi), bw));
        let t = transfer_ns(Bytes::new(hi), bw);
        prop_assert_eq!(t == 0, hi == 0, "only zero bytes are free");
        if hi > 0 {
            let exact = hi as f64 / bw;
            prop_assert!(t as f64 >= exact - 0.5, "never truncates: {t} vs {exact}");
            prop_assert!(t as f64 <= exact + 1.0, "never overshoots: {t} vs {exact}");
        }
    }
}
