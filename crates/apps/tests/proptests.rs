//! Property tests for the application suite: the blocked/metered GPU
//! algorithms must match their sequential references for arbitrary
//! inputs, under every memory mode.

use gh_apps::{bfs, hotspot, needle, pathfinder, srad, MemMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Needleman-Wunsch: wavefront blocking equals full DP for any
    /// sequence content and penalty.
    #[test]
    fn needle_matches_reference(seed in 0u64..1_000_000, penalty in 1i32..20,
                                blocks in 1usize..5) {
        let p = needle::NeedleParams {
            n: blocks * needle::BLOCK,
            penalty,
            seed,
        };
        let w = p.n + 1;
        let expected = needle::reference(&p)[p.n * w + p.n] as f64;
        let r = needle::run(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        prop_assert_eq!(r.checksum, expected);
    }

    /// Pathfinder: batched row kernels equal the plain DP.
    #[test]
    fn pathfinder_matches_reference(seed in 0u64..1_000_000, rows in 2usize..60,
                                    cols in 2usize..50, rpk in 1usize..12) {
        let p = pathfinder::PathfinderParams {
            rows,
            cols,
            rows_per_kernel: rpk,
            seed,
        };
        let expected: f64 = pathfinder::reference(&p).iter().map(|&x| x as f64).sum();
        let r = pathfinder::run(gh_sim::platform::gh200().machine(), MemMode::Managed, &p);
        prop_assert_eq!(r.checksum, expected);
    }

    /// BFS: the frontier kernels compute exact levels on any random
    /// graph shape.
    #[test]
    fn bfs_matches_reference(seed in 0u64..1_000_000, nodes in 2usize..1500,
                             degree in 1usize..8) {
        let p = bfs::BfsParams { nodes, degree, seed };
        let g = bfs::build_graph(&p);
        let expected: f64 = bfs::reference(&g)
            .iter()
            .map(|&c| if c >= 0 { c as f64 + 1.0 } else { 0.0 })
            .sum();
        let r = bfs::run(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        prop_assert_eq!(r.checksum, expected);
    }

    /// Hotspot: metered stencil equals the reference for any grid/seed.
    #[test]
    fn hotspot_matches_reference(seed in 0u64..1_000_000, size in 4usize..48,
                                 iters in 1usize..6) {
        let p = hotspot::HotspotParams {
            size,
            iterations: iters,
            seed,
        };
        let expected: f64 = hotspot::reference(&p).iter().map(|&x| x as f64).sum();
        let r = hotspot::run(gh_sim::platform::gh200().machine(), MemMode::Explicit, &p);
        let rel = (r.checksum - expected).abs() / expected.abs().max(1.0);
        prop_assert!(rel < 1e-4, "{} vs {}", r.checksum, expected);
    }

    /// SRAD: same, including the q0 reduction.
    #[test]
    fn srad_matches_reference(seed in 0u64..1_000_000, size in 8usize..40,
                              iters in 1usize..5) {
        let p = srad::SradParams {
            size,
            iterations: iters,
            lambda: 0.5,
            seed,
        };
        let expected: f64 = srad::reference(&p).iter().map(|&x| x as f64).sum();
        let r = srad::run(gh_sim::platform::gh200().machine(), MemMode::Managed, &p);
        let rel = (r.checksum - expected).abs() / expected.abs().max(1.0);
        prop_assert!(rel < 1e-5, "{} vs {}", r.checksum, expected);
    }

    /// Graph construction is deterministic and structurally valid for
    /// any parameters.
    #[test]
    fn bfs_graph_structure(seed in 0u64..1_000_000, nodes in 1usize..2000,
                           degree in 1usize..10) {
        let p = bfs::BfsParams { nodes, degree, seed };
        let g = bfs::build_graph(&p);
        prop_assert_eq!(g.nodes.len(), nodes);
        let mut cursor = 0u32;
        for &(s, c) in &g.nodes {
            prop_assert_eq!(s, cursor);
            cursor += c;
        }
        prop_assert_eq!(cursor as usize, g.edges.len());
        prop_assert!(g.edges.iter().all(|&v| (v as usize) < nodes));
    }
}
