//! SRAD: Speckle-Reducing Anisotropic Diffusion (Rodinia).
//!
//! The paper's access-counter-migration showcase (§6, Fig 10): an
//! iterative two-kernel pipeline over the same working set. The image
//! `J` is CPU-initialized (so it starts CPU-resident and migrates to the
//! GPU over the first iterations under the access-counter engine), while
//! the derivative/coefficient arrays are *GPU-first-touched* in iteration
//! 1 (the §5.1.2 GPU-side-initialization cost for system memory).

use gh_par::par_chunks_mut;
use gh_profiler::Phase;
use gh_sim::{Machine, MemMode, RunReport};

use crate::common::UBuf;

/// Input parameters.
#[derive(Debug, Clone)]
pub struct SradParams {
    /// Image side (paper: 20k; scaled default 1800 so the six buffers
    /// total ~78 MiB — in-memory on the 96 MiB GPU, thrashing under
    /// oversubscription).
    pub size: usize,
    /// Diffusion iterations (paper's Fig 10 uses 12).
    pub iterations: usize,
    /// Diffusion rate λ.
    pub lambda: f32,
    /// RNG seed for the image.
    pub seed: u64,
}

impl Default for SradParams {
    fn default() -> Self {
        Self {
            size: 1800,
            iterations: 12,
            lambda: 0.5,
            seed: 23,
        }
    }
}

fn image_value(seed: u64, i: u64) -> f32 {
    let x = (seed ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let u = ((x >> 11) as f64 / (1u64 << 53) as f64) as f32;
    (u * 0.5 + 0.25).exp() // exp(image) as Rodinia does
}

struct Grids {
    j: Vec<f32>,
    dn: Vec<f32>,
    ds: Vec<f32>,
    de: Vec<f32>,
    dw: Vec<f32>,
    c: Vec<f32>,
}

fn q0sqr(j: &[f32]) -> f32 {
    let n = j.len() as f32;
    let sum: f32 = j.iter().sum();
    let sum2: f32 = j.iter().map(|&x| x * x).sum();
    let mean = sum / n;
    let var = (sum2 / n) - mean * mean;
    var / (mean * mean)
}

fn srad1(g: &mut Grids, n: usize, q0: f32) {
    let j = &g.j;
    for r in 0..n {
        for col in 0..n {
            let i = r * n + col;
            let jc = j[i];
            let jn = if r > 0 { j[i - n] } else { jc };
            let js = if r + 1 < n { j[i + n] } else { jc };
            let jw = if col > 0 { j[i - 1] } else { jc };
            let je = if col + 1 < n { j[i + 1] } else { jc };
            let dn = jn - jc;
            let ds = js - jc;
            let dw = jw - jc;
            let de = je - jc;
            let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc);
            let l = (dn + ds + dw + de) / jc;
            let num = 0.5 * g2 - (1.0 / 16.0) * l * l;
            let den = 1.0 + 0.25 * l;
            let qsqr = num / (den * den);
            let cden = (qsqr - q0) / (q0 * (1.0 + q0));
            let cval = (1.0 / (1.0 + cden)).clamp(0.0, 1.0);
            g.dn[i] = dn;
            g.ds[i] = ds;
            g.dw[i] = dw;
            g.de[i] = de;
            g.c[i] = cval;
        }
    }
}

#[allow(clippy::needless_range_loop)] // index math mirrors the stencil neighbourhood
fn srad2(g: &mut Grids, n: usize, lambda: f32) {
    // Row-parallel J update; reads c of south/east neighbours.
    let (dn, ds, dw, de, c) = (&g.dn, &g.ds, &g.dw, &g.de, &g.c);
    par_chunks_mut(&mut g.j, n, |r, jrow| {
        for col in 0..n {
            let i = r * n + col;
            let cn = c[i];
            let cw = c[i];
            let cs = if r + 1 < n { c[i + n] } else { c[i] };
            let ce = if col + 1 < n { c[i + 1] } else { c[i] };
            let d = cn * dn[i] + cs * ds[i] + cw * dw[i] + ce * de[i];
            jrow[col] += 0.25 * lambda * d;
        }
    });
}

/// Sequential reference: final image after all iterations.
pub fn reference(p: &SradParams) -> Vec<f32> {
    let n = p.size;
    let mut g = Grids {
        j: (0..n * n).map(|i| image_value(p.seed, i as u64)).collect(),
        dn: vec![0.0; n * n],
        ds: vec![0.0; n * n],
        de: vec![0.0; n * n],
        dw: vec![0.0; n * n],
        c: vec![0.0; n * n],
    };
    for _ in 0..p.iterations {
        let q0 = q0sqr(&g.j);
        srad1(&mut g, n, q0);
        srad2(&mut g, n, p.lambda);
    }
    g.j
}

/// Runs SRAD under `mode` (checksum = sum of the final image).
pub fn run(mut m: Machine, mode: MemMode, p: &SradParams) -> RunReport {
    let n = p.size;
    let bytes = (n * n * 4) as u64;

    // ---- real data ----
    let mut g = Grids {
        j: (0..n * n).map(|i| image_value(p.seed, i as u64)).collect(),
        dn: vec![0.0; n * n],
        ds: vec![0.0; n * n],
        de: vec![0.0; n * n],
        dw: vec![0.0; n * n],
        c: vec![0.0; n * n],
    };

    // ---- GPU context initialization + argument parsing (phase 1) ----
    m.phase(Phase::CtxInit);
    m.rt.cuda_init();

    // ---- allocation ----
    m.phase(Phase::Alloc);
    let j_buf = UBuf::alloc(&mut m, mode, bytes, "srad.J");
    let dn_buf = UBuf::alloc_gpu_scratch(&mut m, mode, bytes, "srad.dN");
    let ds_buf = UBuf::alloc_gpu_scratch(&mut m, mode, bytes, "srad.dS");
    let de_buf = UBuf::alloc_gpu_scratch(&mut m, mode, bytes, "srad.dE");
    let dw_buf = UBuf::alloc_gpu_scratch(&mut m, mode, bytes, "srad.dW");
    let c_buf = UBuf::alloc_gpu_scratch(&mut m, mode, bytes, "srad.c");

    // ---- CPU-side initialization (the image only) ----
    m.phase(Phase::CpuInit);
    j_buf.cpu_init(&mut m, 0, bytes);

    // ---- compute ----
    m.phase(Phase::Compute);
    j_buf.upload(&mut m);
    for _ in 0..p.iterations {
        let q0 = q0sqr(&g.j);
        srad1(&mut g, n, q0);
        {
            let mut k = m.rt.launch("srad1");
            k.read(j_buf.gpu(), 0, bytes);
            k.write(dn_buf.gpu(), 0, bytes);
            k.write(ds_buf.gpu(), 0, bytes);
            k.write(de_buf.gpu(), 0, bytes);
            k.write(dw_buf.gpu(), 0, bytes);
            k.write(c_buf.gpu(), 0, bytes);
            k.compute((n * n * 30) as u64);
            k.finish();
        }
        srad2(&mut g, n, p.lambda);
        {
            let mut k = m.rt.launch("srad2");
            k.read(dn_buf.gpu(), 0, bytes);
            k.read(ds_buf.gpu(), 0, bytes);
            k.read(de_buf.gpu(), 0, bytes);
            k.read(dw_buf.gpu(), 0, bytes);
            k.read(c_buf.gpu(), 0, bytes);
            k.read(j_buf.gpu(), 0, bytes);
            k.write(j_buf.gpu(), 0, bytes);
            k.compute((n * n * 12) as u64);
            k.finish();
        }
    }
    j_buf.download(&mut m, 0, bytes);

    let checksum = g.j.iter().map(|&x| x as f64).sum::<f64>();
    m.set_checksum(checksum);

    // ---- de-allocation ----
    m.phase(Phase::Dealloc);
    j_buf.free(&mut m);
    dn_buf.free(&mut m);
    ds_buf.free(&mut m);
    de_buf.free(&mut m);
    dw_buf.free(&mut m);
    c_buf.free(&mut m);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SradParams {
        SradParams {
            size: 64,
            iterations: 4,
            lambda: 0.5,
            seed: 2,
        }
    }

    #[test]
    fn all_modes_agree_with_reference() {
        let p = small();
        let expected: f64 = reference(&p).iter().map(|&x| x as f64).sum();
        for mode in MemMode::ALL {
            let r = run(gh_sim::platform::gh200().machine(), mode, &p);
            let rel = (r.checksum - expected).abs() / expected.abs().max(1.0);
            assert!(rel < 1e-6, "{mode}: {} vs {expected}", r.checksum);
        }
    }

    #[test]
    fn diffusion_smooths_the_image() {
        let p = small();
        let n = p.size;
        let before: Vec<f32> = (0..n * n).map(|i| image_value(p.seed, i as u64)).collect();
        let after = reference(&p);
        let var = |v: &[f32]| {
            let m = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / v.len() as f32
        };
        assert!(var(&after) < var(&before), "diffusion must reduce variance");
    }

    #[test]
    fn q0sqr_of_constant_image_is_zero() {
        let j = vec![2.0f32; 100];
        assert!(q0sqr(&j).abs() < 1e-6);
    }

    #[test]
    fn coefficients_stay_in_unit_range() {
        let p = small();
        let n = p.size;
        let mut g = Grids {
            j: (0..n * n).map(|i| image_value(p.seed, i as u64)).collect(),
            dn: vec![0.0; n * n],
            ds: vec![0.0; n * n],
            de: vec![0.0; n * n],
            dw: vec![0.0; n * n],
            c: vec![0.0; n * n],
        };
        let q0 = q0sqr(&g.j);
        srad1(&mut g, n, q0);
        assert!(g.c.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn system_mode_gpu_first_touch_happens_for_derivatives() {
        let p = small();
        let r = run(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        assert!(
            r.traffic.ats_faults > 0,
            "derivative arrays must be GPU-first-touched"
        );
    }
}
