//! Hotspot: iterative thermal-simulation stencil (Rodinia).
//!
//! A regular, dense access pattern: every iteration reads the whole
//! temperature and power grids and writes the next temperature grid.
//! CPU-initialized — the canonical "init on CPU, compute on GPU" HPC
//! shape the paper's §5.1.1 discusses (Fig 4 plots this application's
//! memory profile).

use gh_par::par_chunks_mut;
use gh_profiler::Phase;
use gh_sim::{Machine, MemMode, RunReport};

use crate::common::UBuf;

/// Input parameters.
#[derive(Debug, Clone)]
pub struct HotspotParams {
    /// Grid side (paper: 16k; scaled default 1k).
    pub size: usize,
    /// Stencil iterations.
    pub iterations: usize,
    /// RNG seed for the initial grids.
    pub seed: u64,
}

impl Default for HotspotParams {
    fn default() -> Self {
        Self {
            size: 1024,
            // Rodinia's hotspot runs a handful of pyramid iterations
            // (sim_time); the paper's Fig 4 profile shows a compute phase
            // of the same order as the migration transient.
            iterations: 6,
            seed: 7,
        }
    }
}

/// Physical constants of the Rodinia kernel (values as in hotspot.cu).
const CAP: f32 = 0.5;
const RX: f32 = 1.0;
const RY: f32 = 1.0;
const RZ: f32 = 4.0;
const AMB: f32 = 80.0;

fn seeded(seed: u64, i: u64) -> f32 {
    // Deterministic pseudo-random initial condition in [0, 1).
    let x = (seed ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((x >> 11) as f64 / (1u64 << 53) as f64) as f32
}

/// One stencil update of row `r` into `out`.
#[allow(clippy::needless_range_loop)] // index math mirrors the stencil neighbourhood
fn stencil_row(t: &[f32], p: &[f32], out: &mut [f32], n: usize, r: usize) {
    for c in 0..n {
        let idx = r * n + c;
        let center = t[idx];
        let north = if r > 0 { t[idx - n] } else { center };
        let south = if r + 1 < n { t[idx + n] } else { center };
        let west = if c > 0 { t[idx - 1] } else { center };
        let east = if c + 1 < n { t[idx + 1] } else { center };
        let delta = (p[idx]
            + (north + south - 2.0 * center) / RY
            + (east + west - 2.0 * center) / RX
            + (AMB - center) / RZ)
            / CAP;
        out[c] = center + 0.001 * delta;
    }
}

/// Sequential reference implementation (for correctness tests).
pub fn reference(p: &HotspotParams) -> Vec<f32> {
    let n = p.size;
    let mut temp: Vec<f32> = (0..n * n).map(|i| seeded(p.seed, i as u64)).collect();
    let power: Vec<f32> = (0..n * n).map(|i| seeded(p.seed + 1, i as u64)).collect();
    let mut next = vec![0.0f32; n * n];
    for _ in 0..p.iterations {
        for r in 0..n {
            let (row, rest);
            // Split to satisfy the borrow checker: copy into next.
            let mut tmp = vec![0.0f32; n];
            stencil_row(&temp, &power, &mut tmp, n, r);
            row = r;
            rest = tmp;
            next[row * n..row * n + n].copy_from_slice(&rest);
        }
        std::mem::swap(&mut temp, &mut next);
    }
    temp
}

/// Runs hotspot under `mode`, returning the full report (checksum = sum
/// of the final temperature grid).
pub fn run(mut m: Machine, mode: MemMode, p: &HotspotParams) -> RunReport {
    let n = p.size;
    let bytes = (n * n * 4) as u64;

    // ---- real data ----
    let mut temp_h: Vec<f32> = (0..n * n).map(|i| seeded(p.seed, i as u64)).collect();
    let power_h: Vec<f32> = (0..n * n).map(|i| seeded(p.seed + 1, i as u64)).collect();
    let mut next_h = vec![0.0f32; n * n];

    // ---- GPU context initialization + argument parsing (phase 1) ----
    m.phase(Phase::CtxInit);
    m.rt.cuda_init();

    // ---- allocation ----
    m.phase(Phase::Alloc);
    let temp = UBuf::alloc(&mut m, mode, bytes, "hotspot.temp");
    let power = UBuf::alloc(&mut m, mode, bytes, "hotspot.power");
    // Ping-pong partner: GPU-only scratch in every version (the paper
    // keeps GPU-only intermediates in cudaMalloc).
    let scratch =
        m.rt.cuda_malloc(gh_units::Bytes::new(bytes), "hotspot.scratch")
            .expect("scaled hotspot fits in GPU memory"); // gh-audit: allow(no-unwrap-in-lib) -- explicit-mode capacity precondition; fail fast on an oversized config

    // ---- CPU-side initialization ----
    m.phase(Phase::CpuInit);
    temp.cpu_init(&mut m, 0, bytes);
    power.cpu_init(&mut m, 0, bytes);

    // ---- compute ----
    m.phase(Phase::Compute);
    temp.upload(&mut m);
    power.upload(&mut m);
    for it in 0..p.iterations {
        // Real stencil, row-parallel.
        par_chunks_mut(&mut next_h, n, |r, out| {
            stencil_row(&temp_h, &power_h, out, n, r);
        });
        std::mem::swap(&mut temp_h, &mut next_h);

        // Metered accesses: ping-pong between temp and scratch.
        let (src, dst) = if it % 2 == 0 {
            (*temp.gpu(), scratch)
        } else {
            (scratch, *temp.gpu())
        };
        let mut k = m.rt.launch("hotspot");
        k.read(&src, 0, bytes);
        k.read(power.gpu(), 0, bytes);
        k.write(&dst, 0, bytes);
        k.compute((n * n * 12) as u64);
        k.finish();
    }
    // If the final grid landed in the scratch buffer, copy it back.
    if p.iterations % 2 == 1 {
        let mut k = m.rt.launch("hotspot_copyback");
        k.read(&scratch, 0, bytes);
        k.write(temp.gpu(), 0, bytes);
        k.finish();
    }
    temp.download(&mut m, 0, bytes);

    let checksum = temp_h.iter().map(|&x| x as f64).sum::<f64>();
    m.set_checksum(checksum);

    // ---- de-allocation ----
    m.phase(Phase::Dealloc);
    m.rt.free(scratch);
    temp.free(&mut m);
    power.free(&mut m);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_sim::MemMode;

    fn small() -> HotspotParams {
        HotspotParams {
            size: 64,
            iterations: 5,
            seed: 3,
        }
    }

    #[test]
    fn all_modes_agree_with_reference() {
        let p = small();
        let expected: f64 = reference(&p).iter().map(|&x| x as f64).sum();
        for mode in MemMode::ALL {
            let r = run(gh_sim::platform::gh200().machine(), mode, &p);
            assert!(
                (r.checksum - expected).abs() < 1e-3 * expected.abs().max(1.0),
                "{mode}: {} vs {expected}",
                r.checksum
            );
        }
    }

    #[test]
    fn stencil_converges_toward_ambient() {
        // Starting from 0 everywhere with zero power, temperatures must
        // move toward the ambient value.
        let n = 16;
        let temp = vec![0.0f32; n * n];
        let power = vec![0.0f32; n * n];
        let mut out = vec![0.0f32; n];
        stencil_row(&temp, &power, &mut out, n, 4);
        assert!(out.iter().all(|&x| x > 0.0), "heating toward ambient");
    }

    #[test]
    fn phases_are_populated() {
        let r = run(
            gh_sim::platform::gh200().machine(),
            MemMode::System,
            &small(),
        );
        assert!(r.phases.alloc > 0);
        assert!(r.phases.cpu_init > 0);
        assert!(r.phases.compute > 0);
        assert!(r.phases.dealloc > 0);
    }

    #[test]
    fn explicit_mode_copies_managed_migrates() {
        let p = small();
        let re = run(gh_sim::platform::gh200().machine(), MemMode::Explicit, &p);
        let rm = run(gh_sim::platform::gh200().machine(), MemMode::Managed, &p);
        // Explicit: no faults, no migrations. Managed: migrations, no copies.
        assert_eq!(re.traffic.gpu_faults, 0);
        assert_eq!(re.traffic.bytes_migrated_in, 0);
        assert!(rm.traffic.bytes_migrated_in > 0);
    }

    #[test]
    fn system_mode_reads_remotely_with_migration_off() {
        let p = small();
        let machine = gh_sim::platform::gh200()
            .machine_cfg(&gh_sim::MachineConfig::without_migration())
            .unwrap();
        let r = run(machine, MemMode::System, &p);
        assert!(r.traffic.c2c_read > 0, "CPU-resident data read over C2C");
        assert_eq!(r.traffic.bytes_migrated_in, 0);
    }
}
