//! Pathfinder: 2-D grid dynamic programming (Rodinia).
//!
//! Row-by-row DP over a cost grid: regular but *narrow* accesses — each
//! kernel step consumes one wall row (a few KB), which is much smaller
//! than a 64 KiB page. This is exactly the shape that makes large-page
//! migration amplification visible (§5.2, Fig 7).

use gh_profiler::Phase;
use gh_sim::{Machine, MemMode, RunReport};

use crate::common::UBuf;

/// Input parameters.
#[derive(Debug, Clone)]
pub struct PathfinderParams {
    /// Number of grid rows (paper: 100k; scaled default 5k).
    pub rows: usize,
    /// Number of grid columns (paper: 20k; scaled default 2k).
    pub cols: usize,
    /// Rows processed per kernel launch (Rodinia's pyramid height).
    pub rows_per_kernel: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PathfinderParams {
    fn default() -> Self {
        Self {
            rows: 5000,
            cols: 2000,
            rows_per_kernel: 20,
            seed: 11,
        }
    }
}

fn wall_value(seed: u64, i: u64) -> i32 {
    let x = (seed ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((x >> 40) % 10) as i32
}

fn dp_step(wall_row: &[i32], prev: &[i32], out: &mut [i32]) {
    let n = prev.len();
    for j in 0..n {
        let left = if j > 0 { prev[j - 1] } else { i32::MAX };
        let right = if j + 1 < n { prev[j + 1] } else { i32::MAX };
        out[j] = wall_row[j] + prev[j].min(left).min(right);
    }
}

/// Sequential reference: final DP row.
pub fn reference(p: &PathfinderParams) -> Vec<i32> {
    let (r, c) = (p.rows, p.cols);
    let mut prev: Vec<i32> = (0..c).map(|j| wall_value(p.seed, j as u64)).collect();
    let mut out = vec![0i32; c];
    for i in 1..r {
        let row: Vec<i32> = (0..c)
            .map(|j| wall_value(p.seed, (i * c + j) as u64))
            .collect();
        dp_step(&row, &prev, &mut out);
        std::mem::swap(&mut prev, &mut out);
    }
    prev
}

/// Runs pathfinder under `mode` (checksum = sum of the final DP row).
pub fn run(mut m: Machine, mode: MemMode, p: &PathfinderParams) -> RunReport {
    let (rows, cols) = (p.rows, p.cols);
    let row_bytes = (cols * 4) as u64;
    let wall_bytes = (rows * cols * 4) as u64;

    // ---- real data ----
    let wall: Vec<i32> = (0..rows * cols)
        .map(|i| wall_value(p.seed, i as u64))
        .collect();
    let mut prev: Vec<i32> = wall[..cols].to_vec();
    let mut next = vec![0i32; cols];

    // ---- GPU context initialization + argument parsing (phase 1) ----
    m.phase(Phase::CtxInit);
    m.rt.cuda_init();

    // ---- allocation ----
    m.phase(Phase::Alloc);
    let wall_buf = UBuf::alloc(&mut m, mode, wall_bytes, "pathfinder.wall");
    // Two result rows ping-pong on the GPU (GPU-only in all versions).
    let result =
        m.rt.cuda_malloc(gh_units::Bytes::new(2 * row_bytes), "pathfinder.result")
            .expect("two rows always fit"); // gh-audit: allow(no-unwrap-in-lib) -- two rows are far below any modelled HBM capacity

    // ---- CPU-side initialization ----
    m.phase(Phase::CpuInit);
    wall_buf.cpu_init(&mut m, 0, wall_bytes);

    // ---- compute ----
    m.phase(Phase::Compute);
    wall_buf.upload(&mut m);
    // Seed row: row 0 of the wall becomes the initial result row.
    {
        let mut k = m.rt.launch("pathfinder_seed");
        k.read(wall_buf.gpu(), 0, row_bytes);
        k.write(&result, 0, row_bytes);
        k.finish();
    }
    let mut row = 1usize;
    let mut flip = 0u64;
    while row < rows {
        let batch = p.rows_per_kernel.min(rows - row);
        let mut k = m.rt.launch("pathfinder_step");
        for i in 0..batch {
            let r = row + i;
            // Real DP.
            let w = &wall[r * cols..(r + 1) * cols];
            dp_step(w, &prev, &mut next);
            std::mem::swap(&mut prev, &mut next);
            // Metered: one narrow wall row + result row ping-pong.
            k.read(wall_buf.gpu(), (r * cols * 4) as u64, row_bytes);
            k.read(&result, flip * row_bytes, row_bytes);
            flip ^= 1;
            k.write(&result, flip * row_bytes, row_bytes);
        }
        k.compute((batch * cols * 4) as u64);
        k.finish();
        row += batch;
    }
    // Read the final row back. Unified versions read the wall buffer's
    // device-resident result? No — result is GPU-only; explicit copies it
    // out, unified versions still need a D2H copy (GPU-only buffer).
    {
        // Rodinia copies the result row to the host at the end; for
        // unified versions the paper keeps GPU-only buffers in cudaMalloc,
        // so this stays an explicit copy in all three variants.
        let host_row =
            m.rt.malloc_system(gh_units::Bytes::new(row_bytes), "pathfinder.out");
        m.rt.memcpy(&host_row, 0, &result, flip * row_bytes, row_bytes);
        m.rt.free(host_row);
    }

    let checksum = prev.iter().map(|&x| x as f64).sum::<f64>();
    m.set_checksum(checksum);

    // ---- de-allocation ----
    m.phase(Phase::Dealloc);
    m.rt.free(result);
    wall_buf.free(&mut m);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PathfinderParams {
        PathfinderParams {
            rows: 100,
            cols: 64,
            rows_per_kernel: 10,
            seed: 5,
        }
    }

    #[test]
    fn all_modes_agree_with_reference() {
        let p = small();
        let expected: f64 = reference(&p).iter().map(|&x| x as f64).sum();
        for mode in MemMode::ALL {
            let r = run(gh_sim::platform::gh200().machine(), mode, &p);
            assert_eq!(r.checksum, expected, "{mode}");
        }
    }

    #[test]
    fn dp_step_picks_minimum_neighbour() {
        let prev = vec![5, 1, 9];
        let wall = vec![2, 2, 2];
        let mut out = vec![0; 3];
        dp_step(&wall, &prev, &mut out);
        assert_eq!(out, vec![3, 3, 3]);
    }

    #[test]
    fn reference_monotone_costs() {
        // All wall values are ≥ 0, so DP values never decrease with rows.
        let p = small();
        let last = reference(&p);
        assert!(last.iter().all(|&x| x >= 0));
    }

    #[test]
    fn narrow_rows_touch_few_bytes_per_kernel() {
        // The per-step wall read is one row = cols × 4 bytes; with the
        // default input this is far below one 64 KiB page — the
        // amplification setup of Fig 7.
        let p = PathfinderParams::default();
        assert!((p.cols * 4) < 64 * 1024);
    }
}
