//! BFS: breadth-first search (Rodinia).
//!
//! Mixed access pattern: dense sweeps over the frontier masks plus
//! data-dependent gathers into the node/edge arrays — the gathers are the
//! irregular half that stresses remote cacheline access and TLB reach.

use gh_profiler::Phase;
use gh_sim::{Machine, MemMode, RunReport};

use crate::common::{coalesce, coalesce_unit_ids, UBuf};

/// Input parameters.
#[derive(Debug, Clone)]
pub struct BfsParams {
    /// Node count (paper: 16M; scaled default 1M).
    pub nodes: usize,
    /// Average out-degree.
    pub degree: usize,
    /// RNG seed for graph construction.
    pub seed: u64,
}

impl Default for BfsParams {
    fn default() -> Self {
        Self {
            nodes: 1_000_000,
            degree: 6,
            seed: 31,
        }
    }
}

/// A CSR graph.
#[derive(Debug)]
pub struct Graph {
    /// Per-node `(first_edge, edge_count)`.
    pub nodes: Vec<(u32, u32)>,
    /// Flattened adjacency.
    pub edges: Vec<u32>,
}

fn rng_next(state: &mut u64) -> u64 {
    // SplitMix64: deterministic, seedable, no dependency on rand's API.
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the random graph the Rodinia input generator would produce:
/// every node gets `degree ± 2` random neighbours, plus a chain edge
/// (`i → i+1`) so the graph is connected and BFS reaches everything.
pub fn build_graph(p: &BfsParams) -> Graph {
    let n = p.nodes;
    let mut state = p.seed | 1;
    let mut nodes = Vec::with_capacity(n);
    let mut edges = Vec::new();
    for i in 0..n {
        let start = edges.len() as u32;
        let extra = (rng_next(&mut state) % 5) as i64 - 2;
        let deg = (p.degree as i64 + extra).max(1) as usize;
        if i + 1 < n {
            edges.push((i + 1) as u32);
        }
        for _ in 0..deg {
            edges.push((rng_next(&mut state) % n as u64) as u32);
        }
        nodes.push((start, edges.len() as u32 - start));
    }
    Graph { nodes, edges }
}

/// Sequential reference BFS: level per node (-1 if unreachable).
pub fn reference(g: &Graph) -> Vec<i32> {
    let mut cost = vec![-1i32; g.nodes.len()];
    cost[0] = 0;
    let mut frontier = vec![0u32];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            let (s, c) = g.nodes[u as usize];
            for &v in &g.edges[s as usize..(s + c) as usize] {
                if cost[v as usize] < 0 {
                    cost[v as usize] = cost[u as usize] + 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    cost
}

fn checksum_of(cost: &[i32]) -> f64 {
    cost.iter()
        .map(|&c| if c >= 0 { c as f64 + 1.0 } else { 0.0 })
        .sum()
}

/// Meter a coalesced span: big merged runs are dense streaming reads,
/// small fragments are irregular (line-granular) accesses.
fn meter_read(k: &mut gh_sim::Kernel<'_>, buf: &gh_sim::Buffer, off: u64, len: u64) {
    if len >= 2048 {
        k.read(buf, off, len);
    } else {
        k.read_strided(buf, off, len, len.max(1), 1);
    }
}

fn meter_write(k: &mut gh_sim::Kernel<'_>, buf: &gh_sim::Buffer, off: u64, len: u64) {
    if len >= 2048 {
        k.write(buf, off, len);
    } else {
        k.write_strided(buf, off, len, len.max(1), 1);
    }
}

/// Runs BFS under `mode` (checksum = Σ (level+1) over reached nodes).
pub fn run(mut m: Machine, mode: MemMode, p: &BfsParams) -> RunReport {
    let g = build_graph(p);
    let n = p.nodes;
    let nodes_bytes = (n * 8) as u64;
    let edges_bytes = (g.edges.len() * 4) as u64;
    let cost_bytes = (n * 4) as u64;
    let mask_bytes = n as u64;

    // ---- GPU context initialization + argument parsing (phase 1) ----
    m.phase(Phase::CtxInit);
    m.rt.cuda_init();

    // ---- allocation ----
    m.phase(Phase::Alloc);
    let nodes_buf = UBuf::alloc(&mut m, mode, nodes_bytes, "bfs.nodes");
    let edges_buf = UBuf::alloc(&mut m, mode, edges_bytes, "bfs.edges");
    let cost_buf = UBuf::alloc(&mut m, mode, cost_bytes, "bfs.cost");
    let mask_buf = UBuf::alloc(&mut m, mode, mask_bytes, "bfs.mask");
    let upd_buf = UBuf::alloc(&mut m, mode, mask_bytes, "bfs.updating");
    let vis_buf = UBuf::alloc(&mut m, mode, mask_bytes, "bfs.visited");

    // ---- CPU-side initialization ----
    m.phase(Phase::CpuInit);
    nodes_buf.cpu_init(&mut m, 0, nodes_bytes);
    edges_buf.cpu_init(&mut m, 0, edges_bytes);
    cost_buf.cpu_init(&mut m, 0, cost_bytes);
    mask_buf.cpu_init(&mut m, 0, mask_bytes);
    upd_buf.cpu_init(&mut m, 0, mask_bytes);
    vis_buf.cpu_init(&mut m, 0, mask_bytes);

    // ---- compute ----
    m.phase(Phase::Compute);
    for b in [
        &nodes_buf, &edges_buf, &cost_buf, &mask_buf, &upd_buf, &vis_buf,
    ] {
        b.upload(&mut m);
    }

    // Real BFS with metered per-level kernels.
    let mut cost = vec![-1i32; n];
    cost[0] = 0;
    let mut frontier: Vec<u32> = vec![0];
    while !frontier.is_empty() {
        let mut next: Vec<u32> = Vec::new();
        // Kernel 1: expand the frontier.
        {
            let mut k = m.rt.launch("bfs_kernel1");
            // Dense sweep over the mask to find frontier threads.
            k.read(mask_buf.gpu(), 0, mask_bytes);
            // Gather node descriptors of the frontier (coalesced; all
            // unit-granular touch lists go through the bitmap coalescer,
            // which produces the same spans as sort+merge without the
            // per-level sort).
            for (off, len) in coalesce_unit_ids(&frontier, 8, n) {
                meter_read(&mut k, nodes_buf.gpu(), off, len);
            }
            // Per-node adjacency segments + neighbour visited checks.
            let mut edge_touches = Vec::with_capacity(frontier.len());
            let mut neigh_ids = Vec::new();
            let mut discovered = Vec::new();
            for &u in &frontier {
                let (s, c) = g.nodes[u as usize];
                edge_touches.push(((s as u64) * 4, (c as u64) * 4));
                for &v in &g.edges[s as usize..(s + c) as usize] {
                    neigh_ids.push(v);
                    if cost[v as usize] < 0 {
                        cost[v as usize] = cost[u as usize] + 1;
                        next.push(v);
                        discovered.push(v);
                    }
                }
            }
            for (off, len) in coalesce(edge_touches) {
                meter_read(&mut k, edges_buf.gpu(), off, len);
            }
            for (off, len) in coalesce_unit_ids(&neigh_ids, 1, n) {
                meter_read(&mut k, vis_buf.gpu(), off, len);
            }
            // Scatter: new costs + updating mask for discovered nodes.
            for (off, len) in coalesce_unit_ids(&discovered, 4, n) {
                meter_write(&mut k, cost_buf.gpu(), off, len);
            }
            for (off, len) in coalesce_unit_ids(&discovered, 1, n) {
                meter_write(&mut k, upd_buf.gpu(), off, len);
            }
            k.compute((n + g.edges.len()) as u64);
            k.finish();
        }
        // Kernel 2: fold the updating mask into mask/visited.
        {
            let mut k = m.rt.launch("bfs_kernel2");
            k.read(upd_buf.gpu(), 0, mask_bytes);
            for (off, len) in coalesce_unit_ids(&next, 1, n) {
                meter_write(&mut k, mask_buf.gpu(), off, len);
                meter_write(&mut k, vis_buf.gpu(), off, len);
            }
            k.compute(n as u64);
            k.finish();
        }
        frontier = next;
    }
    cost_buf.download(&mut m, 0, cost_bytes);
    m.set_checksum(checksum_of(&cost));

    // ---- de-allocation ----
    m.phase(Phase::Dealloc);
    for b in [nodes_buf, edges_buf, cost_buf, mask_buf, upd_buf, vis_buf] {
        b.free(&mut m);
    }
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BfsParams {
        BfsParams {
            nodes: 2000,
            degree: 4,
            seed: 13,
        }
    }

    #[test]
    fn graph_is_connected_via_chain() {
        let g = build_graph(&small());
        let cost = reference(&g);
        assert!(cost.iter().all(|&c| c >= 0), "chain edge connects all");
    }

    #[test]
    fn all_modes_agree_with_reference() {
        let p = small();
        let expected = checksum_of(&reference(&build_graph(&p)));
        for mode in MemMode::ALL {
            let r = run(gh_sim::platform::gh200().machine(), mode, &p);
            assert_eq!(r.checksum, expected, "{mode}");
        }
    }

    #[test]
    fn bfs_levels_are_sane() {
        let g = build_graph(&small());
        let cost = reference(&g);
        assert_eq!(cost[0], 0);
        // A neighbour of node 0 must be at level 1.
        let (s, c) = g.nodes[0];
        for &v in &g.edges[s as usize..(s + c) as usize] {
            assert!(cost[v as usize] <= 1);
        }
    }

    #[test]
    fn csr_offsets_are_consistent() {
        let g = build_graph(&small());
        let mut expected_start = 0u32;
        for &(s, c) in &g.nodes {
            assert_eq!(s, expected_start);
            expected_start = s + c;
        }
        assert_eq!(expected_start as usize, g.edges.len());
    }

    #[test]
    fn deterministic_across_runs() {
        let p = small();
        let a = run(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        let b = run(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(
            a.phases.compute, b.phases.compute,
            "virtual time deterministic"
        );
    }
}
