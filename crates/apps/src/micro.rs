//! Synthetic micro-workloads for the paper's future-work study:
//! characterizing access-counter migration across *diverse* access
//! patterns. Three canonical patterns complement the application suite:
//!
//! * [`stream`] — pure sequential bandwidth (STREAM triad shape);
//! * [`gups`] — Giga-Updates-Per-Second-style random read-modify-write
//!   (worst case for any migration heuristic: no page ever gets hot);
//! * [`pointer_chase`] — dependent irregular reads with a *skewed* hot
//!   set (a Zipf-ish subset of pages absorbs most touches — the best
//!   case for threshold-based migration).

use gh_profiler::Phase;
use gh_sim::{Machine, MemMode, RunReport};

use crate::common::UBuf;

/// Common parameters for the micro-workloads.
#[derive(Debug, Clone)]
pub struct MicroParams {
    /// Working-set bytes.
    pub bytes: u64,
    /// Kernel iterations.
    pub iterations: usize,
    /// Number of irregular touches per iteration (gups / pointer_chase).
    pub touches: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MicroParams {
    fn default() -> Self {
        Self {
            bytes: 32 << 20,
            iterations: 10,
            touches: 100_000,
            seed: 77,
        }
    }
}

fn rng_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// STREAM-triad-shaped sequential sweep: `a = b + s·c` per iteration.
pub fn stream(mut m: Machine, mode: MemMode, p: &MicroParams) -> RunReport {
    let third = p.bytes / 3;
    m.phase(Phase::CtxInit);
    m.rt.cuda_init();
    m.phase(Phase::Alloc);
    let a = UBuf::alloc(&mut m, mode, third, "stream.a");
    let b = UBuf::alloc(&mut m, mode, third, "stream.b");
    let c = UBuf::alloc(&mut m, mode, third, "stream.c");
    m.phase(Phase::CpuInit);
    b.cpu_init(&mut m, 0, third);
    c.cpu_init(&mut m, 0, third);
    m.phase(Phase::Compute);
    b.upload(&mut m);
    c.upload(&mut m);
    for _ in 0..p.iterations {
        let mut k = m.rt.launch("triad");
        k.read(b.gpu(), 0, third);
        k.read(c.gpu(), 0, third);
        k.write(a.gpu(), 0, third);
        k.compute(third / 4);
        k.finish();
    }
    m.set_checksum(third as f64);
    m.phase(Phase::Dealloc);
    a.free(&mut m);
    b.free(&mut m);
    c.free(&mut m);
    m.finish()
}

/// GUPS-style uniform random 8-byte read-modify-writes: every page is
/// touched equally rarely, so counters never cross the threshold.
pub fn gups(mut m: Machine, mode: MemMode, p: &MicroParams) -> RunReport {
    m.phase(Phase::CtxInit);
    m.rt.cuda_init();
    m.phase(Phase::Alloc);
    let table = UBuf::alloc(&mut m, mode, p.bytes, "gups.table");
    m.phase(Phase::CpuInit);
    table.cpu_init(&mut m, 0, p.bytes);
    m.phase(Phase::Compute);
    table.upload(&mut m);
    let mut st = p.seed | 1;
    for _ in 0..p.iterations {
        let mut k = m.rt.launch("gups");
        let offsets: Vec<u64> = (0..p.touches)
            .map(|_| (rng_next(&mut st) % (p.bytes - 8)) & !7)
            .collect();
        k.gather_read(
            table.gpu(),
            offsets.iter().copied(),
            gh_units::Bytes::new(8),
        );
        k.scatter_write(table.gpu(), offsets, gh_units::Bytes::new(8));
        k.compute(p.touches as u64 * 4);
        k.finish();
    }
    m.set_checksum(p.touches as f64);
    m.phase(Phase::Dealloc);
    table.free(&mut m);
    m.finish()
}

/// Skewed dependent reads: 90% of touches land in a hot 5% of the table
/// — the ideal shape for threshold-based (delayed) migration.
pub fn pointer_chase(mut m: Machine, mode: MemMode, p: &MicroParams) -> RunReport {
    m.phase(Phase::CtxInit);
    m.rt.cuda_init();
    m.phase(Phase::Alloc);
    let table = UBuf::alloc(&mut m, mode, p.bytes, "chase.table");
    m.phase(Phase::CpuInit);
    table.cpu_init(&mut m, 0, p.bytes);
    m.phase(Phase::Compute);
    table.upload(&mut m);
    let hot = (p.bytes / 20).max(4096);
    let mut st = p.seed | 1;
    for _ in 0..p.iterations {
        let mut k = m.rt.launch("chase");
        let offsets: Vec<u64> = (0..p.touches)
            .map(|_| {
                let r = rng_next(&mut st);
                let span = if r % 10 < 9 { hot } else { p.bytes };
                ((r >> 8) % (span - 8)) & !7
            })
            .collect();
        k.gather_read(table.gpu(), offsets, gh_units::Bytes::new(8));
        k.compute(p.touches as u64 * 2);
        k.finish();
    }
    m.set_checksum(hot as f64);
    m.phase(Phase::Dealloc);
    table.free(&mut m);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MicroParams {
        // 16 counter regions; touch counts sized so uniform access stays
        // below the 256-access threshold per region across the whole run
        // (the model's counters do not age, unlike the real driver's).
        MicroParams {
            bytes: 32 << 20,
            iterations: 6,
            touches: 1_500,
            seed: 5,
        }
    }

    #[test]
    fn stream_migrates_fully_under_counters() {
        // Few enough regions that the 1-notification-per-kernel budget
        // finishes migrating before the run ends.
        let p = MicroParams {
            bytes: 12 << 20,
            iterations: 10,
            touches: 0,
            seed: 5,
        };
        let r = stream(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        assert!(r.traffic.bytes_migrated_in > 0);
        // Last iteration reads locally.
        let last = r.kernel_history.last().unwrap();
        assert_eq!(last.1.c2c_read, 0, "{:?}", last);
    }

    #[test]
    fn gups_never_triggers_migration() {
        // Uniform random touches spread over every region: no region
        // collects `threshold` accesses within the run.
        let p = small();
        let r = gups(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        assert_eq!(
            r.traffic.bytes_migrated_in, 0,
            "uniform access must stay cold"
        );
        assert!(r.traffic.c2c_read > 0);
    }

    #[test]
    fn pointer_chase_migrates_only_the_hot_set() {
        let p = small();
        let r = pointer_chase(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        let migrated = r.traffic.bytes_migrated_in;
        assert!(migrated > 0, "hot set must cross the threshold");
        assert!(
            migrated < p.bytes / 2,
            "cold majority must stay CPU-resident: migrated {migrated}"
        );
    }

    #[test]
    fn skewed_remote_traffic_decays_as_hot_set_migrates() {
        // Future-work characterization: under a skewed pattern the hot
        // set migrates and the per-kernel remote line traffic drops,
        // while the uniform pattern's traffic stays flat.
        let p = MicroParams {
            bytes: 64 << 20,
            iterations: 12,
            touches: 50_000,
            seed: 5,
        };
        let chase = pointer_chase(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        let per_kernel: Vec<u64> = chase
            .kernel_traffic_named("chase")
            .iter()
            .map(|t| t.c2c_read)
            .collect();
        assert!(
            *per_kernel.last().unwrap() < per_kernel[0] / 2,
            "hot-set migration must cut remote traffic: {per_kernel:?}"
        );

        // Sparse uniform traffic (below the per-window threshold) stays
        // flat — no region ever gets hot.
        let g = gups(
            gh_sim::platform::gh200().machine(),
            MemMode::System,
            &small(),
        );
        let gk: Vec<u64> = g
            .kernel_traffic_named("gups")
            .iter()
            .map(|t| t.c2c_read)
            .collect();
        let first = gk[0] as f64;
        assert!(
            (*gk.last().unwrap() as f64) > first * 0.8,
            "uniform sparse traffic must stay flat: {gk:?}"
        );
    }

    #[test]
    fn all_micro_workloads_run_in_all_modes() {
        let p = MicroParams {
            bytes: 3 << 20,
            iterations: 2,
            touches: 2_000,
            seed: 1,
        };
        for mode in MemMode::ALL {
            stream(gh_sim::platform::gh200().machine(), mode, &p);
            gups(gh_sim::platform::gh200().machine(), mode, &p);
            pointer_chase(gh_sim::platform::gh200().machine(), mode, &p);
        }
    }
}
