//! Needle: Needleman-Wunsch sequence alignment (Rodinia).
//!
//! Wavefront-blocked dynamic programming. Irregular access: each kernel
//! processes the anti-diagonal of 16×16 blocks, touching strided row
//! segments and one-column strips — small clustered touches inside large
//! pages, the other Fig 7 amplification shape.

use gh_profiler::Phase;
use gh_sim::{Machine, MemMode, RunReport};

use crate::common::UBuf;

/// DP block edge (Rodinia's BLOCK_SIZE).
pub const BLOCK: usize = 16;

/// Input parameters.
#[derive(Debug, Clone)]
pub struct NeedleParams {
    /// Sequence length; matrix is `(n+1)²` (paper: 32k; scaled 2k).
    /// Must be a multiple of [`BLOCK`].
    pub n: usize,
    /// Gap penalty.
    pub penalty: i32,
    /// RNG seed for the sequences.
    pub seed: u64,
}

impl Default for NeedleParams {
    fn default() -> Self {
        Self {
            n: 2048,
            penalty: 10,
            seed: 17,
        }
    }
}

fn base(seed: u64, i: u64) -> u8 {
    let x = (seed ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((x >> 33) % 23) as u8
}

/// Substitution score (stands in for the BLOSUM62 lookup).
fn score(a: u8, b: u8) -> i32 {
    if a == b {
        8
    } else {
        -(((a as i32 * 7 + b as i32 * 3) % 9) + 1)
    }
}

/// Builds the reference (substitution-score) matrix, `(n+1)²` entries,
/// row-major; row 0 and column 0 are unused (zeros).
pub fn build_reference_matrix(p: &NeedleParams) -> Vec<i32> {
    let w = p.n + 1;
    let mut r = vec![0i32; w * w];
    for i in 1..=p.n {
        let a = base(p.seed, i as u64);
        for j in 1..=p.n {
            let b = base(p.seed + 1, j as u64);
            r[i * w + j] = score(a, b);
        }
    }
    r
}

/// Plain full-matrix DP (correctness reference).
#[allow(clippy::needless_range_loop)] // DP border init indexes the flat matrix directly
pub fn reference(p: &NeedleParams) -> Vec<i32> {
    let w = p.n + 1;
    let reference = build_reference_matrix(p);
    let mut mat = vec![0i32; w * w];
    for i in 0..=p.n {
        mat[i * w] = -(i as i32) * p.penalty;
    }
    for j in 0..=p.n {
        mat[j] = -(j as i32) * p.penalty;
    }
    for i in 1..=p.n {
        for j in 1..=p.n {
            mat[i * w + j] = (mat[(i - 1) * w + j - 1] + reference[i * w + j])
                .max(mat[i * w + j - 1] - p.penalty)
                .max(mat[(i - 1) * w + j] - p.penalty);
        }
    }
    mat
}

/// Runs needle under `mode` (checksum = final alignment score
/// `mat[n][n]`).
#[allow(clippy::needless_range_loop)] // DP border init indexes the flat matrix directly
pub fn run(mut m: Machine, mode: MemMode, p: &NeedleParams) -> RunReport {
    assert_eq!(p.n % BLOCK, 0, "n must be a multiple of {BLOCK}");
    let n = p.n;
    let w = n + 1;
    let bytes = (w * w * 4) as u64;

    // ---- real data ----
    let refm = build_reference_matrix(p);
    let mut mat = vec![0i32; w * w];

    // ---- GPU context initialization + argument parsing (phase 1) ----
    m.phase(Phase::CtxInit);
    m.rt.cuda_init();

    // ---- allocation ----
    m.phase(Phase::Alloc);
    let mat_buf = UBuf::alloc(&mut m, mode, bytes, "needle.mat");
    let ref_buf = UBuf::alloc(&mut m, mode, bytes, "needle.ref");

    // ---- CPU-side initialization ----
    m.phase(Phase::CpuInit);
    for i in 0..=n {
        mat[i * w] = -(i as i32) * p.penalty;
    }
    for j in 0..=n {
        mat[j] = -(j as i32) * p.penalty;
    }
    // The CPU writes the whole reference matrix and the DP borders.
    ref_buf.cpu_init(&mut m, 0, bytes);
    mat_buf.cpu_init(&mut m, 0, bytes);

    // ---- compute ----
    m.phase(Phase::Compute);
    mat_buf.upload(&mut m);
    ref_buf.upload(&mut m);
    let nb = n / BLOCK;
    let row_stride = (w * 4) as u64;
    for wave in 0..(2 * nb - 1) {
        let mut k = m.rt.launch("needle_wave");
        let mut blocks = 0u64;
        for bi in 0..nb {
            let bj = wave as isize - bi as isize;
            if bj < 0 || bj >= nb as isize {
                continue;
            }
            let bj = bj as usize;
            blocks += 1;
            let (r0, c0) = (bi * BLOCK + 1, bj * BLOCK + 1);
            // Real DP for this block.
            for i in r0..r0 + BLOCK {
                for j in c0..c0 + BLOCK {
                    mat[i * w + j] = (mat[(i - 1) * w + j - 1] + refm[i * w + j])
                        .max(mat[i * w + j - 1] - p.penalty)
                        .max(mat[(i - 1) * w + j] - p.penalty);
                }
            }
            // Metered accesses (matching the CUDA kernel's loads):
            let top = (((r0 - 1) * w + c0 - 1) * 4) as u64;
            k.read(mat_buf.gpu(), top, (BLOCK + 1) as u64 * 4); // top row + corner
            k.read_strided(
                mat_buf.gpu(),
                ((r0 * w + c0 - 1) * 4) as u64,
                4,
                row_stride,
                BLOCK as u64,
            ); // left column
            k.read_strided(
                ref_buf.gpu(),
                ((r0 * w + c0) * 4) as u64,
                (BLOCK * 4) as u64,
                row_stride,
                BLOCK as u64,
            ); // reference block
            k.write_strided(
                mat_buf.gpu(),
                ((r0 * w + c0) * 4) as u64,
                (BLOCK * 4) as u64,
                row_stride,
                BLOCK as u64,
            ); // DP block
        }
        k.compute(blocks * (BLOCK * BLOCK) as u64 * 6);
        k.finish();
    }
    let tail = bytes.min(4096); // traceback tail, as Rodinia reads it
    mat_buf.download(&mut m, bytes - tail, tail);

    m.set_checksum(mat[n * w + n] as f64);

    // ---- de-allocation ----
    m.phase(Phase::Dealloc);
    mat_buf.free(&mut m);
    ref_buf.free(&mut m);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NeedleParams {
        NeedleParams {
            n: 64,
            penalty: 4,
            seed: 9,
        }
    }

    #[test]
    fn all_modes_agree_with_reference() {
        let p = small();
        let w = p.n + 1;
        let expected = reference(&p)[p.n * w + p.n] as f64;
        for mode in MemMode::ALL {
            let r = run(gh_sim::platform::gh200().machine(), mode, &p);
            assert_eq!(r.checksum, expected, "{mode}");
        }
    }

    #[test]
    fn identical_sequences_score_positively() {
        // With seed' == seed both sequences are identical → all matches.
        let p = NeedleParams {
            n: 32,
            penalty: 4,
            seed: 1,
        };
        let mut refm = build_reference_matrix(&p);
        // Force a perfect match diagonal.
        let w = p.n + 1;
        for i in 1..=p.n {
            refm[i * w + i] = 8;
        }
        assert!(refm[w + 1] <= 8);
    }

    #[test]
    fn blocked_equals_unblocked() {
        // The wavefront blocking in run() must produce the same matrix as
        // the plain loop; the checksum test covers mat[n][n], this covers
        // the whole final block via a direct comparison.
        let p = small();
        let full = reference(&p);
        let r = run(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        assert_eq!(r.checksum, full[p.n * (p.n + 1) + p.n] as f64);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn non_multiple_block_size_panics() {
        let p = NeedleParams {
            n: 30,
            penalty: 1,
            seed: 0,
        };
        run(gh_sim::platform::gh200().machine(), MemMode::System, &p);
    }

    #[test]
    fn score_is_symmetric_on_match() {
        assert_eq!(score(5, 5), 8);
        assert!(score(1, 2) < 0);
    }
}
