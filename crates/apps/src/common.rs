//! Shared infrastructure for the application ports: the unified-buffer
//! abstraction implementing the paper's Figure 2 code transformation.

use gh_sim::{Buffer, Machine, MemMode, Node};

/// A data buffer under one of the three memory-management strategies.
///
/// * `Explicit`: a host (`malloc`) / device (`cudaMalloc`) pair with
///   explicit `cudaMemcpy` at phase boundaries — the original pattern;
/// * `System` / `Managed`: one unified buffer; uploads/downloads become
///   no-ops (plus the device synchronization the paper adds to preserve
///   semantics).
#[derive(Debug)]
pub struct UBuf {
    mode: MemMode,
    host: Option<Buffer>,
    dev: Buffer,
    /// Requested (un-rounded) size: allocators round up to their page
    /// granularity, but copies and host access use the logical size.
    bytes: u64,
}

impl UBuf {
    /// Allocates `bytes` under `mode`.
    pub fn alloc(m: &mut Machine, mode: MemMode, bytes: u64, tag: &str) -> UBuf {
        match mode {
            MemMode::Explicit => {
                let host =
                    m.rt.malloc_system(gh_units::Bytes::new(bytes), &format!("{tag}.host"));
                let dev =
                    m.rt.cuda_malloc(gh_units::Bytes::new(bytes), &format!("{tag}.dev"))
                        .expect("explicit version assumes the buffer fits in GPU memory"); // gh-audit: allow(no-unwrap-in-lib) -- explicit mode asserts the working set fits in HBM; oversizing is an experiment-config error
                UBuf {
                    mode,
                    host: Some(host),
                    dev,
                    bytes,
                }
            }
            MemMode::System => UBuf {
                mode,
                host: None,
                dev: m.rt.malloc_system(gh_units::Bytes::new(bytes), tag),
                bytes,
            },
            MemMode::Managed => UBuf {
                mode,
                host: None,
                dev: m.rt.cuda_malloc_managed(gh_units::Bytes::new(bytes), tag),
                bytes,
            },
        }
    }

    /// Allocates a buffer that the original code kept GPU-only (never
    /// copied to/from the host). The paper's unified ports still convert
    /// these when they are *initialized by a GPU kernel* and later read
    /// through unified access (the SRAD derivative arrays); explicit mode
    /// keeps plain `cudaMalloc`.
    pub fn alloc_gpu_scratch(m: &mut Machine, mode: MemMode, bytes: u64, tag: &str) -> UBuf {
        match mode {
            MemMode::Explicit => UBuf {
                mode,
                host: None,
                dev: m
                    .rt
                    .cuda_malloc(gh_units::Bytes::new(bytes), tag)
                    .expect("explicit version assumes scratch fits in GPU memory"), // gh-audit: allow(no-unwrap-in-lib) -- explicit mode asserts scratch fits in HBM; oversizing is an experiment-config error
                bytes,
            },
            _ => UBuf::alloc(m, mode, bytes, tag),
        }
    }

    /// The buffer GPU kernels should access.
    pub fn gpu(&self) -> &Buffer {
        &self.dev
    }

    /// The buffer the CPU should access (host side for explicit mode).
    pub fn cpu(&self) -> &Buffer {
        self.host.as_ref().unwrap_or(&self.dev)
    }

    /// Logical length in bytes (the requested size, before page
    /// rounding).
    pub fn len(&self) -> u64 {
        self.bytes
    }

    /// Whether the buffer is zero-length (never for live buffers).
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// CPU-side sequential initialization of `[off, off+len)`.
    pub fn cpu_init(&self, m: &mut Machine, off: u64, len: u64) {
        m.rt.cpu_write(self.cpu(), off, len);
    }

    /// Makes CPU-written data visible to the GPU: `cudaMemcpy` H2D for
    /// explicit mode, nothing for unified modes.
    pub fn upload(&self, m: &mut Machine) {
        if let Some(host) = &self.host {
            m.rt.memcpy(&self.dev, 0, host, 0, self.len());
        }
    }

    /// Makes GPU results visible to the CPU: `cudaMemcpy` D2H for
    /// explicit mode, a direct CPU read for unified modes (which the
    /// paper precedes with `cudaDeviceSynchronize`).
    pub fn download(&self, m: &mut Machine, off: u64, len: u64) {
        match &self.host {
            Some(host) => {
                m.rt.memcpy(host, off, &self.dev, off, len);
            }
            None => {
                m.rt.device_synchronize();
                m.rt.cpu_read(&self.dev, off, len);
            }
        }
    }

    /// Frees the buffer(s).
    pub fn free(self, m: &mut Machine) {
        if let Some(host) = self.host {
            m.rt.free(host);
        }
        m.rt.free(self.dev);
    }

    /// Prefetches the whole buffer to a node (managed memory only).
    pub fn prefetch(&self, m: &mut Machine, to: Node) {
        assert_eq!(self.mode, MemMode::Managed, "prefetch needs managed memory");
        m.rt.prefetch(&self.dev, 0, self.len(), to);
    }
}

/// Merges a sorted sequence of `(offset, len)` touches into maximal
/// contiguous spans, so irregular-but-clustered gathers (BFS frontiers)
/// are metered as the coalesced transactions a GPU would issue.
pub fn coalesce(mut touches: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    gh_par::par_sort_unstable(&mut touches);
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(touches.len());
    for (off, len) in touches {
        if len == 0 {
            continue;
        }
        match out.last_mut() {
            Some((o, l)) if *o + *l >= off => {
                let end = (off + len).max(*o + *l);
                *l = end - *o;
            }
            _ => out.push((off, len)),
        }
    }
    out
}

/// Coalesces *unit* touches — every touch is `(id * unit, unit)` for an
/// id below `universe` — into the same maximal contiguous spans
/// [`coalesce`] would produce, via a touched-id bitmap instead of a
/// sort: O(ids + universe/64) beats O(ids log ids) on the per-level
/// frontier lists BFS meters by orders of magnitude. Two ids merge
/// exactly when consecutive, which is precisely `coalesce`'s
/// `end >= next_off` rule for equal-size unit touches, so the output is
/// identical span for span.
pub fn coalesce_unit_ids(ids: &[u32], unit: u64, universe: usize) -> Vec<(u64, u64)> {
    let words = universe.div_ceil(64);
    let mut bits = vec![0u64; words];
    let mut max_id = 0usize;
    for &id in ids {
        let id = id as usize;
        debug_assert!(id < universe, "id {id} outside universe {universe}");
        bits[id / 64] |= 1u64 << (id % 64);
        max_id = max_id.max(id);
    }
    let mut out: Vec<(u64, u64)> = Vec::new();
    if ids.is_empty() {
        return out;
    }
    let mut run_start: Option<u64> = None;
    let mut run_end = 0u64; // exclusive end of the open run
    for (w, &bits_w) in bits.iter().enumerate().take(max_id / 64 + 1) {
        let mut word = bits_w;
        while word != 0 {
            let id = (w as u64) * 64 + word.trailing_zeros() as u64;
            word &= word - 1; // clear lowest set bit
            match run_start {
                Some(_) if id == run_end => run_end = id + 1,
                Some(s) => {
                    out.push((s * unit, (run_end - s) * unit));
                    run_start = Some(id);
                    run_end = id + 1;
                }
                None => {
                    run_start = Some(id);
                    run_end = id + 1;
                }
            }
        }
    }
    if let Some(s) = run_start {
        out.push((s * unit, (run_end - s) * unit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_mem::params::MIB;
    use gh_sim::BufKind;

    #[test]
    fn explicit_mode_allocates_pair() {
        let mut m = gh_sim::platform::gh200().machine();
        let b = UBuf::alloc(&mut m, MemMode::Explicit, MIB, "x");
        assert_eq!(b.cpu().kind, BufKind::System);
        assert_eq!(b.gpu().kind, BufKind::Device);
        assert_ne!(b.cpu().id(), b.gpu().id());
        b.free(&mut m);
    }

    #[test]
    fn unified_modes_share_one_buffer() {
        for mode in [MemMode::System, MemMode::Managed] {
            let mut m = gh_sim::platform::gh200().machine();
            let b = UBuf::alloc(&mut m, mode, MIB, "x");
            assert_eq!(b.cpu().id(), b.gpu().id());
            b.free(&mut m);
        }
    }

    #[test]
    fn upload_copies_only_in_explicit_mode() {
        let mut m = gh_sim::platform::gh200().machine();
        let b = UBuf::alloc(&mut m, MemMode::Explicit, MIB, "x");
        b.cpu_init(&mut m, 0, MIB);
        let before = m.rt.link().bytes_h2d();
        b.upload(&mut m);
        assert_eq!(m.rt.link().bytes_h2d() - before, gh_units::Bytes::new(MIB));

        let mut m2 = gh_sim::platform::gh200().machine();
        let b2 = UBuf::alloc(&mut m2, MemMode::System, MIB, "x");
        b2.cpu_init(&mut m2, 0, MIB);
        let before = m2.rt.link().bytes_h2d();
        b2.upload(&mut m2);
        assert_eq!(m2.rt.link().bytes_h2d(), before, "no copy in system mode");
    }

    #[test]
    fn coalesce_merges_adjacent_and_overlapping() {
        let spans = coalesce(vec![(0, 8), (8, 8), (32, 4), (100, 8), (30, 4)]);
        assert_eq!(spans, vec![(0, 16), (30, 6), (100, 8)]);
    }

    #[test]
    fn coalesce_drops_empty_and_sorts() {
        let spans = coalesce(vec![(50, 0), (10, 2), (4, 2)]);
        assert_eq!(spans, vec![(4, 2), (10, 2)]);
    }

    #[test]
    fn coalesce_unit_ids_matches_coalesce() {
        // The bitmap fast path must match sort+merge span for span on
        // scattered, duplicated, clustered, and boundary-straddling ids.
        let mut state = 7u64;
        for unit in [1u64, 4, 8] {
            for universe in [1usize, 63, 64, 65, 1000] {
                let mut ids: Vec<u32> = (0..universe * 2)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        ((state >> 33) as usize % universe) as u32
                    })
                    .collect();
                ids.push(0);
                ids.push((universe - 1) as u32);
                let reference =
                    coalesce(ids.iter().map(|&id| (u64::from(id) * unit, unit)).collect());
                assert_eq!(
                    coalesce_unit_ids(&ids, unit, universe),
                    reference,
                    "unit={unit} universe={universe}"
                );
            }
        }
        assert!(coalesce_unit_ids(&[], 4, 100).is_empty());
    }
}
