//! K-means clustering — an *extension* workload (not in the paper's
//! Table 2), added for the paper's stated future work: understanding
//! access-counter-based migration on diverse workloads. K-means is the
//! classic Rodinia iterative-reuse pattern: every iteration re-reads the
//! whole feature matrix, so delayed migration pays off like SRAD, but
//! with a *read-only* hot structure (the features never change — only
//! the small centroid table does).

use gh_par::{par_map_reduce, Grain};
use gh_profiler::Phase;
use gh_sim::{Machine, MemMode, RunReport};

use crate::common::UBuf;

/// Input parameters.
#[derive(Debug, Clone)]
pub struct KmeansParams {
    /// Number of points (paper-suite scale: ~1M).
    pub points: usize,
    /// Feature dimensions.
    pub dims: usize,
    /// Cluster count.
    pub k: usize,
    /// Lloyd iterations.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KmeansParams {
    fn default() -> Self {
        Self {
            points: 1_000_000,
            dims: 16,
            k: 24,
            iterations: 8,
            seed: 41,
        }
    }
}

fn feature(seed: u64, i: u64) -> f32 {
    let x = (seed ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((x >> 11) as f64 / (1u64 << 53) as f64) as f32
}

fn nearest(point: &[f32], centroids: &[f32], dims: usize) -> usize {
    let k = centroids.len() / dims;
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for c in 0..k {
        let mut d = 0.0;
        for j in 0..dims {
            let diff = point[j] - centroids[c * dims + j];
            d += diff * diff;
        }
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

struct Model {
    features: Vec<f32>,
    centroids: Vec<f32>,
    assign: Vec<u32>,
}

fn build(p: &KmeansParams) -> Model {
    let features: Vec<f32> = (0..p.points * p.dims)
        .map(|i| feature(p.seed, i as u64))
        .collect();
    // Initial centroids: the first k points.
    let centroids = features[..p.k * p.dims].to_vec();
    Model {
        features,
        centroids,
        assign: vec![0; p.points],
    }
}

fn lloyd_iteration(m: &mut Model, p: &KmeansParams) -> u64 {
    // Assignment step (parallel).
    let dims = p.dims;
    let feats = &m.features;
    let cents = &m.centroids;
    let changed: Vec<u32> = (0..p.points)
        .map(|i| nearest(&feats[i * dims..(i + 1) * dims], cents, dims) as u32)
        .collect();
    let moved = par_map_reduce(
        0..p.points,
        0u64,
        |i| u64::from(changed[i] != m.assign[i]),
        |a, b| a + b,
    );
    let _ = Grain::Auto;
    m.assign = changed;
    // Update step (sequential; tiny relative to assignment).
    let mut sums = vec![0.0f64; p.k * dims];
    let mut counts = vec![0u64; p.k];
    for i in 0..p.points {
        let c = m.assign[i] as usize;
        counts[c] += 1;
        for j in 0..dims {
            sums[c * dims + j] += m.features[i * dims + j] as f64;
        }
    }
    for c in 0..p.k {
        if counts[c] > 0 {
            for j in 0..dims {
                m.centroids[c * dims + j] = (sums[c * dims + j] / counts[c] as f64) as f32;
            }
        }
    }
    moved
}

/// Sequential reference: final centroids after all iterations.
pub fn reference(p: &KmeansParams) -> Vec<f32> {
    let mut m = build(p);
    for _ in 0..p.iterations {
        lloyd_iteration(&mut m, p);
    }
    m.centroids
}

/// Runs k-means under `mode` (checksum = Σ centroids).
pub fn run(mut m: Machine, mode: MemMode, p: &KmeansParams) -> RunReport {
    let feat_bytes = (p.points * p.dims * 4) as u64;
    let cent_bytes = (p.k * p.dims * 4) as u64;
    let assign_bytes = (p.points * 4) as u64;

    let mut model = build(p);

    m.phase(Phase::CtxInit);
    m.rt.cuda_init();

    m.phase(Phase::Alloc);
    let feat_buf = UBuf::alloc(&mut m, mode, feat_bytes, "kmeans.features");
    let cent_buf = UBuf::alloc(&mut m, mode, cent_bytes.max(4096), "kmeans.centroids");
    // Assignments are read back every iteration (the CPU update step
    // consumes them), so this is a full host↔device buffer, not scratch.
    let assign_buf = UBuf::alloc(&mut m, mode, assign_bytes, "kmeans.assign");

    m.phase(Phase::CpuInit);
    feat_buf.cpu_init(&mut m, 0, feat_bytes);
    cent_buf.cpu_init(&mut m, 0, cent_bytes);

    m.phase(Phase::Compute);
    feat_buf.upload(&mut m);
    cent_buf.upload(&mut m);
    for _ in 0..p.iterations {
        lloyd_iteration(&mut model, p);
        // Assignment kernel: stream the features, read the (tiny, hot)
        // centroid table, write assignments.
        let mut k = m.rt.launch("kmeans_assign");
        k.read(feat_buf.gpu(), 0, feat_bytes);
        k.read(cent_buf.gpu(), 0, cent_bytes);
        k.write(assign_buf.gpu(), 0, assign_bytes);
        k.compute((p.points * p.dims * p.k) as u64 / 4);
        k.finish();
        // Update step runs on the CPU: read back assignments, write the
        // new centroid table.
        assign_buf.download(&mut m, 0, assign_bytes);
        cent_buf.cpu_init(&mut m, 0, cent_bytes);
        cent_buf.upload(&mut m);
    }

    let checksum: f64 = model.centroids.iter().map(|&x| x as f64).sum();
    m.set_checksum(checksum);

    m.phase(Phase::Dealloc);
    feat_buf.free(&mut m);
    cent_buf.free(&mut m);
    assign_buf.free(&mut m);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KmeansParams {
        KmeansParams {
            points: 3000,
            dims: 4,
            k: 5,
            iterations: 4,
            seed: 2,
        }
    }

    #[test]
    fn all_modes_agree_with_reference() {
        let p = small();
        let expected: f64 = reference(&p).iter().map(|&x| x as f64).sum();
        for mode in MemMode::ALL {
            let r = run(gh_sim::platform::gh200().machine(), mode, &p);
            let rel = (r.checksum - expected).abs() / expected.abs().max(1.0);
            assert!(rel < 1e-9, "{mode}: {} vs {expected}", r.checksum);
        }
    }

    #[test]
    fn iterations_reduce_movement() {
        let p = small();
        let mut m = build(&p);
        let first = lloyd_iteration(&mut m, &p);
        let mut last = first;
        for _ in 1..6 {
            last = lloyd_iteration(&mut m, &p);
        }
        assert!(
            last <= first,
            "assignments must stabilize: {first} → {last}"
        );
    }

    #[test]
    fn nearest_picks_closest_centroid() {
        let cents = vec![0.0, 0.0, 10.0, 10.0];
        assert_eq!(nearest(&[1.0, 1.0], &cents, 2), 0);
        assert_eq!(nearest(&[9.0, 9.0], &cents, 2), 1);
    }

    #[test]
    fn counter_migration_converges_like_srad() {
        // Future-work characterization: the read-only iterative feature
        // matrix behaves like SRAD's image under the access-counter
        // engine — remote reads decay as regions migrate, and late
        // iterations run from HBM. (The paper makes no on-vs-off
        // total-time claim; at 1:1024 scale the driver's fixed costs
        // cannot amortize, which the ablation benches quantify.)
        let p = KmeansParams {
            points: 200_000,
            dims: 16,
            k: 8,
            iterations: 10,
            seed: 3,
        };
        let r = run(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        assert!(r.traffic.bytes_migrated_in > 0, "features must migrate");
        let assigns = r.kernel_traffic_named("kmeans_assign");
        let first = assigns.first().unwrap();
        let last = assigns.last().unwrap();
        assert!(first.c2c_read > 0, "iteration 1 reads remotely");
        assert!(
            last.c2c_read < first.c2c_read / 4,
            "remote reads must decay: {} → {}",
            first.c2c_read,
            last.c2c_read
        );
        assert!(last.hbm_read > first.hbm_read, "local reads must grow");
    }
}
