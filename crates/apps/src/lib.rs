//! `gh-apps` — the paper's application suite (Table 2), minus Qiskit
//! (which lives in `gh-qsim`).
//!
//! Five Rodinia applications, each implemented as the *real algorithm*
//! (verified against a sequential reference) whose buffer accesses are
//! metered by the simulated Grace Hopper memory system:
//!
//! | app         | pattern   | default input (scaled 1:1024 from paper) |
//! |-------------|-----------|-------------------------------------------|
//! | needle      | irregular | 2048 × 2048 (paper: 32k × 32k)             |
//! | pathfinder  | regular   | 5000 × 2000 (paper: 100k × 20k)            |
//! | bfs         | mixed     | 1M nodes    (paper: 16M nodes)             |
//! | hotspot     | regular   | 1024 × 1024 (paper: 16k × 16k)             |
//! | srad        | irregular | 1800 × 1800 (paper: 20k × 20k)             |
//!
//! Every application comes in the paper's three variants ([`MemMode`]):
//! the original explicit-copy version, the system-allocated version and
//! the CUDA-managed version, derived with the same mechanical
//! transformation as the paper's Figure 2 (replace copy-pairs with a
//! single unified buffer; keep GPU-only scratch in `cudaMalloc`; add
//! device synchronization where copies used to synchronize).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod bfs;
pub mod common;
pub mod hotspot;
pub mod kmeans;
pub mod lud;
pub mod micro;
pub mod needle;
pub mod pathfinder;
pub mod srad;

pub use common::UBuf;
pub use gh_sim::{Machine, MemMode, RunReport};

/// Identifies one application of the suite (Qiskit excluded — see
/// `gh-qsim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// Needleman-Wunsch sequence alignment.
    Needle,
    /// 2-D grid dynamic-programming pathfinding.
    Pathfinder,
    /// Breadth-first search.
    Bfs,
    /// Thermal simulation stencil.
    Hotspot,
    /// Speckle-reducing anisotropic diffusion.
    Srad,
}

impl AppId {
    /// All five Rodinia applications.
    pub const ALL: [AppId; 5] = [
        AppId::Needle,
        AppId::Pathfinder,
        AppId::Bfs,
        AppId::Hotspot,
        AppId::Srad,
    ];

    /// Lowercase name as used in figures.
    pub fn name(self) -> &'static str {
        match self {
            AppId::Needle => "needle",
            AppId::Pathfinder => "pathfinder",
            AppId::Bfs => "bfs",
            AppId::Hotspot => "hotspot",
            AppId::Srad => "srad",
        }
    }

    /// Access pattern per the paper's Table 2.
    pub fn pattern(self) -> &'static str {
        match self {
            AppId::Needle | AppId::Srad => "irregular",
            AppId::Pathfinder | AppId::Hotspot => "regular",
            AppId::Bfs => "mixed",
        }
    }

    /// Runs the application with its default (scaled) input on `machine`.
    pub fn run(self, machine: Machine, mode: MemMode) -> RunReport {
        match self {
            AppId::Needle => needle::run(machine, mode, &needle::NeedleParams::default()),
            AppId::Pathfinder => {
                pathfinder::run(machine, mode, &pathfinder::PathfinderParams::default())
            }
            AppId::Bfs => bfs::run(machine, mode, &bfs::BfsParams::default()),
            AppId::Hotspot => hotspot::run(machine, mode, &hotspot::HotspotParams::default()),
            AppId::Srad => srad::run(machine, mode, &srad::SradParams::default()),
        }
    }

    /// Runs with inputs shrunk in linear dimension (for fast tests).
    pub fn run_small(self, machine: Machine, mode: MemMode) -> RunReport {
        match self {
            AppId::Needle => needle::run(
                machine,
                mode,
                &needle::NeedleParams {
                    n: 256,
                    ..Default::default()
                },
            ),
            AppId::Pathfinder => pathfinder::run(
                machine,
                mode,
                &pathfinder::PathfinderParams {
                    rows: 500,
                    cols: 400,
                    ..Default::default()
                },
            ),
            AppId::Bfs => bfs::run(
                machine,
                mode,
                &bfs::BfsParams {
                    nodes: 20_000,
                    ..Default::default()
                },
            ),
            AppId::Hotspot => hotspot::run(
                machine,
                mode,
                &hotspot::HotspotParams {
                    size: 256,
                    iterations: 8,
                    ..Default::default()
                },
            ),
            AppId::Srad => srad::run(
                machine,
                mode,
                &srad::SradParams {
                    size: 256,
                    iterations: 4,
                    ..Default::default()
                },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_patterns_match_table2() {
        assert_eq!(AppId::ALL.len(), 5);
        assert_eq!(AppId::Needle.pattern(), "irregular");
        assert_eq!(AppId::Pathfinder.pattern(), "regular");
        assert_eq!(AppId::Bfs.pattern(), "mixed");
        assert_eq!(AppId::Hotspot.pattern(), "regular");
        assert_eq!(AppId::Srad.pattern(), "irregular");
    }
}
