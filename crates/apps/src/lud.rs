//! LUD: blocked LU decomposition (Rodinia) — extension workload for the
//! future-work study. Its access pattern is distinctive: a *shrinking*
//! working set (iteration `k` touches only the trailing
//! `(n−k)×(n−k)` submatrix), so pages go cold over time — the
//! mirror-image of SRAD's stable iterative reuse, probing whether
//! delayed migration wastes effort on data that will not be re-read.

use gh_profiler::Phase;
use gh_sim::{Machine, MemMode, RunReport};

use crate::common::UBuf;

/// Block edge (Rodinia uses 16).
pub const BLOCK: usize = 16;

/// Input parameters.
#[derive(Debug, Clone)]
pub struct LudParams {
    /// Matrix edge; must be a multiple of [`BLOCK`].
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LudParams {
    fn default() -> Self {
        Self { n: 2048, seed: 57 }
    }
}

/// Generates a diagonally dominant matrix (guarantees a stable, pivot-
/// free factorization, as the Rodinia generator does).
pub fn generate(p: &LudParams) -> Vec<f32> {
    let n = p.n;
    let mut a = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let x = (p.seed ^ ((i * n + j) as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            a[i * n + j] = ((x >> 11) as f64 / (1u64 << 53) as f64) as f32;
        }
        a[i * n + i] += n as f32; // dominance
    }
    a
}

/// In-place unblocked LU (Doolittle, no pivoting) — the reference.
pub fn reference(p: &LudParams) -> Vec<f32> {
    let n = p.n;
    let mut a = generate(p);
    for k in 0..n {
        for i in k + 1..n {
            a[i * n + k] /= a[k * n + k];
            for j in k + 1..n {
                a[i * n + j] -= a[i * n + k] * a[k * n + j];
            }
        }
    }
    a
}

fn checksum_of(a: &[f32], n: usize) -> f64 {
    // Diagonal of U carries the determinant structure; it is a stable
    // fingerprint of the factorization.
    (0..n).map(|i| a[i * n + i].abs().ln() as f64).sum()
}

/// Runs blocked LUD under `mode` (checksum = Σ ln|U_ii|).
pub fn run(mut m: Machine, mode: MemMode, p: &LudParams) -> RunReport {
    assert_eq!(p.n % BLOCK, 0, "n must be a multiple of {BLOCK}");
    let n = p.n;
    let bytes = (n * n * 4) as u64;
    let mut a = generate(p);

    m.phase(Phase::CtxInit);
    m.rt.cuda_init();

    m.phase(Phase::Alloc);
    let a_buf = UBuf::alloc(&mut m, mode, bytes, "lud.matrix");

    m.phase(Phase::CpuInit);
    a_buf.cpu_init(&mut m, 0, bytes);

    m.phase(Phase::Compute);
    a_buf.upload(&mut m);
    let nb = n / BLOCK;
    let row_bytes = (n * 4) as u64;
    for kb in 0..nb {
        let k0 = kb * BLOCK;
        // Real compute: eliminate the block column/row like Rodinia's
        // diagonal, perimeter and internal kernels do, in one pass here.
        for k in k0..k0 + BLOCK {
            for i in k + 1..n {
                a[i * n + k] /= a[k * n + k];
                for j in k + 1..n {
                    a[i * n + j] -= a[i * n + k] * a[k * n + j];
                }
            }
        }
        // Metered accesses: the three Rodinia kernels touch the trailing
        // submatrix rows from k0 downward.
        let trail_rows = (n - k0) as u64;
        let trail_off = ((k0 * n + k0) * 4) as u64;
        let trail_row_bytes = ((n - k0) * 4) as u64;
        // diagonal: the k0 block on the diagonal.
        let mut k = m.rt.launch("lud_diagonal");
        k.read_strided(
            a_buf.gpu(),
            trail_off,
            (BLOCK * 4) as u64,
            row_bytes,
            BLOCK as u64,
        );
        k.write_strided(
            a_buf.gpu(),
            trail_off,
            (BLOCK * 4) as u64,
            row_bytes,
            BLOCK as u64,
        );
        k.compute((BLOCK * BLOCK * BLOCK) as u64);
        k.finish();
        // perimeter + internal: the whole trailing submatrix, row-strided.
        let mut k = m.rt.launch("lud_internal");
        k.read_strided(
            a_buf.gpu(),
            trail_off,
            trail_row_bytes,
            row_bytes,
            trail_rows,
        );
        k.write_strided(
            a_buf.gpu(),
            trail_off,
            trail_row_bytes,
            row_bytes,
            trail_rows,
        );
        k.compute(trail_rows * trail_rows * BLOCK as u64 * 2);
        k.finish();
    }
    a_buf.download(&mut m, 0, bytes);
    m.set_checksum(checksum_of(&a, n));

    m.phase(Phase::Dealloc);
    a_buf.free(&mut m);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LudParams {
        LudParams { n: 64, seed: 3 }
    }

    #[test]
    fn all_modes_agree_with_reference() {
        let p = small();
        let expected = checksum_of(&reference(&p), p.n);
        for mode in MemMode::ALL {
            let r = run(gh_sim::platform::gh200().machine(), mode, &p);
            let rel = (r.checksum - expected).abs() / expected.abs().max(1.0);
            assert!(rel < 1e-5, "{mode}: {} vs {expected}", r.checksum);
        }
    }

    #[test]
    fn factorization_reconstructs_matrix() {
        // A = L·U (L unit-lower, U upper): verify on a small instance.
        let p = LudParams { n: 32, seed: 9 };
        let orig = generate(&p);
        let lu = reference(&p);
        let n = p.n;
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0f64;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] as f64 };
                    let u = if k <= j { lu[k * n + j] as f64 } else { 0.0 };
                    if k <= i {
                        sum += l * u * if k <= j { 1.0 } else { 0.0 };
                    }
                }
                let rel =
                    (sum - orig[i * n + j] as f64).abs() / (orig[i * n + j].abs() as f64).max(1.0);
                assert!(rel < 1e-3, "A[{i}][{j}]: {sum} vs {}", orig[i * n + j]);
            }
        }
    }

    #[test]
    fn working_set_shrinks_over_iterations() {
        // The metered per-kernel traffic must decrease as the trailing
        // submatrix shrinks.
        let p = LudParams { n: 256, seed: 1 };
        let r = run(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        let internals: Vec<u64> = r
            .kernel_traffic_named("lud_internal")
            .iter()
            .map(|t| t.l1l2)
            .collect();
        assert!(internals.len() > 4);
        assert!(
            internals.last().unwrap() < &(internals[0] / 4),
            "traffic must shrink: {internals:?}"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn bad_block_multiple_panics() {
        run(
            gh_sim::platform::gh200().machine(),
            MemMode::System,
            &LudParams { n: 60, seed: 0 },
        );
    }
}
