//! Property tests for the replay engine: randomly generated valid traces
//! must execute without leaking memory, deterministically, in every
//! substituted memory mode.

use gh_sim::{replay, MemMode};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Stmt {
    CpuWrite {
        buf: usize,
        frac: u8,
    },
    Kernel {
        reads: Vec<(usize, u8)>,
        writes: Vec<(usize, u8)>,
    },
    Prefetch {
        buf: usize,
        to_gpu: bool,
    },
    Sync,
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0usize..4, 1u8..=100).prop_map(|(buf, frac)| Stmt::CpuWrite { buf, frac }),
        (
            proptest::collection::vec((0usize..4, 1u8..=100), 0..3),
            proptest::collection::vec((0usize..4, 1u8..=100), 0..3)
        )
            .prop_map(|(reads, writes)| Stmt::Kernel { reads, writes }),
        (0usize..4, prop::bool::ANY).prop_map(|(buf, to_gpu)| Stmt::Prefetch { buf, to_gpu }),
        Just(Stmt::Sync),
    ]
}

fn build_trace(sizes: &[u64], stmts: &[Stmt]) -> String {
    let mut t = String::new();
    for (i, s) in sizes.iter().enumerate() {
        t.push_str(&format!("alloc b{i} system {s}k\n"));
    }
    let span = |buf: usize, frac: u8| -> (u64, u64) {
        let bytes = sizes[buf] * 1024;
        (0, (bytes * frac as u64 / 100).max(1))
    };
    for s in stmts {
        match s {
            Stmt::CpuWrite { buf, frac } => {
                let (o, l) = span(*buf, *frac);
                t.push_str(&format!("cpu_write b{buf} {o} {l}\n"));
            }
            Stmt::Kernel { reads, writes } => {
                t.push_str("kernel k\n");
                for (b, f) in reads {
                    let (o, l) = span(*b, *f);
                    t.push_str(&format!("  read b{b} {o} {l}\n"));
                }
                for (b, f) in writes {
                    let (o, l) = span(*b, *f);
                    t.push_str(&format!("  write b{b} {o} {l}\n"));
                }
                t.push_str("  compute 1000\nend\n");
            }
            Stmt::Prefetch { buf, to_gpu } => {
                let (o, l) = span(*buf, 100);
                let node = if *to_gpu { "gpu" } else { "cpu" };
                t.push_str(&format!("prefetch b{buf} {node} {o} {l}\n"));
            }
            Stmt::Sync => t.push_str("sync\n"),
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any generated trace runs cleanly in all three modes and reclaims
    /// everything.
    #[test]
    fn random_traces_run_and_reclaim(
        sizes in proptest::collection::vec(4u64..2048, 4),
        stmts in proptest::collection::vec(stmt(), 0..12),
    ) {
        let trace = build_trace(&sizes, &stmts);
        for mode in MemMode::ALL {
            let r = replay(gh_sim::platform::gh200().machine(), &trace, Some(mode))
                .unwrap_or_else(|e| panic!("{mode}: {e}\n{trace}"));
            let last = r.samples.last().unwrap();
            prop_assert_eq!(last.rss, 0, "{} leaked CPU pages\n{}", mode, &trace);
            prop_assert_eq!(
                last.gpu_used,
                gh_sim::platform::gh200().gpu_driver_baseline(),
                "{} leaked GPU bytes\n{}", mode, &trace
            );
        }
    }

    /// Replay is deterministic: identical traces give identical reports.
    #[test]
    fn replay_is_deterministic(
        sizes in proptest::collection::vec(4u64..512, 4),
        stmts in proptest::collection::vec(stmt(), 0..8),
    ) {
        let trace = build_trace(&sizes, &stmts);
        let a = replay(gh_sim::platform::gh200().machine(), &trace, Some(MemMode::Managed)).unwrap();
        let b = replay(gh_sim::platform::gh200().machine(), &trace, Some(MemMode::Managed)).unwrap();
        prop_assert_eq!(a.phases, b.phases);
        prop_assert_eq!(a.traffic, b.traffic);
        prop_assert_eq!(a.kernel_times, b.kernel_times);
    }

    /// The L1↔L2 bytes a kernel sees never depend on the memory mode —
    /// only *where* the bytes come from changes.
    #[test]
    fn l1l2_is_mode_invariant(
        sizes in proptest::collection::vec(64u64..1024, 2),
        frac in 1u8..=100,
    ) {
        let trace = build_trace(
            &sizes,
            &[
                Stmt::CpuWrite { buf: 0, frac: 100 },
                Stmt::Kernel { reads: vec![(0, frac)], writes: vec![(1, frac)] },
            ],
        );
        let mut l1l2 = Vec::new();
        for mode in MemMode::ALL {
            let r = replay(gh_sim::platform::gh200().machine(), &trace, Some(mode)).unwrap();
            // Exclude the explicit pair's memcpy (not kernel traffic);
            // l1l2 only counts kernel-side bytes, so it is comparable.
            l1l2.push(r.traffic.l1l2);
        }
        prop_assert_eq!(l1l2[0], l1l2[1]);
        prop_assert_eq!(l1l2[1], l1l2[2]);
    }
}
