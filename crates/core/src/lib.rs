//! `gh-sim` — the top-level API of the Grace Hopper unified-memory
//! characterization framework.
//!
//! This facade ties the hardware model (`gh-mem`), the OS model (`gh-os`),
//! the CUDA runtime model (`gh-cuda`) and the profiler (`gh-profiler`)
//! into the object experiments program against: a [`Machine`].
//!
//! ```
//! use gh_sim::{platform, MemMode};
//! use gh_profiler::Phase;
//!
//! // Boot the calibrated GH200 backend; `platform::by_name("mi300a")`
//! // would boot the unified-physical-memory contrast machine instead.
//! let mut m = platform::gh200().machine();
//! m.phase(Phase::Alloc);
//! let buf = m.rt.malloc_system(gh_units::Bytes::new(1 << 20), "data");
//! m.phase(Phase::CpuInit);
//! m.rt.cpu_write(&buf, 0, 1 << 20);
//! m.phase(Phase::Compute);
//! let mut k = m.rt.launch("saxpy");
//! k.read(&buf, 0, 1 << 20);
//! k.compute(1 << 18);
//! k.finish();
//! m.phase(Phase::Dealloc);
//! m.rt.free(buf);
//! let report = m.finish();
//! assert!(report.phases.compute > 0);
//! ```
//!
//! The paper's three application variants map to [`MemMode`]:
//! `Explicit` (original `cudaMalloc` + `cudaMemcpy`), `System`
//! (`malloc`), and `Managed` (`cudaMallocManaged`) — see Figure 2 of the
//! paper for the code transformation this corresponds to.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod advisor;
pub mod machine;
pub mod mode;
pub mod platform;
pub mod replay;
pub mod report;

pub use advisor::{advise, advise_on, Advice};
pub use gh_cuda::{BufKind, Buffer, Kernel, KernelReport, Runtime, StreamId};
pub use gh_mem::params::{ParamError, KIB, MIB};
pub use gh_mem::phys::Node;
pub use gh_profiler::{Phase, PhaseTimes, Sample};
pub use machine::Machine;
pub use mode::MemMode;
pub use platform::{MachineConfig, MemoryBackend, Platform, PlatformCaps, PlatformError};
pub use replay::{replay, replay_on, ReplayError};
pub use report::RunReport;
