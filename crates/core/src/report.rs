//! Per-run experiment reports.

use gh_mem::clock::Ns;
use gh_mem::traffic::KernelTraffic;
use gh_profiler::{PhaseTimes, Sample};
use std::fmt::Write as _;

/// Everything a finished run produced, for figure harnesses and tests.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Registry name of the platform the run simulated.
    pub platform: &'static str,
    /// Per-phase virtual durations.
    pub phases: PhaseTimes,
    /// Memory-profiler series (virtual time, RSS, GPU used).
    pub samples: Vec<Sample>,
    /// Peak GPU used memory observed (driver baseline included).
    pub peak_gpu: u64,
    /// Peak RSS observed.
    pub peak_rss: u64,
    /// Cumulative traffic over every kernel.
    pub traffic: KernelTraffic,
    /// Per-kernel traffic history `(name, traffic)` in launch order.
    pub kernel_history: Vec<(String, KernelTraffic)>,
    /// Per-kernel durations `(name, ns)` in launch order.
    pub kernel_times: Vec<(String, Ns)>,
    /// Application-defined checksum for correctness verification.
    pub checksum: f64,
    /// Experiment steps requested but meaningless on this platform
    /// (e.g. an oversubscription balloon on a single physical pool).
    pub not_applicable: Vec<String>,
    /// Structured trace drained from the observability bus at `finish`
    /// (`None` when tracing was disabled for the run).
    pub trace: Option<gh_trace::TraceData>,
    /// Invariant sanitizer verdict (`None` when the sanitizer was off —
    /// it runs under `GH_SANITIZE=1`, or always in debug builds).
    pub sanitizer: Option<gh_units::sanitizer::SanitizerReport>,
}

impl RunReport {
    /// Reported total (paper convention: CPU init excluded).
    pub fn reported_total(&self) -> Ns {
        self.phases.reported_total()
    }

    /// Sums durations of kernels whose name starts with `prefix`.
    pub fn kernel_time_named(&self, prefix: &str) -> Ns {
        self.kernel_times
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, t)| t)
            .sum()
    }

    /// Traffic records of kernels whose name starts with `prefix`.
    pub fn kernel_traffic_named(&self, prefix: &str) -> Vec<&KernelTraffic> {
        self.kernel_history
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, t)| t)
            .collect()
    }

    /// Human-readable per-phase breakdown of what the bus recorded
    /// (faults, migration traffic, link utilization). `None` when the run
    /// was not traced.
    pub fn explain(&self) -> Option<String> {
        self.trace.as_ref().map(gh_trace::export::explain)
    }

    /// Chrome-trace (Perfetto) JSON built from the bus data. `None` when
    /// the run was not traced.
    pub fn chrome_trace(&self) -> Option<String> {
        self.trace.as_ref().map(gh_trace::export::chrome_trace)
    }

    /// Metrics registry as CSV. `None` when the run was not traced.
    pub fn metrics_csv(&self) -> Option<String> {
        self.trace.as_ref().map(gh_trace::export::metrics_csv)
    }

    /// Metrics registry as JSON. `None` when the run was not traced.
    pub fn metrics_json(&self) -> Option<String> {
        self.trace.as_ref().map(gh_trace::export::metrics_json)
    }

    /// Serializes the full report as compact JSON (phases, samples,
    /// traffic, per-kernel history). Hand-rolled: the offline dependency
    /// set has no serde, and the report's shape is fixed. String escaping
    /// is shared with every other exporter via [`gh_trace::json`].
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1024);
        o.push_str("{\"platform\":");
        gh_trace::json::quote_into(&mut o, self.platform);
        o.push_str(",\"phases\":");
        json_phases(&mut o, &self.phases);
        o.push_str(",\"samples\":[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "{{\"t\":{},\"rss\":{},\"gpu_used\":{}}}",
                s.t, s.rss, s.gpu_used
            );
        }
        let _ = write!(
            o,
            "],\"peak_gpu\":{},\"peak_rss\":{},\"traffic\":",
            self.peak_gpu, self.peak_rss
        );
        json_traffic(&mut o, &self.traffic);
        o.push_str(",\"kernel_history\":[");
        for (i, (name, t)) in self.kernel_history.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push('[');
            gh_trace::json::quote_into(&mut o, name);
            o.push(',');
            json_traffic(&mut o, t);
            o.push(']');
        }
        o.push_str("],\"kernel_times\":[");
        for (i, (name, ns)) in self.kernel_times.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push('[');
            gh_trace::json::quote_into(&mut o, name);
            let _ = write!(o, ",{ns}]");
        }
        o.push_str("],\"not_applicable\":[");
        for (i, note) in self.not_applicable.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            gh_trace::json::quote_into(&mut o, note);
        }
        o.push_str("],\"checksum\":");
        o.push_str(&gh_trace::json::f64_value(self.checksum));
        if let Some(s) = &self.sanitizer {
            let _ = write!(
                o,
                ",\"sanitizer\":{{\"snapshots\":{},\"checks\":{},\"violations\":[",
                s.snapshots, s.checks
            );
            for (i, v) in s.violations.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                let _ = write!(o, "{{\"invariant\":");
                gh_trace::json::quote_into(&mut o, &v.invariant.to_string());
                o.push_str(",\"phase\":");
                gh_trace::json::quote_into(&mut o, &v.phase);
                o.push_str(",\"detail\":");
                gh_trace::json::quote_into(&mut o, &v.detail);
                o.push('}');
            }
            o.push_str("]}");
        }
        o.push('}');
        o
    }
}

fn json_phases(o: &mut String, p: &PhaseTimes) {
    let _ = write!(
        o,
        "{{\"ctx_init\":{},\"alloc\":{},\"cpu_init\":{},\"compute\":{},\"dealloc\":{}}}",
        p.ctx_init, p.alloc, p.cpu_init, p.compute, p.dealloc
    );
}

fn json_traffic(o: &mut String, t: &KernelTraffic) {
    let _ = write!(
        o,
        "{{\"hbm_read\":{},\"hbm_write\":{},\"c2c_read\":{},\"c2c_write\":{},\"l1l2\":{},\
         \"gpu_faults\":{},\"ats_faults\":{},\"tlb_misses\":{},\"pages_migrated_in\":{},\
         \"pages_migrated_out\":{},\"bytes_migrated_in\":{},\"bytes_migrated_out\":{},\
         \"notifications\":{}}}",
        t.hbm_read,
        t.hbm_write,
        t.c2c_read,
        t.c2c_write,
        t.l1l2,
        t.gpu_faults,
        t.ats_faults,
        t.tlb_misses,
        t.pages_migrated_in,
        t.pages_migrated_out,
        t.bytes_migrated_in,
        t.bytes_migrated_out,
        t.notifications
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_filters_by_prefix() {
        let r = RunReport {
            platform: "gh200",
            phases: PhaseTimes::default(),
            samples: vec![],
            peak_gpu: 0,
            peak_rss: 0,
            traffic: KernelTraffic::default(),
            kernel_history: vec![
                ("srad1#1".into(), KernelTraffic::default()),
                ("srad2#2".into(), KernelTraffic::default()),
            ],
            kernel_times: vec![("srad1#1".into(), 10), ("srad2#2".into(), 20)],
            checksum: 0.0,
            not_applicable: vec![],
            trace: None,
            sanitizer: None,
        };
        assert_eq!(r.kernel_time_named("srad1"), 10);
        assert_eq!(r.kernel_time_named("srad"), 30);
        assert_eq!(r.kernel_traffic_named("srad2").len(), 1);
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            platform: "gh200",
            phases: PhaseTimes {
                ctx_init: 1,
                alloc: 2,
                cpu_init: 3,
                compute: 4,
                dealloc: 5,
            },
            samples: vec![Sample {
                t: 0,
                rss: 10,
                gpu_used: 20,
            }],
            peak_gpu: 20,
            peak_rss: 10,
            traffic: KernelTraffic::default(),
            kernel_history: vec![("k \"x\"#1".into(), KernelTraffic::default())],
            kernel_times: vec![("k \"x\"#1".into(), 7)],
            checksum: 1.5,
            not_applicable: vec![],
            trace: None,
            sanitizer: None,
        }
    }

    #[test]
    fn to_json_produces_valid_structure() {
        let j = report().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.starts_with("{\"platform\":\"gh200\""), "{j}");
        assert!(j.contains("\"phases\""));
        assert!(j.contains("\"not_applicable\":[]"));
        assert!(j.contains("\"compute\":4"));
        assert!(j.contains("\"checksum\":1.5"));
        assert!(j.contains("\\\"x\\\""), "quotes escaped: {j}");
        // Balanced braces/brackets (cheap sanity check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn to_json_handles_non_finite_checksum() {
        let mut r = report();
        r.checksum = f64::NAN;
        let j = r.to_json();
        assert!(j.ends_with("\"checksum\":null}"), "{j}");
    }

    #[test]
    fn to_json_escapes_control_chars_in_names() {
        let mut r = report();
        r.kernel_times = vec![("a\nb".into(), 1)];
        r.kernel_history.clear();
        let j = r.to_json();
        assert!(j.contains("a\\nb"), "{j}");
    }
}
