//! Per-run experiment reports.

use gh_mem::clock::Ns;
use gh_mem::traffic::KernelTraffic;
use gh_profiler::{PhaseTimes, Sample};

/// Everything a finished run produced, for figure harnesses and tests.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RunReport {
    /// Per-phase virtual durations.
    pub phases: PhaseTimes,
    /// Memory-profiler series (virtual time, RSS, GPU used).
    pub samples: Vec<Sample>,
    /// Peak GPU used memory observed (driver baseline included).
    pub peak_gpu: u64,
    /// Peak RSS observed.
    pub peak_rss: u64,
    /// Cumulative traffic over every kernel.
    pub traffic: KernelTraffic,
    /// Per-kernel traffic history `(name, traffic)` in launch order.
    pub kernel_history: Vec<(String, KernelTraffic)>,
    /// Per-kernel durations `(name, ns)` in launch order.
    pub kernel_times: Vec<(String, Ns)>,
    /// Application-defined checksum for correctness verification.
    pub checksum: f64,
}

impl RunReport {
    /// Reported total (paper convention: CPU init excluded).
    pub fn reported_total(&self) -> Ns {
        self.phases.reported_total()
    }

    /// Sums durations of kernels whose name starts with `prefix`.
    pub fn kernel_time_named(&self, prefix: &str) -> Ns {
        self.kernel_times
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, t)| t)
            .sum()
    }

    /// Traffic records of kernels whose name starts with `prefix`.
    pub fn kernel_traffic_named(&self, prefix: &str) -> Vec<&KernelTraffic> {
        self.kernel_history
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, t)| t)
            .collect()
    }

    /// Serializes the full report as pretty JSON (phases, samples,
    /// traffic, per-kernel history).
    pub fn to_json(&self) -> String {
        // Hand-rolled pretty printing is avoided: serde_json is not in
        // the offline dependency set, so serialize via the compact
        // internal writer below.
        crate::report::json::to_json_value(self)
    }
}

/// Minimal JSON serialization (the offline crate set has serde but not
/// serde_json, so a compact serializer is provided here; it supports the
/// subset of shapes `RunReport` uses).
pub mod json {
    use serde::ser::{self, Serialize};

    /// Serializes any `Serialize` value to a JSON string using a small
    /// built-in serializer (objects, arrays, strings, numbers, bools).
    pub fn to_json_value<T: Serialize>(v: &T) -> String {
        let mut out = String::new();
        v.serialize(Ser { out: &mut out }).expect("JSON serialization");
        out
    }

    struct Ser<'a> {
        out: &'a mut String,
    }

    /// Serialization error (should not occur for `RunReport` shapes).
    #[derive(Debug)]
    pub struct Error(String);
    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
    impl std::error::Error for Error {}
    impl ser::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    fn esc(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if c.is_control() => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    macro_rules! num {
        ($($f:ident: $t:ty),*) => {
            $(fn $f(self, v: $t) -> Result<(), Error> {
                self.out.push_str(&v.to_string());
                Ok(())
            })*
        };
    }

    impl<'a> ser::Serializer for Ser<'a> {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = SeqSer<'a>;
        type SerializeTuple = SeqSer<'a>;
        type SerializeTupleStruct = SeqSer<'a>;
        type SerializeTupleVariant = SeqSer<'a>;
        type SerializeMap = MapSer<'a>;
        type SerializeStruct = MapSer<'a>;
        type SerializeStructVariant = MapSer<'a>;

        num!(serialize_i8: i8, serialize_i16: i16, serialize_i32: i32, serialize_i64: i64,
             serialize_u8: u8, serialize_u16: u16, serialize_u32: u32, serialize_u64: u64);

        fn serialize_f32(self, v: f32) -> Result<(), Error> {
            self.serialize_f64(v as f64)
        }
        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            if v.is_finite() {
                self.out.push_str(&v.to_string());
            } else {
                self.out.push_str("null");
            }
            Ok(())
        }
        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            self.out.push_str(if v { "true" } else { "false" });
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Error> {
            esc(self.out, &v.to_string());
            Ok(())
        }
        fn serialize_str(self, v: &str) -> Result<(), Error> {
            esc(self.out, v);
            Ok(())
        }
        fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
            use serde::ser::SerializeSeq;
            let mut seq = self.serialize_seq(Some(v.len()))?;
            for b in v {
                seq.serialize_element(b)?;
            }
            seq.end()
        }
        fn serialize_none(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Error> {
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<(), Error> {
            self.serialize_unit()
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
        ) -> Result<(), Error> {
            esc(self.out, variant);
            Ok(())
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            self.out.push('{');
            esc(self.out, variant);
            self.out.push(':');
            v.serialize(Ser { out: self.out })?;
            self.out.push('}');
            Ok(())
        }
        fn serialize_seq(self, _: Option<usize>) -> Result<SeqSer<'a>, Error> {
            self.out.push('[');
            Ok(SeqSer {
                out: self.out,
                first: true,
            })
        }
        fn serialize_tuple(self, len: usize) -> Result<SeqSer<'a>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(self, _: &'static str, len: usize) -> Result<SeqSer<'a>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            len: usize,
        ) -> Result<SeqSer<'a>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_map(self, _: Option<usize>) -> Result<MapSer<'a>, Error> {
            self.out.push('{');
            Ok(MapSer {
                out: self.out,
                first: true,
            })
        }
        fn serialize_struct(self, _: &'static str, len: usize) -> Result<MapSer<'a>, Error> {
            self.serialize_map(Some(len))
        }
        fn serialize_struct_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            len: usize,
        ) -> Result<MapSer<'a>, Error> {
            self.serialize_map(Some(len))
        }
    }

    pub struct SeqSer<'a> {
        out: &'a mut String,
        first: bool,
    }
    impl<'a> ser::SerializeSeq for SeqSer<'a> {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            if !self.first {
                self.out.push(',');
            }
            self.first = false;
            v.serialize(Ser { out: self.out })
        }
        fn end(self) -> Result<(), Error> {
            self.out.push(']');
            Ok(())
        }
    }
    impl<'a> ser::SerializeTuple for SeqSer<'a> {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeSeq::end(self)
        }
    }
    impl<'a> ser::SerializeTupleStruct for SeqSer<'a> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeSeq::end(self)
        }
    }
    impl<'a> ser::SerializeTupleVariant for SeqSer<'a> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeSeq::end(self)
        }
    }

    pub struct MapSer<'a> {
        out: &'a mut String,
        first: bool,
    }
    impl<'a> ser::SerializeMap for MapSer<'a> {
        type Ok = ();
        type Error = Error;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, k: &T) -> Result<(), Error> {
            if !self.first {
                self.out.push(',');
            }
            self.first = false;
            k.serialize(Ser { out: self.out })
        }
        fn serialize_value<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            self.out.push(':');
            v.serialize(Ser { out: self.out })
        }
        fn end(self) -> Result<(), Error> {
            self.out.push('}');
            Ok(())
        }
    }
    impl<'a> ser::SerializeStruct for MapSer<'a> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            ser::SerializeMap::serialize_key(self, key)?;
            ser::SerializeMap::serialize_value(self, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeMap::end(self)
        }
    }
    impl<'a> ser::SerializeStructVariant for MapSer<'a> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            ser::SerializeStruct::serialize_field(self, key, v)
        }
        fn end(self) -> Result<(), Error> {
            self.out.push('}');
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_filters_by_prefix() {
        let r = RunReport {
            phases: PhaseTimes::default(),
            samples: vec![],
            peak_gpu: 0,
            peak_rss: 0,
            traffic: KernelTraffic::default(),
            kernel_history: vec![
                ("srad1#1".into(), KernelTraffic::default()),
                ("srad2#2".into(), KernelTraffic::default()),
            ],
            kernel_times: vec![("srad1#1".into(), 10), ("srad2#2".into(), 20)],
            checksum: 0.0,
        };
        assert_eq!(r.kernel_time_named("srad1"), 10);
        assert_eq!(r.kernel_time_named("srad"), 30);
        assert_eq!(r.kernel_traffic_named("srad2").len(), 1);
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            phases: PhaseTimes {
                ctx_init: 1,
                alloc: 2,
                cpu_init: 3,
                compute: 4,
                dealloc: 5,
            },
            samples: vec![Sample { t: 0, rss: 10, gpu_used: 20 }],
            peak_gpu: 20,
            peak_rss: 10,
            traffic: KernelTraffic::default(),
            kernel_history: vec![("k \"x\"#1".into(), KernelTraffic::default())],
            kernel_times: vec![("k \"x\"#1".into(), 7)],
            checksum: 1.5,
        }
    }

    #[test]
    fn to_json_produces_valid_structure() {
        let j = report().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"phases\""));
        assert!(j.contains("\"compute\":4"));
        assert!(j.contains("\"checksum\":1.5"));
        assert!(j.contains("\\\"x\\\""), "quotes escaped: {j}");
        // Balanced braces/brackets (cheap sanity check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_serializes_floats_and_arrays() {
        let j = super::json::to_json_value(&vec![1.25f64, 2.5]);
        assert_eq!(j, "[1.25,2.5]");
        let j = super::json::to_json_value(&("a", 1u32, true));
        assert_eq!(j, "[\"a\",1,true]");
    }

    #[test]
    fn json_escapes_control_chars() {
        let j = super::json::to_json_value(&"line\nbreak\tand\u{1}ctl");
        assert!(j.contains("\\n"), "{j}");
        assert!(j.contains("\\u0009") || j.contains("\\t"), "{j}");
        assert!(j.contains("\\u0001"), "{j}");
    }
}
