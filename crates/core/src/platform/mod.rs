//! The platform backend layer: machines other than the GH200.
//!
//! Experiment layers (apps, bench, replay, the CLI) must not name
//! concrete cost-model types — they ask a [`Platform`] for a
//! [`Machine`](crate::Machine) and read the platform's capabilities from
//! [`PlatformCaps`] to decide which experiments are meaningful. The
//! gh-audit rule `no-platform-leak` enforces the seam.
//!
//! Two backends ship today:
//!
//! * [`gh200`] — the paper's NVIDIA GH200 (Schieffer et al., ICPP 2024):
//!   two physical tiers, NVLink-C2C, fault- and counter-driven migration;
//! * [`mi300a`] — the AMD MI300A APU (Wahlgren et al.): one physical
//!   HBM3 pool shared by CPU and GPU, Infinity-Fabric coherence, **no**
//!   page migration and no oversubscription balloon.
//!
//! See `docs/platforms.md` for the trait contract and how to add a
//! backend.

mod gh200;
mod mi300a;

pub use gh200::Gh200Platform;
pub use mi300a::Mi300aPlatform;

use gh_cuda::RuntimeOptions;
use gh_mem::params::{CostParams, ParamError};

use crate::machine::Machine;

/// Static description of what a backend's hardware can do. Experiment
/// layers branch on these instead of hard-coding GH200 behaviour, so a
/// platform without a capability degrades to "not applicable" rather
/// than to a silent zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformCaps {
    /// Registry name (`--platform <name>` on the CLI).
    pub name: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// Pages can migrate between memories after placement (UVM fault
    /// migration, access-counter migration).
    pub migration: bool,
    /// A `cudaMalloc` balloon can shrink usable GPU memory, so simulated
    /// oversubscription experiments are meaningful.
    pub oversubscription: bool,
    /// First touch chooses a physical tier (NUMA placement matters).
    pub first_touch_tiering: bool,
    /// CPU and GPU share one physical pool (capacity is joint).
    pub unified_pool: bool,
    /// System page sizes the platform supports, in the order experiment
    /// sweeps should try them.
    pub page_sizes: &'static [u64],
    /// Page size used when a [`MachineConfig`] does not pick one.
    pub default_page_size: u64,
}

/// Portable per-run knobs a caller may set without naming backend types.
/// Everything defaults to the platform's calibrated behaviour.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// System page size; `None` picks the platform default. Must be one
    /// of the platform's `page_sizes`.
    pub page_size: Option<u64>,
    /// Enable automatic page migration (ignored on platforms whose caps
    /// say migration is impossible).
    pub auto_migration: bool,
    /// Enable speculative managed-memory prefetch (likewise capped).
    pub uvm_prefetch: bool,
    /// Memory-profiler sampling period in virtual ns; `None` keeps the
    /// backend default.
    pub profiler_period: Option<u64>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            page_size: None,
            auto_migration: true,
            uvm_prefetch: true,
            profiler_period: None,
        }
    }
}

impl MachineConfig {
    /// Config with an explicit system page size.
    pub fn with_page_size(page: u64) -> Self {
        Self {
            page_size: Some(page),
            ..Self::default()
        }
    }

    /// Config with automatic migration off.
    pub fn without_migration() -> Self {
        Self {
            auto_migration: false,
            ..Self::default()
        }
    }
}

/// Errors from the platform registry and machine builders.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// `by_name` was asked for a platform that is not registered.
    UnknownPlatform(String),
    /// The requested page size is not in the platform's supported set.
    UnsupportedPageSize {
        /// The page size that was asked for.
        page: u64,
        /// The sizes the platform supports.
        supported: &'static [u64],
    },
    /// A tweaked parameter set failed consistency validation.
    InvalidParams(ParamError),
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::UnknownPlatform(name) => {
                write!(f, "unknown platform '{name}' (available: ")?;
                for (i, n) in names().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, ")")
            }
            PlatformError::UnsupportedPageSize { page, supported } => {
                write!(f, "unsupported page size {page} (supported: ")?;
                for (i, p) in supported.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            PlatformError::InvalidParams(e) => write!(f, "invalid cost parameters: {e}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::InvalidParams(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamError> for PlatformError {
    fn from(e: ParamError) -> Self {
        PlatformError::InvalidParams(e)
    }
}

/// The cost-model half of a backend: how to build the parameter set and
/// runtime options for a given [`MachineConfig`]. Split from [`Platform`]
/// so the experiment-facing trait stays small.
pub trait MemoryBackend: std::fmt::Debug + Sync {
    /// Calibrated cost parameters for this configuration.
    fn cost_params(&self, cfg: &MachineConfig) -> Result<CostParams, PlatformError>;

    /// Runtime options for this configuration (a backend may clamp
    /// options its hardware cannot honour).
    fn runtime_options(&self, cfg: &MachineConfig) -> RuntimeOptions;
}

/// A simulated machine family. Everything outside the backend layer
/// reaches hardware through this trait: look one up with [`by_name`] (or
/// [`gh200`]/[`mi300a`] directly) and build machines from it.
pub trait Platform: MemoryBackend {
    /// What this platform's hardware can do.
    fn caps(&self) -> PlatformCaps;

    /// A machine with the platform's calibrated defaults.
    fn machine(&self) -> Machine {
        self.machine_cfg(&MachineConfig::default())
            .expect("platform default configuration is always valid") // gh-audit: allow(no-unwrap-in-lib) -- backends are tested to accept their own defaults
    }

    /// A machine for an explicit configuration.
    fn machine_cfg(&self, cfg: &MachineConfig) -> Result<Machine, PlatformError> {
        let params = self.cost_params(cfg)?;
        Ok(Machine::with_caps(
            params,
            self.runtime_options(cfg),
            self.caps(),
        ))
    }

    /// A machine for an explicit configuration under an explicit
    /// session spec (tracing, profiling, sanitizing, reference walk).
    /// Boundaries — the CLI, benches, gh-jobs workers — funnel through
    /// this so observability is per-run, never ambient: two machines
    /// with different session options coexist in one process.
    fn machine_session(
        &self,
        cfg: &MachineConfig,
        so: &gh_cuda::SessionOptions,
    ) -> Result<Machine, PlatformError> {
        let params = self.cost_params(cfg)?;
        let session = gh_cuda::SessionCtx::with_options(self.runtime_options(cfg), so);
        Ok(Machine::with_session(params, session, self.caps()))
    }

    /// A machine with individual cost parameters overridden (ablation
    /// studies). The tweak runs on the platform's calibrated set and the
    /// result is re-validated.
    fn machine_tweaked(
        &self,
        cfg: &MachineConfig,
        tweak: &dyn Fn(&mut CostParams),
    ) -> Result<Machine, PlatformError> {
        let mut params = self.cost_params(cfg)?;
        tweak(&mut params);
        params.validate()?;
        Ok(Machine::with_caps(
            params,
            self.runtime_options(cfg),
            self.caps(),
        ))
    }

    /// GPU memory permanently held by the driver (the `nvidia-smi`
    /// baseline), so harnesses can size working sets without naming the
    /// parameter type.
    fn gpu_driver_baseline(&self) -> u64 {
        self.cost_params(&MachineConfig::default())
            .map(|p| p.gpu_driver_baseline)
            .unwrap_or(0)
    }
}

static GH200: Gh200Platform = Gh200Platform;
static MI300A: Mi300aPlatform = Mi300aPlatform;

/// The NVIDIA GH200 backend (the paper's machine).
pub fn gh200() -> &'static dyn Platform {
    &GH200
}

/// The AMD MI300A unified-physical-memory backend.
pub fn mi300a() -> &'static dyn Platform {
    &MI300A
}

/// Every registered platform, in registry order.
pub fn all() -> [&'static dyn Platform; 2] {
    [&GH200, &MI300A]
}

/// Registry names, in registry order (what `--platform` accepts).
pub fn names() -> &'static [&'static str] {
    &["gh200", "mi300a"]
}

/// Looks a platform up by registry name.
pub fn by_name(name: &str) -> Result<&'static dyn Platform, PlatformError> {
    match name {
        "gh200" => Ok(&GH200),
        "mi300a" => Ok(&MI300A),
        other => Err(PlatformError::UnknownPlatform(other.to_string())),
    }
}

/// Time to move `bytes` at `bw` bytes/ns — re-exported here so harness
/// crates can compute analytic bounds without naming cost-model types.
pub fn transfer_ns(bytes: u64, bw: f64) -> u64 {
    CostParams::transfer_ns(gh_units::Bytes::new(bytes), bw)
}

/// Applies a [`MachineConfig`] page-size request to a parameter set,
/// enforcing the platform's supported set. Shared by backends.
pub(crate) fn apply_page_size(
    params: &mut CostParams,
    cfg: &MachineConfig,
    caps: &PlatformCaps,
) -> Result<(), PlatformError> {
    let page = cfg.page_size.unwrap_or(caps.default_page_size);
    if !caps.page_sizes.contains(&page) {
        return Err(PlatformError::UnsupportedPageSize {
            page,
            supported: caps.page_sizes,
        });
    }
    params.system_page_size = page;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_mem::params::{KIB, MIB};

    #[test]
    fn registry_finds_both_platforms() {
        assert_eq!(by_name("gh200").unwrap().caps().name, "gh200");
        assert_eq!(by_name("mi300a").unwrap().caps().name, "mi300a");
        assert_eq!(names(), ["gh200", "mi300a"]);
        assert_eq!(all().len(), names().len());
    }

    #[test]
    fn unknown_platform_is_a_typed_error() {
        let err = by_name("gh300").unwrap_err();
        assert_eq!(err, PlatformError::UnknownPlatform("gh300".into()));
        let msg = err.to_string();
        assert!(msg.contains("gh300") && msg.contains("gh200") && msg.contains("mi300a"));
    }

    #[test]
    fn default_machines_boot_on_every_platform() {
        for p in all() {
            let m = p.machine();
            assert_eq!(m.caps().name, p.caps().name);
            assert!(m.rt.gpu_free() > 0);
        }
    }

    #[test]
    fn default_page_size_is_supported() {
        for p in all() {
            let caps = p.caps();
            assert!(caps.page_sizes.contains(&caps.default_page_size));
            for &ps in caps.page_sizes {
                p.machine_cfg(&MachineConfig::with_page_size(ps)).unwrap();
            }
        }
    }

    #[test]
    fn unsupported_page_size_is_rejected() {
        let err = gh200()
            .machine_cfg(&MachineConfig::with_page_size(KIB))
            .unwrap_err();
        assert!(matches!(
            err,
            PlatformError::UnsupportedPageSize { page, .. } if page == KIB
        ));
    }

    #[test]
    fn tweaks_are_revalidated() {
        let err = gh200()
            .machine_tweaked(&MachineConfig::default(), &|p| p.hbm_bw = -1.0)
            .unwrap_err();
        assert!(matches!(err, PlatformError::InvalidParams(_)));
        // A sane tweak goes through.
        gh200()
            .machine_tweaked(&MachineConfig::default(), &|p| p.gpu_mem_bytes = 128 * MIB)
            .unwrap();
    }

    #[test]
    fn caps_contrast_matches_the_architectures() {
        let gh = gh200().caps();
        let mi = mi300a().caps();
        assert!(gh.migration && gh.oversubscription && gh.first_touch_tiering);
        assert!(!gh.unified_pool);
        assert!(!mi.migration && !mi.oversubscription && !mi.first_touch_tiering);
        assert!(mi.unified_pool);
    }

    #[test]
    fn migration_config_is_clamped_on_mi300a() {
        let cfg = MachineConfig::default(); // asks for migration
        let m = mi300a().machine_cfg(&cfg).unwrap();
        assert!(!m.rt.options().auto_migration);
        assert!(!m.rt.options().uvm_prefetch);
    }

    #[test]
    fn driver_baseline_is_exposed_without_naming_params() {
        assert!(gh200().gpu_driver_baseline() > 0);
        assert!(mi300a().gpu_driver_baseline() > 0);
    }
}
