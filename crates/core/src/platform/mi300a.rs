//! The AMD MI300A backend — a unified-physical-memory contrast machine.
//!
//! Modelled after *Dissecting CPU-GPU Unified Physical Memory on AMD
//! MI300A APUs* (Wahlgren et al., see PAPERS.md): 24 Zen 4 cores and a
//! CDNA 3 GPU share **one** 128 GB HBM3 pool behind the same Infinity
//! Fabric mesh. There is no second tier, so the GH200's defining
//! behaviours — first-touch tier choice, fault/counter page migration,
//! eviction, the oversubscription balloon — are physically meaningless
//! here. What remains is mapping cost: a GPU touch of an unmapped page
//! raises an XNACK retry serviced by the OS (cheaper than a GH200 ATS
//! fault — no cross-chip translation round trip).
//!
//! Cost-model assumptions (documented estimates, not paper-calibrated
//! measurements; see `docs/platforms.md`):
//!
//! * pool size 128 GB scaled 1:1024 → 128 MiB, driver carve-out 512 KiB;
//! * HBM3 STREAM bandwidth ≈ 3.7 TB/s from the GPU, ≈ 400 GB/s from the
//!   CPU side (the CPU cannot saturate HBM through its cache hierarchy);
//! * Infinity Fabric hop latency ≈ 400 ns, below NVLink-C2C's 850 ns;
//! * XNACK mapping fault ≈ 2.5 µs fixed + 0.05 ns/B zero-fill.

use gh_cuda::RuntimeOptions;
use gh_mem::params::{CostParams, KIB, MIB};

use super::{apply_page_size, MachineConfig, MemoryBackend, Platform, PlatformCaps, PlatformError};

/// The MI300A APU: one shared physical HBM3 pool, no page migration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mi300aPlatform;

/// Linux 4 KiB base pages plus 2 MiB huge pages (x86-64; no 64 KiB
/// granule on this architecture).
const PAGE_SIZES: &[u64] = &[4 * KIB, 2 * MIB];

pub(super) const CAPS: PlatformCaps = PlatformCaps {
    name: "mi300a",
    description: "AMD MI300A: one shared HBM3 pool over Infinity Fabric, no migration",
    migration: false,
    oversubscription: false,
    first_touch_tiering: false,
    unified_pool: true,
    page_sizes: PAGE_SIZES,
    default_page_size: 4 * KIB,
};

impl MemoryBackend for Mi300aPlatform {
    fn cost_params(&self, cfg: &MachineConfig) -> Result<CostParams, PlatformError> {
        let mut p = CostParams {
            unified_pool: true,
            // One pool: gpu_mem_bytes is its size; cpu_mem_bytes is kept
            // equal for introspection but never limits anything.
            gpu_mem_bytes: 128 * MIB,
            cpu_mem_bytes: 128 * MIB,
            gpu_driver_baseline: 512 * KIB,
            // Bandwidths: GPU-side HBM3 STREAM vs CPU-side through the
            // core cache hierarchy; the "link" numbers model Infinity
            // Fabric and only matter for the residual paths that still
            // consult them.
            hbm_bw: 3700.0,
            lpddr_bw: 400.0,
            c2c_h2d_bw: 900.0,
            c2c_d2h_bw: 900.0,
            c2c_latency: 400,
            hbm_latency: 600,
            // XNACK mapping fault: OS maps the page in the shared pool;
            // no cross-chip ATS round trip, so both terms sit well below
            // GH200.
            ats_fault_fixed: 2_500,
            ats_fault_per_byte: 0.05,
            ..Default::default()
        };
        apply_page_size(&mut p, cfg, &CAPS)?;
        Ok(p)
    }

    fn runtime_options(&self, cfg: &MachineConfig) -> RuntimeOptions {
        // Migration and speculative prefetch do not exist on a single
        // pool — clamp regardless of what the config asks for.
        let mut o = RuntimeOptions {
            auto_migration: false,
            uvm_prefetch: false,
            ..Default::default()
        };
        if let Some(period) = cfg.profiler_period {
            o.profiler_period = period;
        }
        o
    }
}

impl Platform for Mi300aPlatform {
    fn caps(&self) -> PlatformCaps {
        CAPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_describe_one_shared_pool() {
        let p = Mi300aPlatform
            .cost_params(&MachineConfig::default())
            .unwrap();
        assert!(p.unified_pool);
        assert_eq!(p.gpu_mem_bytes, 128 * MIB);
        assert_eq!(p.system_page_size, 4 * KIB);
        p.validate().unwrap();
    }

    #[test]
    fn huge_pages_are_supported() {
        let p = Mi300aPlatform
            .cost_params(&MachineConfig::with_page_size(2 * MIB))
            .unwrap();
        assert_eq!(p.system_page_size, 2 * MIB);
        p.validate().unwrap();
    }

    #[test]
    fn migration_options_are_clamped_off() {
        let o = Mi300aPlatform.runtime_options(&MachineConfig::default());
        assert!(!o.auto_migration);
        assert!(!o.uvm_prefetch);
    }

    #[test]
    fn xnack_fault_is_cheaper_than_gh200_ats() {
        let mi = Mi300aPlatform
            .cost_params(&MachineConfig::default())
            .unwrap();
        let gh = super::super::gh200()
            .cost_params(&MachineConfig::default())
            .unwrap();
        assert!(mi.ats_fault_fixed < gh.ats_fault_fixed);
        assert!(mi.ats_fault_per_byte < gh.ats_fault_per_byte);
    }
}
