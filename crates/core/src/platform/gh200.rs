//! The NVIDIA GH200 backend — the machine of the source paper.

use gh_cuda::RuntimeOptions;
use gh_mem::params::{CostParams, KIB};

use super::{apply_page_size, MachineConfig, MemoryBackend, Platform, PlatformCaps, PlatformError};

/// The paper's machine: Grace (480 GB LPDDR5X) + Hopper (96 GB HBM3)
/// joined by NVLink-C2C, scaled 1:1024. Two physical tiers, first-touch
/// NUMA placement, UVM fault migration, access-counter migration, and a
/// `cudaMalloc` balloon for simulated oversubscription.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gh200Platform;

/// Page sizes Grace supports, in sweep order (the calibrated default
/// first, matching the advisor's historical 64 KiB-then-4 KiB ordering).
const PAGE_SIZES: &[u64] = &[64 * KIB, 4 * KIB];

pub(super) const CAPS: PlatformCaps = PlatformCaps {
    name: "gh200",
    description: "NVIDIA GH200: LPDDR5X + HBM3 tiers over NVLink-C2C, migration on",
    migration: true,
    oversubscription: true,
    first_touch_tiering: true,
    unified_pool: false,
    page_sizes: PAGE_SIZES,
    default_page_size: 64 * KIB,
};

impl MemoryBackend for Gh200Platform {
    fn cost_params(&self, cfg: &MachineConfig) -> Result<CostParams, PlatformError> {
        let mut p = CostParams::default();
        apply_page_size(&mut p, cfg, &CAPS)?;
        Ok(p)
    }

    fn runtime_options(&self, cfg: &MachineConfig) -> RuntimeOptions {
        let mut o = RuntimeOptions {
            auto_migration: cfg.auto_migration,
            uvm_prefetch: cfg.uvm_prefetch,
            ..Default::default()
        };
        if let Some(period) = cfg.profiler_period {
            o.profiler_period = period;
        }
        o
    }
}

impl Platform for Gh200Platform {
    fn caps(&self) -> PlatformCaps {
        CAPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_mem::params::MIB;

    #[test]
    fn defaults_are_the_calibrated_paper_model() {
        let p = Gh200Platform
            .cost_params(&MachineConfig::default())
            .unwrap();
        assert_eq!(p.cpu_mem_bytes, 480 * MIB);
        assert_eq!(p.gpu_mem_bytes, 96 * MIB);
        assert_eq!(p.system_page_size, 64 * KIB);
        assert_eq!(p.hbm_bw, 3400.0);
        assert!(!p.unified_pool);
    }

    #[test]
    fn page_size_request_is_honoured() {
        let p = Gh200Platform
            .cost_params(&MachineConfig::with_page_size(4 * KIB))
            .unwrap();
        assert_eq!(p.system_page_size, 4 * KIB);
    }

    #[test]
    fn options_follow_the_config() {
        let o = Gh200Platform.runtime_options(&MachineConfig::without_migration());
        assert!(!o.auto_migration);
        assert!(o.uvm_prefetch);
    }
}
