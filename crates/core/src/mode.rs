//! Memory-management modes: the paper's three application variants.

/// Which memory-management strategy an application variant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemMode {
    /// The original version: `cudaMalloc` + explicit `cudaMemcpy`.
    Explicit,
    /// System-allocated unified memory (`malloc`) — the paper's new path.
    System,
    /// CUDA managed memory (`cudaMallocManaged`).
    Managed,
}

impl MemMode {
    /// All modes, in the paper's presentation order.
    pub const ALL: [MemMode; 3] = [MemMode::Explicit, MemMode::System, MemMode::Managed];

    /// The two unified-memory modes (no explicit copies).
    pub const UNIFIED: [MemMode; 2] = [MemMode::System, MemMode::Managed];

    /// Short lowercase label for CSV output.
    pub fn label(self) -> &'static str {
        match self {
            MemMode::Explicit => "explicit",
            MemMode::System => "system",
            MemMode::Managed => "managed",
        }
    }
}

impl std::fmt::Display for MemMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(MemMode::Explicit.label(), "explicit");
        assert_eq!(MemMode::System.to_string(), "system");
        assert_eq!(MemMode::ALL.len(), 3);
        assert_eq!(MemMode::UNIFIED.len(), 2);
    }
}
