//! The `Machine`: one simulated platform plus experiment bookkeeping.

use gh_cuda::{Buffer, Runtime, RuntimeOptions};
use gh_mem::clock::Ns;
use gh_mem::params::CostParams;
use gh_profiler::{Phase, PhaseTimer};

use crate::platform::PlatformCaps;
use crate::report::RunReport;

/// A simulated machine with the paper's experiment conveniences: phase
/// timing, the oversubscription balloon, and report extraction. Build
/// one through a [`Platform`](crate::platform::Platform) — the machine
/// carries its platform's [`PlatformCaps`] so capability-dependent
/// experiment steps degrade to "not applicable" instead of silently
/// reporting zeros.
#[derive(Debug)]
pub struct Machine {
    /// The underlying runtime — all allocation/copy/launch APIs live here.
    pub rt: Runtime,
    timer: PhaseTimer,
    balloon: Option<Buffer>,
    checksum: f64,
    /// Whether a phase span is open on the trace bus (mirrors the timer).
    phase_span_open: bool,
    caps: PlatformCaps,
    /// Experiment steps that were requested but are meaningless on this
    /// platform; surfaced verbatim in the run report.
    not_applicable: Vec<String>,
    /// Invariant sanitizer (`Some` when the session asks for it; the
    /// default is on in debug builds). Observation-only: checking never
    /// advances the clock or mutates runtime state, so a sanitized run
    /// is bitwise identical to an unsanitized one.
    sanitizer: Option<gh_units::sanitizer::Sanitizer>,
    /// Label of the phase currently open (snapshots are taken when it
    /// closes).
    open_phase: Option<&'static str>,
    /// Whether the session's trace bus records; the sanitizer's
    /// link-conservation check needs whole-lifetime counters, so it only
    /// trusts the bus when the run was traced from boot (always true for
    /// a session bus — it cannot be toggled mid-run).
    traced: bool,
}

impl Machine {
    /// Boots a machine with explicit parameters and options, assuming
    /// GH200-class capabilities. Prefer building through a
    /// [`Platform`](crate::platform::Platform).
    pub fn new(params: CostParams, opts: RuntimeOptions) -> Self {
        Self::with_caps(params, opts, crate::platform::gh200().caps())
    }

    /// Boots a machine for a specific platform's capability set with a
    /// quiet session (no tracing/profiling, build-default sanitizing).
    pub fn with_caps(params: CostParams, opts: RuntimeOptions, caps: PlatformCaps) -> Self {
        Self::with_session(params, gh_cuda::SessionCtx::new(opts), caps)
    }

    /// Boots a machine under an explicit [`SessionCtx`](gh_cuda::SessionCtx)
    /// — the constructor every boundary (CLI, benches, gh-jobs workers)
    /// funnels through. The session decides tracing, profiling, and
    /// sanitizing for this run; nothing is read from the environment.
    pub fn with_session(
        params: CostParams,
        session: gh_cuda::SessionCtx,
        caps: PlatformCaps,
    ) -> Self {
        let sanitize = session.sanitize;
        let rt = Runtime::with_session(params, session);
        let traced = rt.session().bus.is_on();
        Self {
            rt,
            timer: PhaseTimer::new(),
            balloon: None,
            checksum: 0.0,
            phase_span_open: false,
            caps,
            not_applicable: Vec::new(),
            sanitizer: sanitize.then(gh_units::sanitizer::Sanitizer::new),
            open_phase: None,
            traced,
        }
    }

    /// Boots the calibrated default GH200 (64 KiB pages, migration on).
    pub fn default_gh200() -> Self {
        Self::new(CostParams::default(), RuntimeOptions::default())
    }

    /// The capability set of the platform this machine simulates.
    pub fn caps(&self) -> PlatformCaps {
        self.caps
    }

    /// Experiment steps skipped so far as not applicable on this
    /// platform.
    pub fn not_applicable(&self) -> &[String] {
        &self.not_applicable
    }

    /// Current virtual time.
    pub fn now(&self) -> Ns {
        self.rt.now()
    }

    /// Enters an experiment phase (closes the previous one).
    pub fn phase(&mut self, p: Phase) {
        self.sanitize_closed_phase();
        let now = self.rt.now();
        let bus = self.rt.session().bus.clone();
        self.rt.session().perf.phase_mark(p.label(), now);
        self.timer.enter(p, now);
        if self.phase_span_open {
            bus.span_exit();
        }
        bus.span_enter(p.label(), "phase");
        self.phase_span_open = bus.is_on();
        self.open_phase = Some(p.label());
    }

    /// Feeds the just-closed phase's accounting state to the sanitizer.
    fn sanitize_closed_phase(&mut self) {
        let Some(san) = self.sanitizer.as_mut() else {
            return;
        };
        let Some(label) = self.open_phase else {
            return; // nothing ran yet
        };
        let traced = self.traced;
        san.check(
            &self
                .rt
                .sanitizer_snapshot(label, self.caps.migration, traced),
        );
    }

    /// Records the application's correctness checksum.
    pub fn set_checksum(&mut self, c: f64) {
        self.checksum = c;
    }

    /// Creates the paper's *simulated oversubscription* setup (§3.2):
    /// a `cudaMalloc` balloon sized so that the free GPU memory equals
    /// `peak_usage / ratio`. `ratio == 1.0` means the working set exactly
    /// fits; larger ratios oversubscribe. Returns the free bytes left.
    ///
    /// Call before the application allocates anything on the GPU.
    pub fn oversubscribe(&mut self, peak_usage: u64, ratio: f64) -> u64 {
        assert!(ratio >= 1.0, "oversubscription ratio must be ≥ 1");
        assert!(self.balloon.is_none(), "balloon already installed");
        if !self.caps.oversubscription {
            // A unified pool has no device-only carve-out to shrink:
            // record the skip instead of pretending a ratio was applied.
            self.not_applicable.push(format!(
                "oversubscription (ratio {ratio}) not applicable on {}: \
                 single physical pool, no balloon to install",
                self.caps.name
            ));
            return self.rt.gpu_free();
        }
        let target_free = (peak_usage as f64 / ratio) as u64;
        let free_now = self.rt.gpu_free();
        if free_now > target_free {
            let gp = self.rt.params().gpu_page_size;
            // Round *down*: the balloon may not take more than the excess.
            let balloon_bytes = (free_now - target_free) / gp * gp;
            if balloon_bytes > 0 {
                let b = self
                    .rt
                    .cuda_malloc(gh_units::Bytes::new(balloon_bytes), "balloon")
                    .expect("balloon fits in free memory by construction"); // gh-audit: allow(no-unwrap-in-lib) -- balloon size is computed from free memory just above
                self.balloon = Some(b);
            }
        }
        self.rt.gpu_free()
    }

    /// Releases the balloon (end of an oversubscription experiment).
    pub fn release_balloon(&mut self) {
        if let Some(b) = self.balloon.take() {
            self.rt.free(b);
        }
    }

    /// Closes the run and extracts the report. Consumes the machine.
    pub fn finish(mut self) -> RunReport {
        self.sanitize_closed_phase();
        self.release_balloon();
        // Final snapshot after teardown: frees must conserve too.
        if let Some(san) = self.sanitizer.as_mut() {
            let traced = self.traced;
            san.check(
                &self
                    .rt
                    .sanitizer_snapshot("finish", self.caps.migration, traced),
            );
        }
        let sanitizer = self.sanitizer.take().map(|s| s.finish());
        let bus = self.rt.session().bus.clone();
        let perf = self.rt.session().perf.clone();
        if self.phase_span_open {
            bus.span_exit();
            self.phase_span_open = false;
        }
        let now = self.rt.now();
        perf.run_end(now);
        let phases = self.timer.finish(now);
        let peak_gpu = self.rt.peak_gpu();
        let kernel_times = self.rt.kernel_times().to_vec();
        let kernel_history = self.rt.traffic.history().to_vec();
        let traffic = *self.rt.traffic.totals();
        let checksum = self.checksum;
        let peak_rss = self.rt.peak_rss();
        let samples = self.rt.into_samples();
        // Drain the bus into the report so exporters (chrome trace,
        // metrics dump, explain table) work off one snapshot.
        let trace = bus.is_on().then(|| bus.take());
        RunReport {
            platform: self.caps.name,
            phases,
            samples,
            peak_gpu,
            peak_rss,
            traffic,
            kernel_history,
            kernel_times,
            checksum,
            not_applicable: self.not_applicable,
            trace,
            sanitizer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_mem::params::MIB;

    #[test]
    fn phases_are_recorded() {
        let mut m = Machine::default_gh200();
        m.phase(Phase::Alloc);
        let b = m.rt.malloc_system(gh_units::Bytes::new(MIB), "x");
        m.phase(Phase::CpuInit);
        m.rt.cpu_write(&b, 0, MIB);
        m.phase(Phase::Dealloc);
        m.rt.free(b);
        let r = m.finish();
        assert!(r.phases.alloc > 0);
        assert!(r.phases.cpu_init > 0);
        assert!(r.phases.dealloc > 0);
        assert_eq!(r.phases.compute, 0);
    }

    #[test]
    fn oversubscription_balloon_shrinks_free_memory() {
        let mut m = Machine::default_gh200();
        let peak = 20 * MIB;
        let free = m.oversubscribe(peak, 2.0);
        assert!(free <= 10 * MIB + m.rt.params().gpu_page_size);
        assert!(free >= 10 * MIB - 2 * m.rt.params().gpu_page_size);
    }

    #[test]
    fn ratio_one_keeps_working_set_fitting() {
        let mut m = Machine::default_gh200();
        let peak = 30 * MIB;
        let free = m.oversubscribe(peak, 1.0);
        assert!(free >= peak - 2 * m.rt.params().gpu_page_size);
    }

    #[test]
    fn finish_releases_balloon() {
        let mut m = Machine::default_gh200();
        m.oversubscribe(10 * MIB, 4.0);
        let used_with_balloon = m.rt.gpu_used();
        assert!(used_with_balloon > 50 * MIB);
        let r = m.finish();
        assert!(r.peak_gpu >= used_with_balloon);
    }

    #[test]
    #[should_panic(expected = "ratio must be")]
    fn ratio_below_one_panics() {
        let mut m = Machine::default_gh200();
        m.oversubscribe(MIB, 0.5);
    }

    #[test]
    fn checksum_propagates() {
        let mut m = Machine::default_gh200();
        m.set_checksum(42.5);
        assert_eq!(m.finish().checksum, 42.5);
    }

    #[test]
    fn report_names_the_platform() {
        let m = Machine::default_gh200();
        assert_eq!(m.caps().name, "gh200");
        let r = m.finish();
        assert_eq!(r.platform, "gh200");
        assert!(r.not_applicable.is_empty());
    }

    #[test]
    fn sanitizer_report_is_clean_for_a_simple_run() {
        let mut m = Machine::default_gh200();
        m.phase(Phase::Alloc);
        let b = m.rt.malloc_system(gh_units::Bytes::new(MIB), "x");
        m.phase(Phase::CpuInit);
        m.rt.cpu_write(&b, 0, MIB);
        m.phase(Phase::Dealloc);
        m.rt.free(b);
        let r = m.finish();
        // Sanitizer is on by default in debug builds (release test runs
        // leave it off, hence the `if let`).
        if let Some(s) = r.sanitizer {
            assert!(s.is_clean(), "{s}");
            assert!(s.snapshots >= 4, "{s}"); // 3 phases + finish
        }
    }

    #[test]
    fn sanitizer_checks_link_conservation_when_traced() {
        let so = gh_cuda::SessionOptions {
            trace: true,
            sanitize: Some(true),
            ..Default::default()
        };
        let session = gh_cuda::SessionCtx::with_options(RuntimeOptions::default(), &so);
        let mut m = Machine::with_session(
            CostParams::default(),
            session,
            crate::platform::gh200().caps(),
        );
        m.phase(Phase::Alloc);
        let d =
            m.rt.cuda_malloc(gh_units::Bytes::new(MIB), "d")
                .expect("fits");
        let h = m.rt.cuda_malloc_host(gh_units::Bytes::new(MIB), "h");
        m.phase(Phase::Compute);
        m.rt.memcpy(&d, 0, &h, 0, MIB); // H2D over the link
        m.rt.memcpy(&h, 0, &d, 0, MIB); // D2H back
        m.phase(Phase::Dealloc);
        m.rt.free(d);
        m.rt.free(h);
        let r = m.finish();
        if let Some(s) = r.sanitizer {
            assert!(s.is_clean(), "{s}");
            // Conservation ran: clock + capacity + residency + link per
            // snapshot (capability gating early-returns on gh200, and
            // without tracing only the first three would count).
            assert!(s.checks >= 4 * s.snapshots, "{s}");
        }
    }

    #[test]
    fn sanitizer_is_clean_on_a_unified_pool() {
        let mut m = crate::platform::mi300a().machine();
        m.phase(Phase::Alloc);
        let b = m.rt.malloc_system(gh_units::Bytes::new(MIB), "x");
        m.phase(Phase::CpuInit);
        m.rt.cpu_write(&b, 0, MIB);
        m.phase(Phase::Dealloc);
        m.rt.free(b);
        let r = m.finish();
        if let Some(s) = r.sanitizer {
            assert!(s.is_clean(), "{s}");
        }
    }

    #[test]
    fn oversubscribe_degrades_without_the_capability() {
        let mut m = crate::platform::mi300a().machine();
        let free_before = m.rt.gpu_free();
        let free = m.oversubscribe(10 * MIB, 2.0);
        assert_eq!(free, free_before, "no balloon was installed");
        let r = m.finish();
        assert_eq!(r.platform, "mi300a");
        assert_eq!(r.not_applicable.len(), 1);
        assert!(r.not_applicable[0].contains("not applicable"));
    }
}
