//! Memory-mode advisor: the paper's conclusions, operationalized.
//!
//! The paper ends with guidance — system-allocated memory benefits most
//! use cases with minimal porting effort, managed memory wins for
//! GPU-initialized data, page size is a first-order knob. This module
//! turns that into a tool: run a workload (as a replay trace) under
//! every (mode × page size) combination and report the ranking together
//! with the behavioural signals that explain it.

use crate::mode::MemMode;
use crate::platform::{self, MachineConfig, Platform, PlatformCaps};
use crate::replay;
use crate::report::RunReport;
use gh_mem::params::{KIB, MIB};

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct AdvisorRow {
    /// Memory-management strategy.
    pub mode: MemMode,
    /// System page size in bytes.
    pub page_size: u64,
    /// Reported total (ns, paper convention).
    pub total_ns: u64,
    /// The full report for deeper inspection.
    pub report: RunReport,
}

/// Result of an advisory run: rows sorted fastest-first plus derived
/// observations.
#[derive(Debug, Clone)]
pub struct Advice {
    /// All evaluated configurations, fastest first.
    pub rows: Vec<AdvisorRow>,
    /// Human-readable observations derived from the signals.
    pub notes: Vec<String>,
}

impl Advice {
    /// The winning configuration.
    pub fn best(&self) -> &AdvisorRow {
        &self.rows[0]
    }

    /// Renders a compact report.
    pub fn render(&self) -> String {
        let mut out = String::from("mode      page   total_ms   c2c_mib  migrated_mib  faults\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<9} {:<6} {:<10.3} {:<8} {:<13} {}\n",
                r.mode.label(),
                fmt_page(r.page_size),
                r.total_ns as f64 / 1e6,
                (r.report.traffic.c2c_read + r.report.traffic.c2c_write) >> 20,
                r.report.traffic.bytes_migrated_in >> 20,
                r.report.traffic.gpu_faults + r.report.traffic.ats_faults,
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// Evaluates `trace` under every (mode × page size) combination.
///
/// Each candidate run is traced on its own session bus so the derived
/// notes can cite *measured* event counts (fault costs, evictions, link
/// bytes) rather than only end-of-run traffic totals. Sessions are
/// per-machine: the advisor never touches ambient state, so it can run
/// concurrently with other (traced or untraced) simulations.
pub fn advise(trace: &str) -> Result<Advice, replay::ReplayError> {
    advise_on(platform::gh200(), trace)
}

/// Like [`advise`], but for an explicit platform: the sweep covers the
/// platform's supported page sizes, and migration-dependent guidance is
/// reported as not applicable where the hardware cannot migrate.
pub fn advise_on(p: &'static dyn Platform, trace: &str) -> Result<Advice, replay::ReplayError> {
    let caps = p.caps();
    let traced = gh_cuda::SessionOptions {
        trace: true,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for mode in MemMode::ALL {
        for &page in caps.page_sizes {
            let machine = p
                .machine_session(&MachineConfig::with_page_size(page), &traced)
                .expect("platform advertises this page size"); // gh-audit: allow(no-unwrap-in-lib) -- page comes from the platform's own caps
            let report = replay::replay(machine, trace, Some(mode))?;
            rows.push(AdvisorRow {
                mode,
                page_size: page,
                total_ns: report.reported_total(),
                report,
            });
        }
    }
    rows.sort_by_key(|r| r.total_ns);
    let notes = derive_notes(&caps, &rows);
    Ok(Advice { rows, notes })
}

/// Compact page-size label for the rendered table (`4k`, `64k`, `2m`).
fn fmt_page(ps: u64) -> String {
    if ps.is_multiple_of(MIB) {
        format!("{}m", ps / MIB)
    } else if ps.is_multiple_of(KIB) {
        format!("{}k", ps / KIB)
    } else {
        format!("{ps}b")
    }
}

/// Long-form page-size label for notes (`4 KiB`, `2 MiB`).
fn fmt_page_long(ps: u64) -> String {
    if ps.is_multiple_of(MIB) {
        format!("{} MiB", ps / MIB)
    } else if ps.is_multiple_of(KIB) {
        format!("{} KiB", ps / KIB)
    } else {
        format!("{ps} B")
    }
}

fn derive_notes(caps: &PlatformCaps, rows: &[AdvisorRow]) -> Vec<String> {
    let mut notes = Vec::new();
    let best = &rows[0];
    notes.push(format!(
        "best configuration: {} memory with {} pages",
        best.mode.label(),
        fmt_page_long(best.page_size)
    ));
    if !caps.migration {
        notes.push(format!(
            "page-migration guidance not applicable on {}: single physical \
             pool, pages never migrate",
            caps.name
        ));
    }
    if best.mode == MemMode::System {
        notes.push(
            "system-allocated memory wins: coherent NVLink-C2C access avoids \
             fault-driven migration (the paper's headline result)"
                .into(),
        );
    }
    if let Some(r) = rows.iter().find(|r| r.mode == MemMode::System) {
        if r.report.traffic.ats_faults > 0 {
            let mut note = format!(
                "system memory pays {} GPU-first-touch (ATS) faults — consider \
                 cudaHostRegister pre-population or 64 KiB pages (paper 5.1.2)",
                r.report.traffic.ats_faults
            );
            // Cite the measured per-fault cost distribution when traced.
            if let Some(t) = &r.report.trace {
                if let Some(h) = t.metrics.histogram("fault.cost_ns") {
                    if h.count > 0 {
                        note.push_str(&format!(
                            " [measured: mean fault cost {:.0} ns, max {} ns]",
                            h.mean(),
                            h.max
                        ));
                    }
                }
            }
            notes.push(note);
        }
    }
    if let Some(r) = rows
        .iter()
        .find(|r| r.mode == MemMode::Managed)
        .filter(|_| caps.migration)
    {
        if r.report.traffic.pages_migrated_out > 0 {
            let mut note = String::from(
                "managed memory evicted under GPU memory pressure — expect \
                 oversubscription churn; system memory degrades more gracefully \
                 (paper Fig 11)",
            );
            if let Some(t) = &r.report.trace {
                let ev = t.counter("uvm.evictions");
                let out = t.counter("uvm.bytes_migrated_out");
                if ev > 0 {
                    note.push_str(&format!(
                        " [measured: {} eviction events, {} MiB migrated out]",
                        ev,
                        out >> 20
                    ));
                }
            }
            notes.push(note);
        }
    }
    let sys64 = rows
        .iter()
        .find(|r| r.mode == MemMode::System && r.page_size == 65536);
    let sys4 = rows
        .iter()
        .find(|r| r.mode == MemMode::System && r.page_size == 4096);
    if let (Some(a), Some(b)) = (sys64, sys4) {
        let ratio = b.total_ns as f64 / a.total_ns.max(1) as f64;
        if ratio > 1.5 {
            notes.push(format!(
                "64 KiB pages are {ratio:.1}x faster for the system version \
                 (fault-count dominated, paper Fig 8/9)"
            ));
        } else if ratio < 0.67 {
            notes.push(format!(
                "4 KiB pages are {:.1}x faster for the system version \
                 (migration amplification, paper Fig 7)",
                1.0 / ratio
            ));
        }
    }
    notes
}

#[cfg(test)]
mod tests {
    use super::*;

    const CPU_INIT_TRACE: &str = "
alloc data system 16m
cpu_write data 0 16m
kernel sweep
  read data 0 16m
end
";

    const GPU_INIT_TRACE: &str = "
alloc sv system 16m
kernel init
  write sv 0 16m
end
kernel gate
  read sv 0 16m
  write sv 0 16m
end
";

    #[test]
    fn cpu_initialized_workload_prefers_system_memory() {
        let advice = advise(CPU_INIT_TRACE).unwrap();
        assert_eq!(advice.rows.len(), 6);
        assert_eq!(advice.best().mode, MemMode::System, "\n{}", advice.render());
        assert!(advice.notes.iter().any(|n| n.contains("system")));
    }

    #[test]
    fn gpu_initialized_workload_flags_ats_faults() {
        let advice = advise(GPU_INIT_TRACE).unwrap();
        assert!(
            advice.notes.iter().any(|n| n.contains("ATS")),
            "\n{}",
            advice.render()
        );
        // The system-4K row must be the slowest system row.
        let sys: Vec<_> = advice
            .rows
            .iter()
            .filter(|r| r.mode == MemMode::System)
            .collect();
        assert!(sys[0].page_size > sys[1].page_size || sys[0].total_ns <= sys[1].total_ns);
    }

    #[test]
    fn render_contains_all_rows() {
        let advice = advise(CPU_INIT_TRACE).unwrap();
        let text = advice.render();
        assert!(text.matches("system").count() >= 2);
        assert!(text.contains("managed"));
        assert!(text.contains("explicit"));
        assert!(text.contains("note:"));
    }

    #[test]
    fn rows_are_sorted_fastest_first() {
        let advice = advise(CPU_INIT_TRACE).unwrap();
        assert!(advice
            .rows
            .windows(2)
            .all(|w| w[0].total_ns <= w[1].total_ns));
    }

    #[test]
    fn advise_on_mi300a_flags_migration_as_not_applicable() {
        let advice = advise_on(platform::mi300a(), CPU_INIT_TRACE).unwrap();
        // 3 modes × the platform's 2 page sizes.
        assert_eq!(advice.rows.len(), 6);
        assert!(
            advice.notes.iter().any(|n| n.contains("not applicable")),
            "\n{}",
            advice.render()
        );
        for r in &advice.rows {
            assert_eq!(r.report.platform, "mi300a");
            assert_eq!(r.report.traffic.pages_migrated_in, 0);
            assert_eq!(r.report.traffic.pages_migrated_out, 0);
        }
    }

    #[test]
    fn render_labels_huge_pages() {
        let advice = advise_on(platform::mi300a(), CPU_INIT_TRACE).unwrap();
        let text = advice.render();
        assert!(text.contains("4k"));
        assert!(text.contains("2m"), "\n{text}");
    }
}
