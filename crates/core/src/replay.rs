//! Workload replay: drive the simulated machine from a text trace.
//!
//! Downstream users can characterize *their* application's memory
//! behaviour without porting it to the kernel API: dump its allocation
//! and access pattern as a trace and replay it under any memory mode,
//! page size, or oversubscription setting.
//!
//! Format (line-oriented; `#` starts a comment):
//!
//! ```text
//! alloc   <name> <system|managed|device|pinned> <size>
//! cpu_write <name> <offset> <len>
//! cpu_read  <name> <offset> <len>
//! kernel  <label>                 # begins a kernel body
//!   read    <name> <offset> <len>
//!   write   <name> <offset> <len>
//!   strided <name> <offset> <seg> <stride> <count> [w]
//!   compute <units>
//! end
//! prefetch <name> <cpu|gpu> <offset> <len>
//! host_register <name>
//! memcpy  <dst> <dst_off> <src> <src_off> <len>
//! sync
//! free    <name>
//! ```
//!
//! Sizes accept `k`/`m`/`g` binary suffixes (`64k`, `8m`). Buffers not
//! freed explicitly are freed at the end of the replay.
//!
//! ```
//! use gh_sim::{platform, replay, MemMode};
//!
//! let trace = "
//! alloc data system 4m
//! cpu_write data 0 4m
//! kernel sweep
//!   read data 0 4m
//! end
//! ";
//! let machine = platform::gh200().machine();
//! let report = replay(machine, trace, Some(MemMode::System)).unwrap();
//! assert_eq!(report.traffic.c2c_read, 4 << 20);
//! ```

use std::collections::BTreeMap;

use crate::machine::Machine;
use crate::mode::MemMode;
use crate::report::RunReport;
use gh_cuda::Buffer;
use gh_mem::phys::Node;
use gh_profiler::Phase;

/// A parse or execution error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ReplayError {}

fn err(line: usize, msg: impl Into<String>) -> ReplayError {
    ReplayError {
        line,
        msg: msg.into(),
    }
}

/// Parses a size literal: plain bytes or `k`/`m`/`g` (binary) suffix.
pub fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim().to_ascii_lowercase();
    let (num, mult) = match s.chars().last()? {
        'k' => (&s[..s.len() - 1], 1u64 << 10),
        'm' => (&s[..s.len() - 1], 1u64 << 20),
        'g' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (&s[..], 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

/// Replays `trace` on `machine` and extracts the run report. `mode`
/// substitutes the trace's `system|managed` unified allocations when
/// given (so one trace can be compared across strategies);
/// `device`/`pinned` lines are unaffected.
pub fn replay(
    mut machine: Machine,
    trace: &str,
    mode: Option<MemMode>,
) -> Result<RunReport, ReplayError> {
    replay_on(&mut machine, trace, mode)?;
    Ok(machine.finish())
}

/// A replay buffer: unified modes hold one allocation; the explicit
/// substitution holds a host/device pair with dirty tracking, so
/// `cpu_write → kernel` sequences insert the `cudaMemcpy` the original
/// code would have had (the paper's Fig 2 transformation, reversed).
#[derive(Clone, Copy)]
struct RBuf {
    host: Option<Buffer>,
    dev: Buffer,
    host_dirty: bool,
    dev_dirty: bool,
}

impl RBuf {
    fn unified(dev: Buffer) -> Self {
        RBuf {
            host: None,
            dev,
            host_dirty: false,
            dev_dirty: false,
        }
    }
}

/// Like [`replay`] but leaves the machine alive afterwards, so callers
/// can inspect runtime state (timeline export, smaps, counters).
pub fn replay_on(
    machine: &mut Machine,
    trace: &str,
    mode: Option<MemMode>,
) -> Result<(), ReplayError> {
    let mut bufs: BTreeMap<String, RBuf> = BTreeMap::new();
    let mut lines = trace.lines().enumerate().peekable();
    machine.phase(Phase::Compute);

    while let Some((idx, raw)) = lines.next() {
        let n = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tok: Vec<&str> = line.split_whitespace().collect();
        let get_buf = |bufs: &BTreeMap<String, RBuf>, name: &str| -> Result<RBuf, ReplayError> {
            bufs.get(name)
                .copied()
                .ok_or_else(|| err(n, format!("unknown buffer '{name}'")))
        };
        let size_at = |i: usize| -> Result<u64, ReplayError> {
            tok.get(i)
                .and_then(|s| parse_size(s))
                .ok_or_else(|| err(n, format!("bad size in '{line}'")))
        };
        match tok[0] {
            "alloc" => {
                if tok.len() != 4 {
                    return Err(err(n, "alloc <name> <kind> <size>"));
                }
                let name = tok[1].to_string();
                if bufs.contains_key(&name) {
                    return Err(err(n, format!("buffer '{name}' already exists")));
                }
                let bytes = gh_units::Bytes::new(size_at(3)?);
                let kind =
                    match (tok[2], mode) {
                        ("system", Some(MemMode::Managed))
                        | ("managed", Some(MemMode::Managed)) => "managed",
                        ("system", Some(MemMode::System)) | ("managed", Some(MemMode::System)) => {
                            "system"
                        }
                        ("system", Some(MemMode::Explicit))
                        | ("managed", Some(MemMode::Explicit)) => "explicit_pair",
                        (k, _) => k,
                    };
                let buf = match kind {
                    "system" => RBuf::unified(machine.rt.malloc_system(bytes, &name)),
                    "managed" => RBuf::unified(machine.rt.cuda_malloc_managed(bytes, &name)),
                    "pinned" => RBuf::unified(machine.rt.cuda_malloc_host(bytes, &name)),
                    "device" => RBuf::unified(
                        machine
                            .rt
                            .cuda_malloc(bytes, &name)
                            .map_err(|e| err(n, format!("cudaMalloc failed: {e}")))?,
                    ),
                    "explicit_pair" => RBuf {
                        host: Some(machine.rt.malloc_system(bytes, &format!("{name}.host"))),
                        dev: machine
                            .rt
                            .cuda_malloc(bytes, &format!("{name}.dev"))
                            .map_err(|e| err(n, format!("cudaMalloc failed: {e}")))?,
                        host_dirty: false,
                        dev_dirty: false,
                    },
                    other => return Err(err(n, format!("unknown kind '{other}'"))),
                };
                bufs.insert(name, buf);
            }
            "cpu_write" | "cpu_read" => {
                if tok.len() != 4 {
                    return Err(err(n, "cpu_write <name> <offset> <len>"));
                }
                let b = get_buf(&bufs, tok[1])?;
                let (off, len) = (size_at(2)?, size_at(3)?);
                let host_side = b.host.unwrap_or(b.dev);
                if off + len > host_side.len() {
                    return Err(err(n, "out of range"));
                }
                if tok[0] == "cpu_write" {
                    machine.rt.cpu_write(&host_side, off, len);
                    if b.host.is_some() {
                        if let Some(e) = bufs.get_mut(tok[1]) {
                            e.host_dirty = true;
                        }
                    }
                } else {
                    if let (Some(h), true) = (b.host, b.dev_dirty) {
                        // Explicit pair: results come back via cudaMemcpy.
                        machine
                            .rt
                            .memcpy(&h, 0, &b.dev, 0, b.dev.len().min(h.len()));
                        if let Some(e) = bufs.get_mut(tok[1]) {
                            e.dev_dirty = false;
                        }
                    }
                    machine.rt.cpu_read(&host_side, off, len);
                }
            }
            "kernel" => {
                let label = tok.get(1).copied().unwrap_or("kernel");
                // Explicit pairs: upload any host-dirty buffer first (the
                // cudaMemcpy the original code would perform). BTreeMap
                // iteration keeps the upload order name-sorted.
                for b in bufs.values_mut().filter(|b| b.host_dirty) {
                    if let Some(h) = b.host {
                        machine
                            .rt
                            .memcpy(&b.dev, 0, &h, 0, h.len().min(b.dev.len()));
                        b.host_dirty = false;
                    }
                }
                let mut k = machine.rt.launch(label);
                let mut closed = false;
                let mut body_err: Option<ReplayError> = None;
                for (jdx, kraw) in lines.by_ref() {
                    let m = jdx + 1;
                    let kline = kraw.split('#').next().unwrap_or("").trim();
                    if kline.is_empty() {
                        continue;
                    }
                    let kt: Vec<&str> = kline.split_whitespace().collect();
                    let ksize = |i: usize| -> Result<u64, ReplayError> {
                        kt.get(i)
                            .and_then(|s| parse_size(s))
                            .ok_or_else(|| err(m, format!("bad size in '{kline}'")))
                    };
                    match kt[0] {
                        "end" => {
                            closed = true;
                            break;
                        }
                        "read" | "write" => {
                            let step = (|| -> Result<(), ReplayError> {
                                let b = get_buf(&bufs, kt[1])?;
                                let (off, len) = (ksize(2)?, ksize(3)?);
                                if off + len > b.dev.len() {
                                    return Err(err(m, "out of range"));
                                }
                                if kt[0] == "read" {
                                    k.read(&b.dev, off, len);
                                } else {
                                    k.write(&b.dev, off, len);
                                }
                                Ok(())
                            })();
                            match step {
                                Err(e) => {
                                    body_err = Some(e);
                                    break;
                                }
                                Ok(()) => {
                                    if kt[0] == "write" {
                                        if let Some(rb) = bufs.get_mut(kt[1]) {
                                            rb.dev_dirty = true;
                                        }
                                    }
                                }
                            }
                        }
                        "strided" => {
                            let step = (|| -> Result<(), ReplayError> {
                                if kt.len() < 6 {
                                    return Err(err(
                                        m,
                                        "strided <name> <off> <seg> <stride> <count> [w]",
                                    ));
                                }
                                let b = get_buf(&bufs, kt[1])?;
                                let (off, seg, stride, count) =
                                    (ksize(2)?, ksize(3)?, ksize(4)?, ksize(5)?);
                                if kt.get(6) == Some(&"w") {
                                    k.write_strided(&b.dev, off, seg, stride, count);
                                } else {
                                    k.read_strided(&b.dev, off, seg, stride, count);
                                }
                                Ok(())
                            })();
                            if let Err(e) = step {
                                body_err = Some(e);
                                break;
                            }
                        }
                        "compute" => match ksize(1) {
                            Ok(u) => k.compute(u),
                            Err(e) => {
                                body_err = Some(e);
                                break;
                            }
                        },
                        other => {
                            body_err = Some(err(m, format!("unknown kernel op '{other}'")));
                            break;
                        }
                    }
                }
                // Always close the recording before propagating errors —
                // an unfinished kernel is a simulator-usage bug.
                k.finish();
                if let Some(e) = body_err {
                    return Err(e);
                }
                if !closed {
                    return Err(err(n, "kernel body not closed with 'end'"));
                }
            }
            "prefetch" => {
                if tok.len() != 5 {
                    return Err(err(n, "prefetch <name> <cpu|gpu> <offset> <len>"));
                }
                let b = get_buf(&bufs, tok[1])?;
                if b.dev.kind != gh_cuda::BufKind::Managed {
                    // Prefetch is a managed-memory API; under substitution
                    // to other modes the directive is a no-op.
                    continue;
                }
                let node = match tok[2] {
                    "cpu" => Node::Cpu,
                    "gpu" => Node::Gpu,
                    other => return Err(err(n, format!("bad node '{other}'"))),
                };
                machine.rt.prefetch(&b.dev, size_at(3)?, size_at(4)?, node);
            }
            "host_register" => {
                let b = get_buf(&bufs, tok[1])?;
                let target = b.host.unwrap_or(b.dev);
                if target.kind == gh_cuda::BufKind::System {
                    machine.rt.cuda_host_register(&target);
                }
            }
            "memcpy" => {
                if tok.len() != 6 {
                    return Err(err(n, "memcpy <dst> <dst_off> <src> <src_off> <len>"));
                }
                let dst = get_buf(&bufs, tok[1])?;
                let src = get_buf(&bufs, tok[3])?;
                machine
                    .rt
                    .memcpy(&dst.dev, size_at(2)?, &src.dev, size_at(4)?, size_at(5)?);
            }
            "sync" => machine.rt.device_synchronize(),
            "free" => {
                let name = tok[1];
                let b = bufs
                    .remove(name)
                    .ok_or_else(|| err(n, format!("unknown buffer '{name}'")))?;
                if let Some(h) = b.host {
                    machine.rt.free(h);
                }
                machine.rt.free(b.dev);
            }
            other => return Err(err(n, format!("unknown directive '{other}'"))),
        }
    }
    machine.phase(Phase::Dealloc);
    // BTreeMap iterates name-sorted, so teardown order is deterministic.
    for (_, b) in std::mem::take(&mut bufs) {
        if let Some(h) = b.host {
            machine.rt.free(h);
        }
        machine.rt.free(b.dev);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gh200() -> Machine {
        crate::platform::gh200().machine()
    }

    const TRACE: &str = "
# a CPU-init-then-GPU-compute workload
alloc data system 4m
alloc out device 2m
cpu_write data 0 4m
kernel step
  read data 0 4m
  write out 0 1m
  strided data 0 1k 64k 16
  compute 100000
end
sync
free out
";

    #[test]
    fn parse_size_suffixes() {
        assert_eq!(parse_size("123"), Some(123));
        assert_eq!(parse_size("4k"), Some(4096));
        assert_eq!(parse_size("8M"), Some(8 << 20));
        assert_eq!(parse_size("1g"), Some(1 << 30));
        assert_eq!(parse_size("x"), None);
    }

    #[test]
    fn replays_a_trace_end_to_end() {
        let r = replay(gh200(), TRACE, None).unwrap();
        assert!(r.phases.compute > 0);
        assert_eq!(r.traffic.c2c_read >> 20, 4, "data read remotely");
        assert!(r.kernel_times.iter().any(|(n, _)| n.starts_with("step")));
    }

    #[test]
    fn mode_substitution_changes_behaviour() {
        let sys = replay(gh200(), TRACE, Some(MemMode::System)).unwrap();
        let man = replay(gh200(), TRACE, Some(MemMode::Managed)).unwrap();
        assert!(sys.traffic.c2c_read > 0);
        assert!(man.traffic.bytes_migrated_in > 0, "managed migrates");
    }

    #[test]
    fn unknown_buffer_is_an_error() {
        let e = replay(gh200(), "free nope\n", None).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("nope"));
    }

    #[test]
    fn unclosed_kernel_is_an_error() {
        let t = "alloc a system 1m\nkernel k\n  read a 0 1m\n";
        let e = replay(gh200(), t, None).unwrap_err();
        assert!(e.msg.contains("not closed"));
    }

    #[test]
    fn out_of_range_access_is_an_error() {
        let t = "alloc a system 1m\ncpu_write a 0 2m\n";
        let e = replay(gh200(), t, None).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let t = "\n# nothing\n   \nalloc a system 64k # trailing\nfree a\n";
        replay(gh200(), t, None).unwrap();
    }

    #[test]
    fn leftover_buffers_are_freed() {
        let t = "alloc a system 1m\nalloc b managed 1m\ncpu_write a 0 1m\n";
        let r = replay(gh200(), t, None).unwrap();
        let last = r.samples.last().unwrap();
        assert_eq!(last.rss, 0);
    }
}
