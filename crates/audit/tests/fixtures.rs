//! Fixture-based end-to-end tests for the audit engine: every rule must
//! fire on the seeded-violation tree, stay silent on its clean twin, and
//! the real workspace itself must audit clean.

use gh_audit::{audit_workspace, AuditConfig, Finding};
use std::path::PathBuf;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn audit(name: &str) -> Vec<Finding> {
    audit_workspace(&AuditConfig::new(fixture_root(name))).expect("fixture tree is readable")
}

fn rule_hits<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn seeded_fixture_fires_no_wall_clock() {
    let f = audit("seeded");
    let hits = rule_hits(&f, "no-wall-clock");
    assert!(!hits.is_empty());
    assert!(hits.iter().all(|h| h.path.contains("gh-mem/src/lib.rs")));
}

#[test]
fn wall_clock_exemption_is_silent_inside_gh_perf_and_fires_outside() {
    // The seeded tree plants every banned wall-clock ident in BOTH
    // gh-mem/src/lib.rs and gh-perf/src/lib.rs; only gh-mem may fire.
    let f = audit("seeded");
    let hits = rule_hits(&f, "no-wall-clock");
    assert!(!hits.is_empty(), "gh-mem's seeded violations must fire");
    assert!(
        hits.iter().all(|h| !h.path.contains("gh-perf")),
        "gh-perf is the sanctioned carve-out: {hits:?}"
    );
    // The clean tree's gh-perf also reads Instant (that is its job) —
    // covered by clean_fixture_has_zero_findings, re-asserted here for
    // the rule specifically.
    let clean = audit("clean");
    assert!(rule_hits(&clean, "no-wall-clock").is_empty(), "{clean:#?}");
}

#[test]
fn seeded_fixture_fires_unordered_iter_flow() {
    // `report()` pushes hash-ordered values element-wise into the
    // returned vec; the flow rule flags the escape, not the iteration.
    let f = audit("seeded");
    let hits = rule_hits(&f, "unordered-iter-flow");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].path.contains("gh-mem/src/lib.rs"));
    assert!(hits[0].msg.contains("returned"), "{}", hits[0].msg);
}

#[test]
fn seeded_fixture_fires_epoch_coherence() {
    // `PageTable::populate` mutates placement without bumping the epoch;
    // `retire` bumps and must stay silent.
    let f = audit("seeded");
    let hits = rule_hits(&f, "epoch-coherence");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(
        hits[0].msg.contains("PageTable::populate"),
        "{}",
        hits[0].msg
    );
}

#[test]
fn seeded_fixture_fires_unit_launder_flow() {
    // `Pages::new(b.get())` relabels a byte count as pages.
    let f = audit("seeded");
    let hits = rule_hits(&f, "unit-launder-flow");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].msg.contains("`Bytes`"), "{}", hits[0].msg);
    assert!(hits[0].msg.contains("`Pages`"), "{}", hits[0].msg);
}

#[test]
fn seeded_fixture_fires_wall_clock_taint_inside_gh_perf() {
    // The value-flow rule reaches where the per-crate exemption cannot:
    // a measured duration leaking into a counter inside gh-perf itself.
    let f = audit("seeded");
    let hits = rule_hits(&f, "wall-clock-taint");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].path.contains("gh-perf/src/lib.rs"));
}

#[test]
fn seeded_fixture_fires_accounting_arithmetic() {
    let f = audit("seeded");
    let hits = rule_hits(&f, "no-unchecked-accounting-arithmetic");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].msg.contains("saturating"), "{}", hits[0].msg);
}

#[test]
fn seeded_fixture_fires_typed_units() {
    let f = audit("seeded");
    let hits = rule_hits(&f, "typed-units");
    // `tally(bytes: u64)` plus `span_cost(len_bytes: u64, dur_ns: u64)`.
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().all(|h| h.path.contains("gh-mem/src/lib.rs")));
    assert!(
        hits.iter().any(|h| h.msg.contains("gh_units::Bytes")),
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|h| h.msg.contains("gh_units::SimNs")),
        "{hits:?}"
    );
}

#[test]
fn seeded_fixture_fires_no_raw_unit_cast() {
    let f = audit("seeded");
    let hits = rule_hits(&f, "no-raw-unit-cast");
    // One `as u64` launder plus one `.0` escape, both in `escape_hatch`.
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().any(|h| h.msg.contains("widen")), "{hits:?}");
    assert!(hits.iter().any(|h| h.msg.contains(".get()")), "{hits:?}");
}

#[test]
fn seeded_fixture_fires_no_float_eq() {
    let f = audit("seeded");
    let hits = rule_hits(&f, "no-float-eq");
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn seeded_fixture_fires_no_unwrap_in_lib() {
    let f = audit("seeded");
    let hits = rule_hits(&f, "no-unwrap-in-lib");
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn seeded_fixture_fires_no_platform_leak() {
    let f = audit("seeded");
    let hits = rule_hits(&f, "no-platform-leak");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].path.contains("gh-mem/src/lib.rs"));
    assert!(hits[0].msg.contains("machine_cfg"), "{}", hits[0].msg);
}

#[test]
fn seeded_fixture_fires_no_ambient_state() {
    // thread_local!, static mut, the OnceLock latch (its two same-line
    // mentions dedupe to one finding), and one env read.
    let f = audit("seeded");
    let hits = rule_hits(&f, "no-ambient-state");
    assert_eq!(hits.len(), 4, "{hits:?}");
    assert!(hits.iter().all(|h| h.path.contains("gh-mem/src/lib.rs")));
    assert!(
        hits.iter().any(|h| h.msg.contains("SessionCtx")),
        "{hits:?}"
    );
}

#[test]
fn seeded_fixture_fires_trace_coverage() {
    let f = audit("seeded");
    let hits = rule_hits(&f, "trace-coverage");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].msg.contains("Ghost"), "{}", hits[0].msg);
    assert!(hits[0].path.contains("gh-trace/src/lib.rs"));
}

#[test]
fn seeded_fixture_fires_cache_key_completeness() {
    // `JobSpec::canonical_key` omits `session.perf`, which steers
    // `run_job`; the finding anchors at the key definition.
    let f = audit("seeded");
    let hits = rule_hits(&f, "cache-key-completeness");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].path.contains("gh-jobs/src/lib.rs"));
    assert!(hits[0].msg.contains("`perf`"), "{}", hits[0].msg);
    assert!(hits[0].msg.contains("canonical_key"), "{}", hits[0].msg);
}

#[test]
fn seeded_fixture_fires_session_isolation() {
    // `submit` clones the session's Bus into a pool-task closure.
    let f = audit("seeded");
    let hits = rule_hits(&f, "session-isolation");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].path.contains("gh-jobs/src/lib.rs"));
    assert!(hits[0].msg.contains("`bus`"), "{}", hits[0].msg);
}

#[test]
fn seeded_fixture_fires_lock_discipline() {
    // `publish` calls `count` (which locks `map`) while still holding
    // the `map` guard — an interprocedural self-deadlock.
    let f = audit("seeded");
    let hits = rule_hits(&f, "lock-discipline");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].path.contains("gh-jobs/src/lib.rs"));
    assert!(hits[0].msg.contains("`map`"), "{}", hits[0].msg);
    assert!(hits[0].msg.contains("count"), "{}", hits[0].msg);
}

#[test]
fn seeded_fixture_flags_reasonless_allow() {
    let f = audit("seeded");
    let hits = rule_hits(&f, "allow-syntax");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].msg.contains("reason"), "{}", hits[0].msg);
}

#[test]
fn rule_filter_narrows_to_requested_rules() {
    let mut cfg = AuditConfig::new(fixture_root("seeded"));
    cfg.only_rules.insert("no-float-eq".to_string());
    let f = audit_workspace(&cfg).expect("fixture tree is readable");
    assert!(!f.is_empty());
    assert!(f.iter().all(|x| x.rule == "no-float-eq"), "{f:?}");
}

#[test]
fn clean_fixture_has_zero_findings() {
    let f = audit("clean");
    assert!(f.is_empty(), "clean fixture must audit clean: {f:#?}");
}

#[test]
fn real_workspace_audits_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let f = audit_workspace(&AuditConfig::new(root)).expect("workspace is readable");
    assert!(
        f.is_empty(),
        "the workspace must stay violation-free; run `cargo run -p gh-audit` for details: {f:#?}"
    );
}
