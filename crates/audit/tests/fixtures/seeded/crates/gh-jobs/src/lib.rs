//! Seeded-violation fixture for the PR-9 concurrency rules: exactly one
//! finding each for `cache-key-completeness`, `session-isolation`, and
//! `lock-discipline`. Never compiled — consumed by `tests/fixtures.rs`
//! through the engine.

pub struct SessionOptions {
    pub trace: bool,
    pub perf: bool,
}

pub struct JobSpec {
    pub app: String,
    pub small: bool,
    pub session: SessionOptions,
}

impl JobSpec {
    // cache-key-completeness: `session.perf` steers `run_job` below but
    // is missing from the key — the cache would serve one config's
    // report for the other.
    pub fn canonical_key(&self) -> String {
        format!(
            "app={};small={};trace={}",
            self.app, self.small, self.session.trace
        )
    }
}

pub struct Bus {
    pub seq: u64,
}

pub struct SessionCtx {
    pub bus: Bus,
}

// session-isolation: the submitter's Bus handle is cloned into a pool
// task; tasks must construct their session inside the closure.
pub fn submit(pool: &Pool, ctx: &SessionCtx) {
    let bus = ctx.bus.clone();
    pool.spawn(move || bus.emit(1));
}

pub struct JobCache {
    map: Mutex<u64>,
}

impl JobCache {
    pub fn count(&self) -> u64 {
        let g = self.map.lock().expect("cache lock"); // gh-audit: allow(no-unwrap-in-lib) -- poisoning propagates a worker panic
        *g
    }

    // lock-discipline: `count` re-locks `map` while the guard is held —
    // Mutex is not reentrant, so this self-deadlocks.
    pub fn publish(&self) -> u64 {
        let g = self.map.lock().expect("cache lock"); // gh-audit: allow(no-unwrap-in-lib) -- poisoning propagates a worker panic
        self.count()
    }
}

pub fn run_job(spec: &JobSpec) -> u64 {
    let mut cost = if spec.small { 1 } else { 4 };
    if spec.session.perf {
        cost += 1;
    }
    cost
}
