//! Seeded-violation fixture: every per-file rule must fire on this file.
//! Never compiled — consumed by `tests/fixtures.rs` through the engine.

use std::collections::HashMap;
use std::time::Instant;

pub struct Counters {
    pub total_bytes: u64,
    pub by_node: HashMap<u32, u64>,
}

impl Counters {
    // no-unchecked-accounting-arithmetic: unchecked `+=` on an
    // accounting accumulator in an accounting crate (gh-mem).
    pub fn tally(&mut self, bytes: u64) {
        self.total_bytes += bytes;
    }

    // no-unordered-iteration: HashMap iteration order reaches the sum
    // only by luck of commutativity; the rule cannot know that.
    pub fn report(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (_, v) in self.by_node.iter() {
            out.push(*v);
        }
        out
    }

    // no-wall-clock: wall time must never enter simulator state.
    pub fn stamp(&self) -> Instant {
        Instant::now()
    }

    // no-float-eq: exact float compare in a cost decision.
    pub fn is_idle(&self, utilization: f64) -> bool {
        utilization == 0.0
    }

    // no-unwrap-in-lib: library code must not abort.
    pub fn first(&self) -> u64 {
        self.report().first().copied().unwrap()
    }
}

// allow-syntax: a suppression without a `-- <reason>` is itself a finding.
pub fn suppressed(x: Option<u64>) -> u64 {
    x.unwrap_or(0) // gh-audit: allow(no-unwrap-in-lib)
}

// no-platform-leak: this fixture tree's `crates/gh-mem/` is NOT the real
// backend path (`crates/mem/`), so naming the cost-model type here leaks.
pub fn build_machine(params: &CostParams) -> u64 {
    params.total_bytes
}

// typed-units: unit-named raw-u64 parameters crossing a public API of a
// model crate (the third hit is `tally`'s `bytes: u64` above).
pub fn span_cost(len_bytes: u64, dur_ns: u64) -> u64 {
    len_bytes.saturating_add(dur_ns)
}

// no-raw-unit-cast: an `as u64` launder and a `.0` newtype escape.
pub struct RawBytes(pub u64);

pub fn escape_hatch(count: u32, b: &RawBytes) -> u64 {
    (count as u64).saturating_add(b.0)
}
