//! Seeded-violation fixture: every per-file rule must fire on this file.
//! Never compiled — consumed by `tests/fixtures.rs` through the engine.

use gh_units::{Bytes, Pages, Vpn};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

pub struct Counters {
    pub total_bytes: u64,
    pub by_node: HashMap<u32, u64>,
}

impl Counters {
    // no-unchecked-accounting-arithmetic: unchecked `+=` on an
    // accounting accumulator in an accounting crate (gh-mem).
    pub fn tally(&mut self, bytes: u64) {
        self.total_bytes += bytes;
    }

    // unordered-iter-flow: HashMap iteration order flows element-wise
    // into the returned vec — genuinely nondeterministic output.
    pub fn report(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (_, v) in self.by_node.iter() {
            out.push(*v);
        }
        out
    }

    // no-wall-clock: wall time must never enter simulator state.
    pub fn stamp(&self) -> Instant {
        Instant::now()
    }

    // no-float-eq: exact float compare in a cost decision.
    pub fn is_idle(&self, utilization: f64) -> bool {
        utilization == 0.0
    }

    // no-unwrap-in-lib: library code must not abort.
    pub fn first(&self) -> u64 {
        self.report().first().copied().unwrap()
    }
}

// allow-syntax: a suppression without a `-- <reason>` is itself a finding.
pub fn suppressed(x: Option<u64>) -> u64 {
    x.unwrap_or(0) // gh-audit: allow(no-unwrap-in-lib)
}

// no-platform-leak: this fixture tree's `crates/gh-mem/` is NOT the real
// backend path (`crates/mem/`), so naming the cost-model type here leaks.
pub fn build_machine(params: &CostParams) -> u64 {
    params.total_bytes
}

// typed-units: unit-named raw-u64 parameters crossing a public API of a
// model crate (the third hit is `tally`'s `bytes: u64` above).
pub fn span_cost(len_bytes: u64, dur_ns: u64) -> u64 {
    len_bytes.saturating_add(dur_ns)
}

// no-raw-unit-cast: an `as u64` launder and a `.0` newtype escape.
pub struct RawBytes(pub u64);

pub fn escape_hatch(count: u32, b: &RawBytes) -> u64 {
    (count as u64).saturating_add(b.0)
}

// epoch-coherence: a placement table (struct with `entries` + `epoch`)
// whose mutator forgets the epoch bump — the span-classification cache
// would serve stale placement. `retire` is the disciplined shape and
// must NOT fire.
pub struct PageTable {
    entries: BTreeMap<u64, u8>,
    epoch: u64,
}

impl PageTable {
    pub fn populate(&mut self, vpn: Vpn, node: u8) {
        self.entries.insert(vpn, node);
    }

    pub fn retire(&mut self, vpn: Vpn) {
        self.entries.remove(&vpn);
        self.epoch = self.epoch.saturating_add(1);
    }
}

// unit-launder-flow: a byte count escapes through `.get()` and is
// rewrapped as a page count with no conversion — off by the page size,
// deterministically wrong.
pub fn pages_from_bytes(b: Bytes) -> Pages {
    Pages::new(b.get())
}

// no-ambient-state: ambient run state in a model crate — a thread-local
// collector, a process-wide mutable flag, a lazy `OnceLock` env latch,
// and a library env read. Four hits total; per-run state belongs on the
// SessionCtx.
thread_local! {
    static SCRATCH: std::cell::RefCell<Vec<u64>> = std::cell::RefCell::new(Vec::new());
}

pub static mut GLOBAL_FLAG: bool = false;

pub fn trace_latched() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("GH_TRACE").is_ok())
}
