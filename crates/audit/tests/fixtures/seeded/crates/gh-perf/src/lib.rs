//! Seeded-tree gh-perf twin: even in the violation-seeded workspace the
//! `no-wall-clock` exemption must keep host-time reads here silent while
//! the identical idents in `gh-mem/src/lib.rs` fire. The one rule seeded
//! *here* is `wall-clock-taint` — the flow rule that closes the
//! exemption's gap by following host-time values into model-visible
//! sinks even inside the profiler.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Exercises every banned ident the token rule knows about; merely
/// *reading* host time here is sanctioned, so `wall-clock-taint` stays
/// silent too (no sink is reached).
pub fn all_banned_idents() -> u128 {
    let t0 = Instant::now();
    let wall = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos());
    wall + t0.elapsed().as_nanos()
}

/// wall-clock-taint: a measured duration leaks into a counter — the
/// per-crate `no-wall-clock` exemption cannot see this; the taint rule
/// must.
pub fn leak_duration(c: &Counters) {
    let t0 = Instant::now();
    c.observe(t0.elapsed().as_nanos() as u64);
}
