//! Seeded-tree gh-perf twin: even in the violation-seeded workspace the
//! `no-wall-clock` exemption must keep host-time reads here silent while
//! the identical idents in `gh-mem/src/lib.rs` fire. No *other* rule is
//! seeded here, so every wall-clock-looking token below is exercise for
//! the exemption, not noise for the per-rule counts.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Exercises every banned ident the rule knows about.
pub fn all_banned_idents() -> u128 {
    let t0 = Instant::now();
    let wall = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos());
    wall + t0.elapsed().as_nanos()
}
