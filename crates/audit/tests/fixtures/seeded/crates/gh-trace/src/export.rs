//! Exporter that forgot to register `Event::Ghost`.

use crate::event::Event;

pub fn track(e: &Event) -> u32 {
    match e {
        Event::PageFault { .. } => 1,
        _ => 0,
    }
}
