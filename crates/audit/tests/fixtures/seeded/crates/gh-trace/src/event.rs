//! Event bus of the seeded fixture.

pub enum Event {
    PageFault { va: u64 },
    Ghost { bytes: u64 },
}
