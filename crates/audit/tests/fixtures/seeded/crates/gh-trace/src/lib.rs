//! trace-coverage: `Event::Ghost` is emitted here but the exporter
//! never names it, so traces silently drop it.

pub mod event;
pub mod export;

use event::Event;

pub fn emit_ghost() -> Event {
    Event::Ghost { bytes: 4096 }
}
