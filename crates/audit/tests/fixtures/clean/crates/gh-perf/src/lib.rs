//! Clean-fixture twin of the workspace's self-profiler: host-time reads
//! inside `gh-perf` are the sanctioned `no-wall-clock` carve-out and
//! must stay silent here.

use std::time::Instant;

/// Measures host nanoseconds spent in `f` — legal only in this crate.
/// `wall-clock-taint` is also silent: the measurement is returned to the
/// profiler's caller, never pushed into a model-visible sink.
pub fn host_time_ns<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_nanos())
}

/// Disciplined twin of seeded's `leak_duration`: what reaches the
/// counter is virtual time; host time stays inside the profiler.
pub fn observe_virtual(c: &Counters, sim_ns: u64) {
    c.observe(sim_ns);
}
