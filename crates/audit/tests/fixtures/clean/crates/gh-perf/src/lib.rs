//! Clean-fixture twin of the workspace's self-profiler: host-time reads
//! inside `gh-perf` are the sanctioned `no-wall-clock` carve-out and
//! must stay silent here.

use std::time::Instant;

/// Measures host nanoseconds spent in `f` — legal only in this crate.
pub fn host_time_ns<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_nanos())
}
