//! Exporter that names every event kind.

use crate::event::Event;

pub fn track(e: &Event) -> u32 {
    match e {
        Event::PageFault { .. } => 1,
        Event::Ghost { .. } => 2,
    }
}
