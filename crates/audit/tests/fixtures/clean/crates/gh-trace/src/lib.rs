//! Every emitted event kind is registered in `export.rs`.

pub mod event;
pub mod export;

use event::Event;

pub fn emit_ghost() -> Event {
    Event::Ghost { bytes: 4096 }
}
