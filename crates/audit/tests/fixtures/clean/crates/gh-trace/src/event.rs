//! Event bus of the clean fixture.

pub enum Event {
    PageFault { va: u64 },
    Ghost { bytes: u64 },
}
