//! Clean fixture: the disciplined twin of `seeded`'s gh-jobs crate.
//! Same shapes — a keyed spec, pool submission, a locked cache — with
//! the sanctioned patterns, so every concurrency rule stays silent.

pub struct SessionOptions {
    pub trace: bool,
    pub perf: bool,
}

pub struct JobSpec {
    pub app: String,
    pub small: bool,
    pub session: SessionOptions,
}

impl JobSpec {
    // Every report-influencing field is folded into the key.
    pub fn canonical_key(&self) -> String {
        format!(
            "app={};small={};trace={};perf={}",
            self.app, self.small, self.session.trace, self.session.perf
        )
    }
}

pub struct Bus {
    pub seq: u64,
}

pub struct SessionCtx {
    pub bus: Bus,
}

// Pool tasks construct their session inside the task: nothing of the
// submitter's session crosses the closure boundary.
pub fn submit(pool: &Pool, small: bool) {
    pool.spawn(move || {
        let ctx = SessionCtx::fresh(small);
        ctx.bus.emit(1);
    });
}

pub struct JobCache {
    map: Mutex<u64>,
}

impl JobCache {
    pub fn count(&self) -> u64 {
        let g = self.map.lock().expect("cache lock"); // gh-audit: allow(no-unwrap-in-lib) -- poisoning propagates a worker panic
        *g
    }

    // The guard is dropped before calling back into locking code.
    pub fn publish(&self) -> u64 {
        let g = self.map.lock().expect("cache lock"); // gh-audit: allow(no-unwrap-in-lib) -- poisoning propagates a worker panic
        let v = *g;
        drop(g);
        self.count() + v
    }
}

pub fn run_job(spec: &JobSpec) -> u64 {
    let mut cost = if spec.small { 1 } else { 4 };
    if spec.session.perf {
        cost += 1;
    }
    cost
}
