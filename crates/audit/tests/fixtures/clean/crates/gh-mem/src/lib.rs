//! Clean fixture: the disciplined twin of `seeded`. Same shapes, zero
//! findings — including one well-formed, reasoned suppression.

use gh_units::{widen, Bytes};
use std::collections::BTreeMap;

pub struct Counters {
    pub total_bytes: u64,
    pub by_node: BTreeMap<u32, u64>,
    pub now_ns: u64,
}

impl Counters {
    // Saturating accumulation: overflow clamps instead of wrapping. The
    // byte quantity crosses the public API as a gh-units newtype and is
    // unwrapped through the sanctioned `.get()` accessor.
    pub fn tally(&mut self, bytes: Bytes) {
        self.total_bytes = self.total_bytes.saturating_add(bytes.get());
    }

    // BTreeMap iterates in key order; no randomness reaches the output.
    pub fn report(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (_, v) in self.by_node.iter() {
            out.push(*v);
        }
        out
    }

    // Virtual clock: time is explicit simulator state.
    pub fn stamp(&self) -> u64 {
        self.now_ns
    }

    // Epsilon compare instead of exact float equality.
    pub fn is_idle(&self, utilization: f64) -> bool {
        utilization.abs() < 1e-12
    }

    // Fallible path surfaces as Option instead of aborting.
    pub fn first(&self) -> Option<u64> {
        self.report().first().copied()
    }

    // A reasoned suppression parses cleanly and silences its rule.
    pub fn merged(&self) -> u64 {
        let mut sum = 0u64;
        // gh-audit: allow(no-unordered-iteration) -- commutative fold; order cannot reach the result
        for v in self.by_node.values() {
            sum = sum.saturating_add(*v);
        }
        sum
    }
}

// The platform-respecting twin of seeded's `build_machine`: only the
// abstract seam is named, never the backend cost-model types, and the
// byte quantity is typed.
pub fn build_machine(pool_bytes: Bytes) -> u64 {
    pool_bytes.get()
}

// The disciplined twin of seeded's `span_cost`/`escape_hatch`: typed
// parameters, `widen` for the usize conversion, `.get()` as the exit.
pub fn span_cost(lens: &[usize]) -> u64 {
    widen(lens.len())
}
