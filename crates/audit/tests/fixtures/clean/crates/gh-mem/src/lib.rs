//! Clean fixture: the disciplined twin of `seeded`. Same shapes, zero
//! findings — including one well-formed, reasoned suppression.

use gh_units::{widen, Bytes, PageSize, Pages, Vpn};
use std::collections::{BTreeMap, HashMap};

pub struct Counters {
    pub total_bytes: u64,
    pub by_node: BTreeMap<u32, u64>,
    pub hot_pages: HashMap<u64, u64>,
    pub now_ns: u64,
}

impl Counters {
    // Saturating accumulation: overflow clamps instead of wrapping. The
    // byte quantity crosses the public API as a gh-units newtype and is
    // unwrapped through the sanctioned `.get()` accessor.
    pub fn tally(&mut self, bytes: Bytes) {
        self.total_bytes = self.total_bytes.saturating_add(bytes.get());
    }

    // BTreeMap iterates in key order; no randomness reaches the output.
    pub fn report(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (_, v) in self.by_node.iter() {
            out.push(*v);
        }
        out
    }

    // Virtual clock: time is explicit simulator state.
    pub fn stamp(&self) -> u64 {
        self.now_ns
    }

    // Epsilon compare instead of exact float equality.
    pub fn is_idle(&self, utilization: f64) -> bool {
        utilization.abs() < 1e-12
    }

    // Fallible path surfaces as Option instead of aborting.
    pub fn first(&self) -> Option<u64> {
        self.report().first().copied()
    }

    // A commutative fold over an unordered map: `unordered-iter-flow`
    // recognizes order-insensitive accumulation, so — unlike under the
    // retired token rule — no suppression is needed.
    pub fn merged(&self) -> u64 {
        let mut sum = 0u64;
        for v in self.hot_pages.values() {
            sum = sum.saturating_add(*v);
        }
        sum
    }

    // A reasoned suppression parses cleanly and silences its rule.
    pub fn merged_first(&self) -> u64 {
        // gh-audit: allow(no-unwrap-in-lib) -- by_node is never empty by construction
        self.report().first().copied().unwrap()
    }
}

// The platform-respecting twin of seeded's `build_machine`: only the
// abstract seam is named, never the backend cost-model types, and the
// byte quantity is typed.
pub fn build_machine(pool_bytes: Bytes) -> u64 {
    pool_bytes.get()
}

// The disciplined twin of seeded's `span_cost`/`escape_hatch`: typed
// parameters, `widen` for the usize conversion, `.get()` as the exit.
pub fn span_cost(lens: &[usize]) -> u64 {
    widen(lens.len())
}

// epoch-coherence's disciplined twin: every placement mutation bumps the
// epoch before returning.
pub struct PageTable {
    entries: BTreeMap<u64, u8>,
    epoch: u64,
}

impl PageTable {
    pub fn populate(&mut self, vpn: Vpn, node: u8) {
        self.entries.insert(vpn, node);
        self.epoch = self.epoch.saturating_add(1);
    }

    pub fn retire(&mut self, vpn: Vpn) {
        self.entries.remove(&vpn);
        self.epoch = self.epoch.saturating_add(1);
    }
}

// unit-launder-flow's disciplined twin: the byte count is scaled by the
// page size on its way into the page domain — a real conversion, not a
// relabeling.
pub fn pages_from_bytes(b: Bytes, page: PageSize) -> Pages {
    Pages::new(b.get() / page.get())
}

// no-ambient-state's disciplined twin: per-run observability rides an
// explicit session value owned by the caller — no thread-locals, no
// process-wide cells, and the env read stays at the CLI boundary.
pub struct Session {
    pub trace: bool,
    pub scratch: Vec<u64>,
}

impl Session {
    pub fn with_trace(trace: bool) -> Self {
        Session {
            trace,
            scratch: Vec::new(),
        }
    }
}
