//! Intraprocedural taint dataflow over the [`crate::ast`] tree.
//!
//! The driver owns control flow — statement sequencing, branch
//! environment cloning and union-merging, a two-pass loop approximation
//! for loop-carried taint, closure-parameter seeding from the method
//! receiver — and delegates *value* semantics to a [`TaintSpec`]: what
//! introduces a label, what propagates it, what kills it, and which
//! expressions are sinks. Each flow rule (`unit-launder-flow`,
//! `wall-clock-taint`, `unordered-iter-flow`) is a `TaintSpec`
//! implementation of ~100 lines; the fixpoint plumbing lives here once.
//!
//! Labels are structured ([`Label`]): most rules use a fixed `&'static
//! str` vocabulary ([`Label::Tag`] — unit names, `"wall"`, `"hash"`),
//! while the interprocedural summary layer ([`crate::summary`]) tracks
//! *which input* a value derives from ([`Label::Param`] for parameters,
//! [`Label::Field`] for `self` fields and rule-defined dynamic labels).
//! Environments map variable names to label sets and merge by pointwise
//! union, so the analysis over-approximates: a variable tainted on *any*
//! path stays tainted. Loop bodies run twice so taint flowing through a
//! loop-carried variable (accumulate in iteration N, sink in N+1) is
//! seen; rules must tolerate the duplicate sink callbacks this produces
//! (the engine dedups exact duplicate findings).

use crate::ast::{Block, Expr, FnDef, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// One taint label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Label {
    /// Fixed rule vocabulary (`"wall"`, `"hash"`, unit type names).
    Tag(&'static str),
    /// The value derives from the analyzed function's i-th parameter
    /// (0-based over the declared parameter list, `self` included).
    /// Used by the interprocedural summary layer.
    Param(u16),
    /// The value derives from a named field of `self` (summary layer),
    /// or carries a rule-defined dynamic label.
    Field(String),
}

/// A set of taint labels.
pub type Labels = BTreeSet<Label>;

/// Singleton label set holding `Tag(s)` — the common rule idiom.
pub fn tag(s: &'static str) -> Labels {
    [Label::Tag(s)].into()
}

/// True when `labels` contains `Tag(s)`.
pub fn has(labels: &Labels, s: &'static str) -> bool {
    labels.contains(&Label::Tag(s))
}

/// Union of two label sets.
pub fn union(mut a: Labels, b: Labels) -> Labels {
    a.extend(b);
    a
}

/// Variable -> labels environment. Missing variables are untainted.
#[derive(Debug, Clone, Default)]
pub struct TaintEnv {
    vars: BTreeMap<String, Labels>,
}

impl TaintEnv {
    /// Labels of `var` (empty when unbound).
    pub fn get(&self, var: &str) -> Labels {
        self.vars.get(var).cloned().unwrap_or_default()
    }

    /// Strong update: rebinds `var` to exactly `labels`.
    pub fn bind(&mut self, var: &str, labels: Labels) {
        if labels.is_empty() {
            self.vars.remove(var);
        } else {
            self.vars.insert(var.to_string(), labels);
        }
    }

    /// Weak update: unions `labels` into `var`'s set.
    pub fn add(&mut self, var: &str, labels: &Labels) {
        if !labels.is_empty() {
            self.vars
                .entry(var.to_string())
                .or_default()
                .extend(labels.iter().cloned());
        }
    }

    /// Removes all labels from `var` (sanitizer).
    pub fn clear(&mut self, var: &str) {
        self.vars.remove(var);
    }

    /// Pointwise union with `other` (branch join).
    pub fn merge(&mut self, other: &TaintEnv) {
        for (k, v) in &other.vars {
            self.vars
                .entry(k.clone())
                .or_default()
                .extend(v.iter().cloned());
        }
    }
}

/// Rule-specific taint semantics. Every hook has a conservative default
/// (propagate by union, no sources, no sinks); rules override what they
/// care about. Hooks receive `&mut TaintEnv` where side effects are
/// meaningful (e.g. `out.push(tainted)` tainting `out`).
pub trait TaintSpec {
    /// Labels of a path expression. Default: environment lookup for
    /// single-segment paths, empty otherwise.
    fn path(&mut self, e: &Expr, env: &TaintEnv) -> Labels {
        e.as_var().map(|v| env.get(v)).unwrap_or_default()
    }

    /// Labels of `recv.name`. Default: the receiver's labels.
    fn field(&mut self, _e: &Expr, recv: Labels, _env: &mut TaintEnv) -> Labels {
        recv
    }

    /// Labels of `l op r`. Default: union.
    fn binary(&mut self, _op: &str, l: Labels, r: Labels, _line: u32) -> Labels {
        union(l, r)
    }

    /// Labels of `expr as Ty`. Default: the operand's labels.
    fn cast(&mut self, _e: &Expr, inner: Labels) -> Labels {
        inner
    }

    /// Labels of `recv.name(args)`; `e` is the full `Expr::Method` node.
    /// Default: receiver ∪ arguments.
    fn method(&mut self, _e: &Expr, recv: Labels, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        args.iter().fold(recv, |acc, a| union(acc, a.clone()))
    }

    /// Labels of `callee(args)`; `e` is the full `Expr::Call` node.
    /// Default: union of arguments.
    fn call(&mut self, _e: &Expr, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        args.iter().cloned().fold(Labels::new(), union)
    }

    /// Labels of `name!(args)`. Default: union of arguments.
    fn macro_call(&mut self, _e: &Expr, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        args.iter().cloned().fold(Labels::new(), union)
    }

    /// Labels of `Path { fields }`. Default: union of field values.
    fn struct_lit(
        &mut self,
        _e: &Expr,
        fields: &[(String, Labels)],
        _env: &mut TaintEnv,
    ) -> Labels {
        fields
            .iter()
            .map(|(_, l)| l.clone())
            .fold(Labels::new(), union)
    }

    /// Labels bound to a `for` pattern given the iterated expression and
    /// its labels. Default: the iterated expression's labels.
    fn for_bindings(&mut self, _iter: &Expr, labels: &Labels, _env: &TaintEnv) -> Labels {
        labels.clone()
    }

    /// A branch decision: the condition of an `if`/`while` or the
    /// scrutinee of a `match`, with the deciding value's labels. This is
    /// the driver's only control-dependence hook — rules that must not
    /// miss implicit flows (a value steering behavior without flowing
    /// into it, e.g. `cache-key-completeness`) treat a branch on a
    /// tracked value as consumption.
    fn on_branch(&mut self, _e: &Expr, _labels: &Labels) {}

    /// A value leaving the function (`return e` or the body tail).
    fn on_return(&mut self, _e: &Expr, _labels: &Labels) {}

    /// `lhs = rhs` where `lhs` is not a plain variable (field/index
    /// store). `labels` are the stored value's labels.
    fn on_store(&mut self, _lhs: &Expr, _rhs: &Expr, _labels: &Labels, _env: &mut TaintEnv) {}

    /// A non-assignment expression in statement position, with its labels.
    fn on_stmt(&mut self, _e: &Expr, _labels: &Labels, _env: &mut TaintEnv) {}
}

/// Runs `spec` over one function body with `env` as the initial
/// environment. [`TaintSpec::on_return`] fires for `return` expressions
/// and, when the function declares a return type, for the body tail.
pub fn run_fn(spec: &mut dyn TaintSpec, fd: &FnDef, mut env: TaintEnv) {
    let Some(body) = &fd.body else { return };
    let labels = exec_block(spec, body, &mut env);
    if let Some(tail) = body.tail.as_deref() {
        if !fd.ret.is_empty() {
            spec.on_return(tail, &labels);
        }
    }
}

/// Executes a block's statements against `env`, returning the tail
/// expression's labels (empty when there is no tail).
pub fn exec_block(spec: &mut dyn TaintSpec, b: &Block, env: &mut TaintEnv) -> Labels {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { pats, init, .. } => {
                let labels = init
                    .as_ref()
                    .map(|e| eval_expr(spec, e, env))
                    .unwrap_or_default();
                for p in pats {
                    env.bind(p, labels.clone());
                }
            }
            Stmt::Expr(e) => {
                if let Expr::Assign { .. } = e {
                    eval_expr(spec, e, env);
                } else {
                    let labels = eval_expr(spec, e, env);
                    spec.on_stmt(e, &labels, env);
                }
            }
            Stmt::Item(_) => {} // nested fns are analyzed as their own fns
        }
    }
    b.tail
        .as_deref()
        .map(|e| eval_expr(spec, e, env))
        .unwrap_or_default()
}

/// Evaluates one expression to its labels, applying side effects
/// (assignments, loops, sink callbacks) along the way.
pub fn eval_expr(spec: &mut dyn TaintSpec, e: &Expr, env: &mut TaintEnv) -> Labels {
    match e {
        Expr::Lit { .. } | Expr::Opaque { .. } => Labels::new(),
        Expr::Path { .. } => spec.path(e, env),
        Expr::Unary { expr, .. } => eval_expr(spec, expr, env),
        Expr::Binary { op, lhs, rhs, line } => {
            let l = eval_expr(spec, lhs, env);
            let r = eval_expr(spec, rhs, env);
            spec.binary(op, l, r, *line)
        }
        Expr::Assign { op, lhs, rhs, .. } => {
            let rl = eval_expr(spec, rhs, env);
            let labels = if op == "=" {
                rl
            } else {
                // Compound assignment routes through the binary hook so a
                // rule's arithmetic kill-set applies to `+=` too.
                let base = op.trim_end_matches('=');
                let cur = lhs
                    .as_var()
                    .map(|v| env.get(v))
                    .unwrap_or_else(|| eval_expr(spec, lhs, env));
                spec.binary(base, cur, rl, lhs.line())
            };
            if let Some(v) = lhs.as_var() {
                env.bind(v, labels);
            } else {
                spec.on_store(lhs, rhs, &labels, env);
            }
            Labels::new()
        }
        Expr::Cast { expr, .. } => {
            let inner = eval_expr(spec, expr, env);
            spec.cast(e, inner)
        }
        Expr::Call { callee, args, .. } => {
            // A non-path callee (fn-pointer field, nested call) can still
            // carry taint through its receiver chain — evaluated for side
            // effects, labels folded into the args by the default hook.
            if !matches!(callee.as_ref(), Expr::Path { .. }) {
                let _ = eval_expr(spec, callee, env);
            }
            let arg_labels: Vec<Labels> = args.iter().map(|a| eval_expr(spec, a, env)).collect();
            spec.call(e, &arg_labels, env)
        }
        Expr::Method { recv, args, .. } => {
            let rl = eval_expr(spec, recv, env);
            let mut arg_labels = Vec::with_capacity(args.len());
            for a in args {
                if let Expr::Closure { params, body, .. } = a {
                    // `m.iter().map(|(k, v)| ...)`: closure params see the
                    // receiver's labels.
                    let mut cenv = env.clone();
                    for p in params {
                        cenv.bind(p, rl.clone());
                    }
                    let bl = eval_expr(spec, body, &mut cenv);
                    env.merge(&cenv);
                    arg_labels.push(bl);
                } else {
                    arg_labels.push(eval_expr(spec, a, env));
                }
            }
            spec.method(e, rl, &arg_labels, env)
        }
        Expr::Field { recv, .. } => {
            let rl = eval_expr(spec, recv, env);
            spec.field(e, rl, env)
        }
        Expr::Index { recv, idx, .. } => {
            let rl = eval_expr(spec, recv, env);
            let il = eval_expr(spec, idx, env);
            union(rl, il)
        }
        Expr::StructLit { fields, .. } => {
            let fl: Vec<(String, Labels)> = fields
                .iter()
                .map(|(n, v)| (n.clone(), eval_expr(spec, v, env)))
                .collect();
            spec.struct_lit(e, &fl, env)
        }
        Expr::Macro { args, .. } => {
            let al: Vec<Labels> = args.iter().map(|a| eval_expr(spec, a, env)).collect();
            spec.macro_call(e, &al, env)
        }
        Expr::Tuple { items, .. } | Expr::Array { items, .. } => items
            .iter()
            .map(|i| eval_expr(spec, i, env))
            .fold(Labels::new(), union),
        Expr::BlockExpr { block, .. } => exec_block(spec, block, env),
        Expr::If {
            pat,
            cond,
            then,
            else_,
            ..
        } => {
            let cl = eval_expr(spec, cond, env);
            spec.on_branch(cond, &cl);
            let mut tenv = env.clone();
            for p in pat {
                tenv.bind(p, cl.clone());
            }
            let tl = exec_block(spec, then, &mut tenv);
            let el = if let Some(els) = else_ {
                let mut eenv = env.clone();
                let l = eval_expr(spec, els, &mut eenv);
                env.merge(&eenv);
                l
            } else {
                Labels::new()
            };
            env.merge(&tenv);
            union(tl, el)
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            let sl = eval_expr(spec, scrutinee, env);
            spec.on_branch(scrutinee, &sl);
            let mut out = Labels::new();
            let mut joined = env.clone();
            for arm in arms {
                let mut aenv = env.clone();
                for p in &arm.pats {
                    aenv.bind(p, sl.clone());
                }
                out = union(out, eval_expr(spec, &arm.body, &mut aenv));
                joined.merge(&aenv);
            }
            *env = joined;
            out
        }
        Expr::For {
            pats, iter, body, ..
        } => {
            let il = eval_expr(spec, iter, env);
            let bl = spec.for_bindings(iter, &il, env);
            let mut benv = env.clone();
            for p in pats {
                benv.bind(p, bl.clone());
            }
            exec_block(spec, body, &mut benv);
            for p in pats {
                benv.add(p, &bl);
            }
            exec_block(spec, body, &mut benv);
            env.merge(&benv);
            Labels::new()
        }
        Expr::While {
            pat, cond, body, ..
        } => {
            let cl = eval_expr(spec, cond, env);
            spec.on_branch(cond, &cl);
            let mut benv = env.clone();
            for p in pat {
                benv.bind(p, cl.clone());
            }
            exec_block(spec, body, &mut benv);
            exec_block(spec, body, &mut benv);
            env.merge(&benv);
            Labels::new()
        }
        Expr::Loop { body, .. } => {
            let mut benv = env.clone();
            exec_block(spec, body, &mut benv);
            exec_block(spec, body, &mut benv);
            env.merge(&benv);
            Labels::new()
        }
        Expr::Closure { body, .. } => {
            // A closure not consumed by a method call (stored, passed to a
            // free fn): analyze the body for sinks; its params are unknown.
            let mut cenv = env.clone();
            let _ = eval_expr(spec, body, &mut cenv);
            env.merge(&cenv);
            Labels::new()
        }
        Expr::Ret { expr, .. } => {
            if let Some(inner) = expr {
                let labels = eval_expr(spec, inner, env);
                spec.on_return(inner, &labels);
            }
            Labels::new()
        }
        Expr::Break { expr, .. } => expr
            .as_ref()
            .map(|inner| eval_expr(spec, inner, env))
            .unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    /// A toy spec: `source()` introduces "t", `sink(x)` records tainted
    /// args, `scrub(x)` returns clean.
    #[derive(Default)]
    struct Toy {
        hits: Vec<u32>,
    }

    impl TaintSpec for Toy {
        fn call(&mut self, e: &Expr, args: &[Labels], _env: &mut TaintEnv) -> Labels {
            if let Expr::Call { callee, line, .. } = e {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    match segs.last().map(String::as_str) {
                        Some("source") => return tag("t"),
                        Some("scrub") => return Labels::new(),
                        Some("sink") => {
                            if args.iter().any(|a| has(a, "t")) {
                                self.hits.push(*line);
                            }
                            return Labels::new();
                        }
                        _ => {}
                    }
                }
            }
            args.iter().cloned().fold(Labels::new(), union)
        }
    }

    fn run(src: &str) -> Vec<u32> {
        let file = parse(&lex(src));
        let mut toy = Toy::default();
        crate::ast::for_each_fn(&file, &mut |_, fd| {
            run_fn(&mut toy, fd, TaintEnv::default());
        });
        toy.hits.sort_unstable();
        toy.hits.dedup();
        toy.hits
    }

    #[test]
    fn straight_line_taint_reaches_sink() {
        assert_eq!(run("fn f() { let x = source(); sink(x); }"), vec![1]);
    }

    #[test]
    fn scrubbed_value_is_clean() {
        assert!(run("fn f() { let x = source(); let y = scrub(x); sink(y); }").is_empty());
    }

    #[test]
    fn rebinding_kills_taint() {
        assert!(run("fn f() { let mut x = source(); x = 1; sink(x); }").is_empty());
    }

    #[test]
    fn branches_merge_by_union() {
        let src =
            "fn f(c: bool) { let mut x = 0; if c { x = source(); } else { x = 1; } sink(x); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn loop_carried_taint_is_seen() {
        let src = "fn f(n: u64) { let mut acc = 0; for _i in 0..n { sink(acc); acc = source(); } }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn closure_params_inherit_receiver_labels() {
        let src = "fn f(v: V) { let t = source(); t.map(|x| sink(x)); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn match_arms_bind_scrutinee_labels() {
        let src = "fn f() { match source() { Some(v) => sink(v), None => {} } }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn method_chains_propagate() {
        let src = "fn f() { let x = source().wrap().unwrap(); sink(x); }";
        assert_eq!(run(src).len(), 1);
    }
}
