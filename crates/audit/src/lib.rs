//! `gh-audit` — workspace-native static analysis for the grace-mem
//! simulator.
//!
//! The simulator's scientific claims rest on two properties the compiler
//! cannot check: **bit-exact determinism** across runs (same inputs, same
//! bytes out — `tests/determinism.rs`) and **conservation of accounted
//! bytes/pages** (`tests/memory_invariants.rs`). Both are end-to-end tests
//! that only cover the paths they execute. This crate enforces the
//! *source-level* discipline that makes the properties hold everywhere:
//!
//! Token rules (per-file shape checks):
//!
//! | rule | what it guards |
//! |------|----------------|
//! | `no-wall-clock` | virtual clock only; no `Instant`/`SystemTime` in sim code |
//! | `no-unchecked-accounting-arithmetic` | saturating math for byte/page/cost accumulators |
//! | `no-float-eq` | no exact float compares in cost-model decisions |
//! | `no-unwrap-in-lib` | library code returns typed errors, never aborts |
//! | `trace-coverage` | every emitted event kind is named by an exporter |
//! | `allow-syntax` | suppressions are well-formed and carry a reason |
//!
//! Flow rules (workspace AST + call graph + taint dataflow):
//!
//! | rule | what it guards |
//! |------|----------------|
//! | `epoch-coherence` | placement mutators bump `placement_epoch` (span-cache validity) |
//! | `unit-launder-flow` | `.get()`-escaped raw values stay in their unit domain |
//! | `wall-clock-taint` | host-time values never reach traces/counters/checksums/`RunReport` |
//! | `unordered-iter-flow` | hash iteration order never reaches returns/state/output |
//! | `cache-key-completeness` | every report-influencing spec field is in `canonical_key` |
//! | `session-isolation` | `Bus`/`Perf`/`Rc` handles never escape their `SessionCtx` |
//! | `lock-discipline` | no re-entrant locking, no lock pair taken in both orders |
//!
//! Suppression is per-line and audited itself:
//!
//! ```text
//! let ks = m.keys(); // gh-audit: allow(unordered-iter-flow) -- sorted below
//! // gh-audit: allow-file(no-unwrap-in-lib) -- harness binary, aborts are fine
//! ```
//!
//! The engine is from scratch (no `syn`/`dylint`: the build environment
//! is offline), layered as **tokens → AST → dataflow → summaries**: a
//! lossless lexer ([`lexer`]), an error-tolerant recursive-descent parser
//! ([`ast`]), shallow name/type resolution ([`resolve`]), a workspace
//! call graph with effect propagation ([`callgraph`]), an intraprocedural
//! taint driver ([`dataflow`]) the flow rules plug specs into, and
//! per-function dataflow summaries propagated over the call graph to a
//! fixpoint ([`summary`]) so rules reason across function boundaries.
//! The lints stay *heuristic* — over-approximate environments, by-name
//! call resolution — so false negatives are possible; false positives
//! get an allow with a reason, and pre-existing debt can be accepted
//! with a [`baseline`] file so CI fails only on new findings.
//!
//! Run it: `cargo run -p gh-audit` (report) or `cargo run -p gh-audit --
//! --deny` (CI gate, exits 1 on any finding). See `docs/static-analysis.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod source;
pub mod summary;

pub use baseline::Baseline;
pub use engine::{audit_workspace, AuditConfig, AuditError};
pub use rules::Finding;
