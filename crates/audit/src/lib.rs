//! `gh-audit` — workspace-native static analysis for the grace-mem
//! simulator.
//!
//! The simulator's scientific claims rest on two properties the compiler
//! cannot check: **bit-exact determinism** across runs (same inputs, same
//! bytes out — `tests/determinism.rs`) and **conservation of accounted
//! bytes/pages** (`tests/memory_invariants.rs`). Both are end-to-end tests
//! that only cover the paths they execute. This crate enforces the
//! *source-level* discipline that makes the properties hold everywhere:
//!
//! | rule | what it guards |
//! |------|----------------|
//! | `no-wall-clock` | virtual clock only; no `Instant`/`SystemTime` in sim code |
//! | `no-unordered-iteration` | no `HashMap`/`HashSet` iteration order reaching results |
//! | `no-unchecked-accounting-arithmetic` | saturating math for byte/page/cost accumulators |
//! | `no-float-eq` | no exact float compares in cost-model decisions |
//! | `no-unwrap-in-lib` | library code returns typed errors, never aborts |
//! | `trace-coverage` | every emitted event kind is named by an exporter |
//! | `allow-syntax` | suppressions are well-formed and carry a reason |
//!
//! Suppression is per-line and audited itself:
//!
//! ```text
//! sum += v; // gh-audit: allow(no-unordered-iteration) -- commutative fold
//! // gh-audit: allow-file(no-unwrap-in-lib) -- harness binary, aborts are fine
//! ```
//!
//! The engine is a from-scratch lexer + token-walker (no `syn`/`dylint`:
//! the build environment is offline, and the rules need token shapes, not
//! full ASTs). That makes the lints *heuristic* — scoped to stay useful:
//! intra-file type knowledge, vocabulary-based accounting detection. False
//! negatives are possible; false positives get an allow with a reason.
//!
//! Run it: `cargo run -p gh-audit` (report) or `cargo run -p gh-audit --
//! --deny` (CI gate, exits 1 on any finding). See `docs/static-analysis.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use engine::{audit_workspace, AuditConfig, AuditError};
pub use rules::Finding;
