//! A workspace call graph with per-function effect summaries.
//!
//! Nodes are the functions of `Lib`/`Bin` files outside `#[cfg(test)]`
//! modules; edges are *callee names* (method names and final path
//! segments), resolved at propagation time by name. That is deliberately
//! coarser than real Rust name resolution — the audit has no trait or
//! type information to dispatch on — but it composes safely with
//! union-style effect propagation: if *any* function named `populate`
//! has an effect, every call to `populate` is assumed to have it. For
//! invariants of the form "every fn that does X must also do Y" this
//! over-approximates X and Y together, so a function only trips the rule
//! when no candidate callee provides the required companion effect.
//!
//! Effects are a `u8` bitset supplied by the rule ([`CallGraph::propagate`]
//! takes the direct-effect vector and returns the transitive closure);
//! the graph itself is effect-agnostic.

use crate::ast::{self, Expr};
use crate::source::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// One function in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the declaring file in the engine's file list.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, when the fn is associated.
    pub impl_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Names this function calls (method names + final path segments).
    pub callees: BTreeSet<String>,
}

/// The workspace call graph. `fns` is ordered by (file, source line) and
/// is the index space for effect vectors.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All graph nodes.
    pub fns: Vec<FnNode>,
    /// Function name -> node indices, for candidate resolution.
    name_idx: BTreeMap<String, Vec<usize>>,
}

/// Iterates exactly the functions [`CallGraph::build`] collects, in node
/// order, yielding `(node_index, file_index, impl_type, fn)`. Rules use
/// this to compute direct-effect vectors parallel to `CallGraph::fns`.
pub fn for_each_graph_fn<'a>(
    files: &'a [SourceFile],
    asts: &'a [ast::File],
    f: &mut dyn FnMut(usize, usize, Option<&'a str>, &'a ast::FnDef),
) {
    let mut node = 0usize;
    for (idx, (file, tree)) in files.iter().zip(asts).enumerate() {
        if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
            continue;
        }
        ast::for_each_fn(tree, &mut |impl_ty, fd| {
            if file.in_test_mod(fd.line) {
                return;
            }
            f(node, idx, impl_ty, fd);
            node += 1;
        });
    }
}

impl CallGraph {
    /// Builds the graph over `files`/`asts` (parallel by index), keeping
    /// `Lib`/`Bin` functions outside test modules.
    pub fn build(files: &[SourceFile], asts: &[ast::File]) -> CallGraph {
        let mut fns = Vec::new();
        for_each_graph_fn(files, asts, &mut |_, idx, impl_ty, fd| {
            let mut callees = BTreeSet::new();
            if let Some(body) = &fd.body {
                ast::walk_block(body, &mut |e| match e {
                    Expr::Method { name, .. } => {
                        callees.insert(name.clone());
                    }
                    Expr::Call { callee, .. } => {
                        if let Expr::Path { segs, .. } = callee.as_ref() {
                            if let Some(last) = segs.last() {
                                callees.insert(last.clone());
                            }
                        }
                    }
                    _ => {}
                });
            }
            fns.push(FnNode {
                file: idx,
                name: fd.name.clone(),
                impl_ty: impl_ty.map(str::to_string),
                line: fd.line,
                callees,
            });
        });
        let mut name_idx: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            name_idx.entry(f.name.clone()).or_default().push(i);
        }
        CallGraph { fns, name_idx }
    }

    /// Candidate callees for a call to `name`. When `recv_ty` is known
    /// and at least one same-named candidate is associated with that
    /// type, only those candidates are returned (typed dispatch);
    /// otherwise every same-named function is a candidate (by-name
    /// dispatch, the PR-8 behavior). An empty vec means the callee is
    /// outside the workspace (std, shims).
    pub fn candidates(&self, name: &str, recv_ty: Option<&str>) -> Vec<usize> {
        let Some(all) = self.name_idx.get(name) else {
            return Vec::new();
        };
        if let Some(ty) = recv_ty {
            let typed: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| self.fns[i].impl_ty.as_deref() == Some(ty))
                .collect();
            if !typed.is_empty() {
                return typed;
            }
        }
        all.clone()
    }

    /// Transitive effect closure: starting from `direct` (parallel to
    /// `fns`), repeatedly unions each function's effects with those of
    /// every same-named candidate for each of its callees, to fixpoint.
    pub fn propagate(&self, direct: &[u8]) -> Vec<u8> {
        let mut effects = direct.to_vec();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let mut acc = effects[i];
                for callee in &self.fns[i].callees {
                    if let Some(cands) = self.name_idx.get(callee.as_str()) {
                        for &j in cands {
                            acc |= effects[j];
                        }
                    }
                }
                if acc != effects[i] {
                    effects[i] = acc;
                    changed = true;
                }
            }
            if !changed {
                return effects;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(name, src)| {
                SourceFile::parse(&format!("{name}/src/lib.rs"), name, FileKind::Lib, src)
            })
            .collect();
        let asts: Vec<ast::File> = files.iter().map(|f| ast::parse(&f.tokens)).collect();
        let g = CallGraph::build(&files, &asts);
        (files, g)
    }

    #[test]
    fn effects_propagate_through_calls() {
        let (_f, g) = graph(&[(
            "a",
            "fn leaf() { } fn mid() { leaf(); } fn top(&self) { self.mid(); }",
        )]);
        assert_eq!(g.fns.len(), 3);
        let leaf = g.fns.iter().position(|f| f.name == "leaf").unwrap();
        let top = g.fns.iter().position(|f| f.name == "top").unwrap();
        let mut direct = vec![0u8; g.fns.len()];
        direct[leaf] = 1;
        let eff = g.propagate(&direct);
        assert_eq!(eff[top], 1, "effect reaches transitive caller");
    }

    #[test]
    fn test_mod_fns_are_excluded() {
        let (_f, g) = graph(&[(
            "a",
            "fn real() {}\n#[cfg(test)]\nmod tests { fn fake() {} }",
        )]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "real");
    }

    #[test]
    fn name_union_merges_candidates() {
        let (_f, g) = graph(&[
            ("a", "fn work() { }"),
            ("b", "fn work() { } fn caller() { work(); }"),
        ]);
        let a_work = g
            .fns
            .iter()
            .position(|f| f.name == "work" && f.file == 0)
            .unwrap();
        let caller = g.fns.iter().position(|f| f.name == "caller").unwrap();
        let mut direct = vec![0u8; g.fns.len()];
        direct[a_work] = 2;
        let eff = g.propagate(&direct);
        assert_eq!(eff[caller], 2, "any same-named candidate's effects apply");
    }
}
