//! Rendering of audit findings — human text, machine JSON, and SARIF 2.1.0
//! for CI annotations. All three are deterministic, like everything else
//! in this workspace; the JSON is hand-rolled because the audit crate is
//! dependency-free on purpose.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders findings as `path:line: [rule] message` lines plus a per-rule
/// summary. Empty findings render the all-clear line.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.msg);
    }
    if findings.is_empty() {
        out.push_str("gh-audit: workspace clean (0 findings)\n");
    } else {
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in findings {
            *by_rule.entry(f.rule).or_insert(0) += 1;
        }
        let _ = writeln!(out, "\ngh-audit: {} finding(s)", findings.len());
        for (rule, n) in by_rule {
            let _ = writeln!(out, "  {rule:<38} {n}");
        }
    }
    out
}

/// Escapes `s` for a JSON string body (quotes, backslashes, control
/// characters).
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders findings as a JSON array of `{rule, path, line, msg}` objects
/// (one finding per element, stable order as given).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\": \"");
        esc(f.rule, &mut out);
        out.push_str("\", \"path\": \"");
        esc(&f.path, &mut out);
        let _ = write!(out, "\", \"line\": {}, \"msg\": \"", f.line);
        esc(&f.msg, &mut out);
        out.push_str("\"}");
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders findings as a minimal SARIF 2.1.0 log (one run, one result per
/// finding) so CI can surface them as code annotations.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut rules_seen: Vec<&str> = Vec::new();
    for f in findings {
        if !rules_seen.contains(&f.rule) {
            rules_seen.push(f.rule);
        }
    }
    rules_seen.sort_unstable();
    let mut out = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \
         \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"runs\": [{\n    \"tool\": {\"driver\": {\"name\": \"gh-audit\", \"rules\": [",
    );
    for (i, r) in rules_seen.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"id\": \"");
        esc(r, &mut out);
        out.push_str("\"}");
    }
    out.push_str("]}},\n    \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n      {\"ruleId\": \"");
        esc(f.rule, &mut out);
        out.push_str("\", \"level\": \"error\", \"message\": {\"text\": \"");
        esc(&f.msg, &mut out);
        out.push_str(
            "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"",
        );
        esc(&f.path, &mut out);
        let _ = write!(
            out,
            "\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            f.line
        );
    }
    if !findings.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("]\n  }]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_render() {
        assert!(render(&[]).contains("workspace clean"));
    }

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "no-float-eq",
            path: "a/src/lib.rs".into(),
            line: 3,
            msg: "bad \"compare\"\nuse epsilon".into(),
        }]
    }

    #[test]
    fn json_escapes_and_structures() {
        let j = render_json(&sample());
        assert!(j.contains("\"rule\": \"no-float-eq\""));
        assert!(j.contains("\\\"compare\\\"\\nuse epsilon"));
        assert!(j.starts_with('[') && j.trim_end().ends_with(']'));
    }

    #[test]
    fn json_empty_is_empty_array() {
        assert_eq!(render_json(&[]), "[]\n");
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let s = render_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"gh-audit\""));
        assert!(s.contains("{\"id\": \"no-float-eq\"}"));
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("\"uri\": \"a/src/lib.rs\""));
    }

    #[test]
    fn sarif_carries_the_concurrency_rules() {
        // The renderer derives rule ids from findings, so the PR-9
        // concurrency rules must surface without any registry edit.
        let findings: Vec<Finding> = [
            "cache-key-completeness",
            "session-isolation",
            "lock-discipline",
        ]
        .iter()
        .map(|r| Finding {
            rule: r,
            path: "crates/jobs/src/lib.rs".into(),
            line: 1,
            msg: "m".into(),
        })
        .collect();
        let s = render_sarif(&findings);
        for r in [
            "cache-key-completeness",
            "session-isolation",
            "lock-discipline",
        ] {
            assert!(s.contains(&format!("{{\"id\": \"{r}\"}}")), "{r}");
            assert!(s.contains(&format!("\"ruleId\": \"{r}\"")), "{r}");
        }
    }

    #[test]
    fn sarif_empty_run_is_valid_shape() {
        let s = render_sarif(&[]);
        assert!(s.contains("\"results\": []"));
        assert!(s.contains("\"rules\": []"));
    }

    #[test]
    fn findings_render_with_summary() {
        let fs = vec![
            Finding {
                rule: "no-float-eq",
                path: "a/src/lib.rs".into(),
                line: 3,
                msg: "m".into(),
            },
            Finding {
                rule: "no-float-eq",
                path: "b/src/lib.rs".into(),
                line: 9,
                msg: "m".into(),
            },
        ];
        let r = render(&fs);
        assert!(r.contains("a/src/lib.rs:3: [no-float-eq] m"));
        assert!(r.contains("2 finding(s)"));
        assert!(r.contains("no-float-eq"));
    }
}
