//! Text rendering of audit findings (deterministic output, like
//! everything else in this workspace).

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders findings as `path:line: [rule] message` lines plus a per-rule
/// summary. Empty findings render the all-clear line.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.msg);
    }
    if findings.is_empty() {
        out.push_str("gh-audit: workspace clean (0 findings)\n");
    } else {
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in findings {
            *by_rule.entry(f.rule).or_insert(0) += 1;
        }
        let _ = writeln!(out, "\ngh-audit: {} finding(s)", findings.len());
        for (rule, n) in by_rule {
            let _ = writeln!(out, "  {rule:<38} {n}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_render() {
        assert!(render(&[]).contains("workspace clean"));
    }

    #[test]
    fn findings_render_with_summary() {
        let fs = vec![
            Finding {
                rule: "no-float-eq",
                path: "a/src/lib.rs".into(),
                line: 3,
                msg: "m".into(),
            },
            Finding {
                rule: "no-float-eq",
                path: "b/src/lib.rs".into(),
                line: 9,
                msg: "m".into(),
            },
        ];
        let r = render(&fs);
        assert!(r.contains("a/src/lib.rs:3: [no-float-eq] m"));
        assert!(r.contains("2 finding(s)"));
        assert!(r.contains("no-float-eq"));
    }
}
