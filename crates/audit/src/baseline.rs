//! Finding baselines: adopt the audit incrementally by accepting the
//! current findings and failing only on *new* ones.
//!
//! A baseline is a plain text file, one accepted finding per line, as
//! `rule<TAB>path<TAB>message`. Line numbers are deliberately omitted —
//! unrelated edits shift them, and a baseline that churns on every
//! refactor gets deleted, not maintained. Blank lines and `#` comments
//! are ignored, so the file can carry a provenance header.
//!
//! Workflow (also documented in `docs/static-analysis.md`):
//!
//! ```text
//! gh-audit --write-baseline audit-baseline.txt   # accept today's debt
//! gh-audit --deny --baseline audit-baseline.txt  # CI: new findings only
//! ```
//!
//! A finding disappearing from the workspace does not invalidate the
//! baseline (stale entries are inert); regenerate the file when paying
//! down debt so the ratchet tightens.

use crate::rules::Finding;
use std::collections::BTreeSet;

/// A set of accepted findings, keyed line-insensitively.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: BTreeSet<String>,
}

impl Baseline {
    /// The baseline key of one finding: `rule\tpath\tmsg`. Tabs cannot
    /// appear in rule names or workspace-relative paths, so the key
    /// splits unambiguously; newlines never appear in messages.
    pub fn key(f: &Finding) -> String {
        format!("{}\t{}\t{}", f.rule, f.path, f.msg)
    }

    /// Renders `findings` as baseline file content (sorted, deduped,
    /// with a self-describing header).
    pub fn render(findings: &[Finding]) -> String {
        let keys: BTreeSet<String> = findings.iter().map(Self::key).collect();
        let mut out = String::from(
            "# gh-audit baseline: accepted findings, one per line as\n\
             # rule<TAB>path<TAB>message (line numbers omitted; they drift).\n\
             # Regenerate with: gh-audit --write-baseline <this file>\n",
        );
        for k in keys {
            out.push_str(&k);
            out.push('\n');
        }
        out
    }

    /// Parses baseline file content. Unparseable lines are kept verbatim
    /// as keys (they simply never match), so a hand-edited file cannot
    /// make the audit *more* permissive than its literal entries.
    pub fn parse(text: &str) -> Baseline {
        Baseline {
            entries: text
                .lines()
                .map(str::trim_end)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect(),
        }
    }

    /// True when `f` is accepted by this baseline.
    pub fn contains(&self, f: &Finding) -> bool {
        self.entries.contains(&Self::key(f))
    }

    /// Splits findings into `(new, baselined_count)`, preserving order.
    pub fn partition(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        let total = findings.len();
        let new: Vec<Finding> = findings.into_iter().filter(|f| !self.contains(f)).collect();
        let baselined = total - new.len();
        (new, baselined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32, msg: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            msg: msg.to_string(),
        }
    }

    #[test]
    fn round_trip_accepts_same_findings_at_any_line() {
        let f = finding("no-float-eq", "crates/sim/src/lib.rs", 10, "exact compare");
        let b = Baseline::parse(&Baseline::render(std::slice::from_ref(&f)));
        assert!(b.contains(&f));
        let moved = finding("no-float-eq", "crates/sim/src/lib.rs", 99, "exact compare");
        assert!(b.contains(&moved), "keys are line-insensitive");
    }

    #[test]
    fn new_findings_pass_through() {
        let old = finding("no-float-eq", "a.rs", 1, "old");
        let new = finding("no-float-eq", "a.rs", 2, "new");
        let b = Baseline::parse(&Baseline::render(std::slice::from_ref(&old)));
        let (fresh, baselined) = b.partition(vec![old, new.clone()]);
        assert_eq!(baselined, 1);
        assert_eq!(fresh, vec![new]);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let b = Baseline::parse("# header\n\nno-float-eq\ta.rs\tmsg\n");
        assert!(b.contains(&finding("no-float-eq", "a.rs", 5, "msg")));
        assert_eq!(b.entries.len(), 1);
    }

    #[test]
    fn empty_baseline_accepts_nothing() {
        let b = Baseline::default();
        let f = finding("no-float-eq", "a.rs", 1, "m");
        assert!(!b.contains(&f));
        let (fresh, baselined) = b.partition(vec![f]);
        assert_eq!((fresh.len(), baselined), (1, 0));
    }

    #[test]
    fn render_is_sorted_and_deduped() {
        let a = finding("z-rule", "b.rs", 1, "m");
        let c = finding("a-rule", "a.rs", 1, "m");
        let dup = finding("a-rule", "a.rs", 7, "m");
        let text = Baseline::render(&[a, c, dup]);
        let body: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(body, vec!["a-rule\ta.rs\tm", "z-rule\tb.rs\tm"]);
    }
}
