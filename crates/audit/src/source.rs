//! Per-file context the rules run against: workspace-relative path, owning
//! crate, target kind (lib / test / bench / ...), token stream, allowlist
//! directives, and `#[cfg(test)]` module line ranges.

use crate::lexer::{lex, Tok};

/// What kind of compilation target a file belongs to. Rules scope
/// themselves by kind: determinism rules audit shipped simulator code, not
/// test/bench scaffolding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/**` of a workspace crate).
    Lib,
    /// Binary target (`src/main.rs`, `src/bin/**`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Benchmarks (`benches/**`).
    Bench,
    /// Examples (`examples/**`).
    Example,
    /// Build script (`build.rs`).
    Build,
}

/// One `// gh-audit: allow(rule, ...) -- reason` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule names inside `allow(...)`.
    pub rules: Vec<String>,
    /// 1-based line the suppression applies to (the directive's own line
    /// for trailing comments, the following code line for standalone
    /// comments, or `None` for `allow-file`).
    pub line: Option<u32>,
    /// Line the directive itself is written on (for diagnostics).
    pub at: u32,
    /// True when a non-empty `-- reason` was present.
    pub has_reason: bool,
}

/// A lexed, classified source file ready for rule walks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Cargo package name owning the file (e.g. `gh-mem`).
    pub crate_name: String,
    /// Target kind (see [`FileKind`]).
    pub kind: FileKind,
    /// Token stream (comments included).
    pub tokens: Vec<Tok>,
    /// Parsed allow directives.
    pub allows: Vec<AllowDirective>,
    /// 1-based inclusive line ranges of `#[cfg(test)] mod { ... }` bodies.
    pub test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Builds a source file from text; `rel_path` uses `/` separators.
    pub fn parse(rel_path: &str, crate_name: &str, kind: FileKind, text: &str) -> SourceFile {
        let tokens = lex(text);
        let allows = parse_allows(&tokens);
        let test_ranges = find_test_ranges(&tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            tokens,
            allows,
            test_ranges,
        }
    }

    /// True when `line` falls inside a `#[cfg(test)]` module.
    pub fn in_test_mod(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// True when a rule is suppressed at `line` by an allow directive (or
    /// file-wide by `allow-file`).
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.rules.iter().any(|r| r == rule) && (a.line.is_none() || a.line == Some(line))
        })
    }

    /// Iterator over non-comment tokens with their indices in
    /// `self.tokens` (most rules match on code tokens only).
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Tok)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
    }
}

/// Extracts `gh-audit:` directives from comment tokens.
///
/// Grammar (inside any `//` or `/* */` comment):
/// `gh-audit: allow(rule1, rule2) -- reason`      suppress on this line, or
///                                                 the next code line when
///                                                 the comment stands alone
/// `gh-audit: allow-file(rule) -- reason`          suppress for whole file
fn parse_allows(tokens: &[Tok]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (idx, t) in tokens.iter().enumerate() {
        if !t.is_comment() || !t.text.contains("gh-audit:") {
            continue;
        }
        // Doc comments describe the directive syntax; only plain comments
        // carry live directives.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|d| t.text.starts_with(d))
        {
            continue;
        }
        let Some(d) = parse_directive_text(&t.text) else {
            // Malformed directive: recorded with no rules; the engine
            // reports it through the `allow-syntax` meta rule.
            out.push(AllowDirective {
                rules: Vec::new(),
                line: Some(t.line),
                at: t.line,
                has_reason: false,
            });
            continue;
        };
        let line = if d.file_wide {
            None
        } else if tokens[..idx]
            .iter()
            .any(|p| !p.is_comment() && p.line == t.line)
        {
            // Trailing comment: suppress on its own line.
            Some(t.line)
        } else {
            // Standalone comment: suppress on the next line that has code.
            tokens[idx + 1..]
                .iter()
                .find(|n| !n.is_comment())
                .map(|n| n.line)
                .or(Some(t.line))
        };
        out.push(AllowDirective {
            rules: d.rules,
            line,
            at: t.line,
            has_reason: d.has_reason,
        });
    }
    out
}

struct ParsedDirective {
    rules: Vec<String>,
    file_wide: bool,
    has_reason: bool,
}

fn parse_directive_text(comment: &str) -> Option<ParsedDirective> {
    let rest = comment.split("gh-audit:").nth(1)?.trim_start();
    let (file_wide, rest) = match rest.strip_prefix("allow-file") {
        Some(r) => (true, r),
        None => (false, rest.strip_prefix("allow")?),
    };
    // `(rule, rule, ...)` — whitespace anywhere around names and commas is
    // fine; the close paren splits the rule list from the reason.
    let inner = rest.trim_start().strip_prefix('(')?;
    let (inner, after) = inner.split_once(')')?;
    let rules: Vec<String> = inner
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let has_reason = after
        .split_once("--")
        .map(|(_, r)| !r.trim().trim_end_matches("*/").trim().is_empty())
        .unwrap_or(false);
    Some(ParsedDirective {
        rules,
        file_wide,
        has_reason,
    })
}

/// Finds `#[cfg(test)] mod name { ... }` bodies and returns their line
/// ranges. Attribute and mod may be separated by other attributes or doc
/// comments.
fn find_test_ranges(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let code: Vec<(usize, &Tok)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 6 < code.len() {
        let w = &code[i..];
        let is_cfg_test = w[0].1.is_punct("#")
            && w[1].1.is_punct("[")
            && w[2].1.is_ident("cfg")
            && w[3].1.is_punct("(")
            && w[4].1.is_ident("test")
            && w[5].1.is_punct(")")
            && w[6].1.is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Scan forward past further attributes to the item; only `mod`
        // bodies get a range (a cfg(test) `use` has no body to skip).
        let mut j = i + 7;
        while j < code.len() && code[j].1.is_punct("#") {
            // Skip a balanced `[...]` attribute.
            let mut depth = 0i32;
            j += 1;
            while j < code.len() {
                if code[j].1.is_punct("[") {
                    depth += 1;
                } else if code[j].1.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if j + 2 < code.len() && code[j].1.is_ident("mod") {
            // Find the opening brace, then its match.
            let mut k = j + 1;
            while k < code.len() && !code[k].1.is_punct("{") {
                k += 1;
            }
            if k < code.len() {
                let start_line = code[i].1.line;
                let mut depth = 0i32;
                let mut end_line = code[k].1.line;
                while k < code.len() {
                    if code[k].1.is_punct("{") {
                        depth += 1;
                    } else if code[k].1.is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            end_line = code[k].1.line;
                            break;
                        }
                    }
                    end_line = code[k].1.line;
                    k += 1;
                }
                out.push((start_line, end_line));
                i = k.max(i + 1);
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(text: &str) -> SourceFile {
        SourceFile::parse("x/src/lib.rs", "x", FileKind::Lib, text)
    }

    #[test]
    fn trailing_allow_applies_to_its_own_line() {
        let f = sf("let a = m.iter(); // gh-audit: allow(no-unordered-iteration) -- commutative\nlet b = 1;\n");
        assert!(f.is_allowed("no-unordered-iteration", 1));
        assert!(!f.is_allowed("no-unordered-iteration", 2));
        assert!(!f.is_allowed("no-wall-clock", 1));
    }

    #[test]
    fn standalone_allow_applies_to_next_code_line() {
        let f = sf(
            "// gh-audit: allow(no-float-eq) -- sentinel compare\n// more prose\nif x == 0.0 {}\n",
        );
        assert!(f.is_allowed("no-float-eq", 3));
        assert!(!f.is_allowed("no-float-eq", 1));
    }

    #[test]
    fn allow_file_applies_everywhere() {
        let f = sf(
            "// gh-audit: allow-file(no-unwrap-in-lib) -- harness code\nfn f() { x.unwrap(); }\n",
        );
        assert!(f.is_allowed("no-unwrap-in-lib", 2));
        assert!(f.is_allowed("no-unwrap-in-lib", 999));
    }

    #[test]
    fn directive_without_reason_is_flagged_not_honored() {
        let f = sf("// gh-audit: allow(no-float-eq)\nif x == 0.0 {}\n");
        assert!(f.is_allowed("no-float-eq", 2), "still suppresses");
        assert!(!f.allows[0].has_reason, "but engine reports allow-syntax");
    }

    #[test]
    fn multi_rule_allow() {
        let f = sf("x(); // gh-audit: allow(a, b) -- both\n");
        assert!(f.is_allowed("a", 1) && f.is_allowed("b", 1));
    }

    #[test]
    fn multi_rule_allow_file() {
        let f = sf("// gh-audit: allow-file(a, b) -- harness\nfn f() {}\n");
        assert!(f.is_allowed("a", 999) && f.is_allowed("b", 999));
        assert!(f.allows[0].has_reason);
    }

    #[test]
    fn whitespace_in_rule_list_is_tolerated() {
        let f = sf("x(); // gh-audit: allow( a ,  b ) -- spaced\n");
        assert!(f.is_allowed("a", 1) && f.is_allowed("b", 1));
        assert!(f.allows[0].has_reason);
    }

    #[test]
    fn empty_parens_are_malformed() {
        let f = sf("x(); // gh-audit: allow() -- why\n");
        assert_eq!(f.allows.len(), 1);
        assert!(f.allows[0].rules.is_empty(), "recorded for allow-syntax");
    }

    #[test]
    fn missing_close_paren_is_malformed() {
        let f = sf("x(); // gh-audit: allow(a -- why\n");
        assert_eq!(f.allows.len(), 1);
        assert!(f.allows[0].rules.is_empty());
    }

    #[test]
    fn empty_reason_after_dashes_counts_as_missing() {
        let f = sf("x(); // gh-audit: allow(a) --\n");
        assert!(f.is_allowed("a", 1), "still suppresses");
        assert!(!f.allows[0].has_reason);
    }

    #[test]
    fn reason_containing_dashes_is_fine() {
        let f = sf("x(); // gh-audit: allow(a) -- see ADR-7 -- revisit\n");
        assert!(f.allows[0].has_reason);
    }

    #[test]
    fn block_comment_directive_reason_strips_terminator() {
        let f = sf("x(); /* gh-audit: allow(a) -- */\n");
        assert!(!f.allows[0].has_reason, "`*/` alone is not a reason");
    }

    #[test]
    fn cfg_test_module_range() {
        let src = "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = sf(src);
        assert_eq!(f.test_ranges.len(), 1);
        assert!(f.in_test_mod(5));
        assert!(!f.in_test_mod(1));
        assert!(!f.in_test_mod(7));
    }
}
