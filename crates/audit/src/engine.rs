//! Workspace walker and rule driver: discovers source files, classifies
//! them, runs every token rule and workspace flow rule, applies allow
//! directives, and reports malformed directives.

use crate::resolve::Workspace;
use crate::rules::{self, trace_coverage, Finding};
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Name of the meta rule that reports malformed allow directives.
pub const ALLOW_SYNTAX: &str = "allow-syntax";

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Workspace root (directory holding the root `Cargo.toml`).
    pub root: PathBuf,
    /// When non-empty, only these rules report findings.
    pub only_rules: BTreeSet<String>,
}

impl AuditConfig {
    /// Audits the workspace rooted at `root` with all rules enabled.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        AuditConfig {
            root: root.into(),
            only_rules: BTreeSet::new(),
        }
    }
}

/// An engine failure (I/O with path context — rule findings are not
/// errors).
#[derive(Debug)]
pub struct AuditError {
    /// Path that failed.
    pub path: PathBuf,
    /// Underlying I/O error.
    pub source: std::io::Error,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gh-audit: {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for AuditError {}

fn io_err(path: &Path, source: std::io::Error) -> AuditError {
    AuditError {
        path: path.to_path_buf(),
        source,
    }
}

/// Runs the full audit and returns findings sorted by path, line, rule.
pub fn audit_workspace(cfg: &AuditConfig) -> Result<Vec<Finding>, AuditError> {
    audit_workspace_with_stats(cfg).map(|(findings, _)| findings)
}

/// Audit statistics alongside the findings (for CI telemetry).
#[derive(Debug, Clone, Copy)]
pub struct AuditStats {
    /// Number of source files collected and scanned. Fixture trees under
    /// a `tests/fixtures/` directory are never collected, so seeded
    /// violations can neither fire nor inflate this count.
    pub files_scanned: usize,
    /// Iterations the interprocedural summary fixpoint took to converge
    /// (see [`crate::summary`]); a jump here means deeper call chains or
    /// a cycle getting close to the iteration cap.
    pub summary_iterations: usize,
}

/// Like [`audit_workspace`], also reporting scan statistics.
pub fn audit_workspace_with_stats(
    cfg: &AuditConfig,
) -> Result<(Vec<Finding>, AuditStats), AuditError> {
    let files = collect_files(&cfg.root)?;
    let mut findings = Vec::new();
    let per_file_rules = rules::all_rules();
    for f in &files {
        for rule in &per_file_rules {
            rule.check_file(f, &mut findings);
        }
    }
    trace_coverage::check_workspace(&files, &mut findings);
    let ws = Workspace::build(&files);
    for rule in rules::flow_rules() {
        rule.check_workspace(&ws, &mut findings);
    }
    // Allow filtering (trace-coverage findings are suppressible at the use
    // site like any other), then malformed-directive reporting.
    findings.retain(|f| {
        let file = files.iter().find(|s| s.rel_path == f.path);
        !file.map(|s| s.is_allowed(f.rule, f.line)).unwrap_or(false)
    });
    let known: BTreeSet<&str> = rules::rule_names().into_iter().collect();
    for f in &files {
        for a in &f.allows {
            // A directive can be wrong in several ways at once (reasonless
            // AND naming unknown rules); report each problem, not just the
            // first.
            let mut msgs = Vec::new();
            if a.rules.is_empty() {
                msgs.push(
                    "malformed gh-audit directive; expected `gh-audit: allow(<rule>) -- <reason>`"
                        .to_string(),
                );
            } else {
                if !a.has_reason {
                    msgs.push(format!(
                        "allow({}) has no `-- <reason>`; suppressions must say why",
                        a.rules.join(", ")
                    ));
                }
                for r in a.rules.iter().filter(|r| !known.contains(r.as_str())) {
                    msgs.push(format!("allow names unknown rule `{r}`"));
                }
            }
            for msg in msgs {
                findings.push(Finding {
                    rule: ALLOW_SYNTAX,
                    path: f.rel_path.clone(),
                    line: a.at,
                    msg,
                });
            }
        }
    }
    if !cfg.only_rules.is_empty() {
        findings.retain(|f| cfg.only_rules.contains(f.rule));
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    // The dataflow driver runs loop bodies twice, so flow rules can report
    // the same finding twice; drop exact duplicates post-sort.
    findings.dedup();
    let stats = AuditStats {
        files_scanned: files.len(),
        summary_iterations: ws.summaries.iterations,
    };
    Ok((findings, stats))
}

/// Discovers and parses every auditable `.rs` file under the workspace.
///
/// Skipped on purpose: `target/` (build output), `shims/` (vendored
/// stand-ins for external crates — not our code to lint), hidden dirs,
/// and the audit crate's own `tests/fixtures/` (seeded violations).
pub fn collect_files(root: &Path) -> Result<Vec<SourceFile>, AuditError> {
    let mut out = Vec::new();
    // Root package.
    let root_pkg = package_name(&root.join("Cargo.toml")).unwrap_or_else(|| "root".to_string());
    collect_package(root, root, &root_pkg, &mut out)?;
    // Member crates under crates/.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for dir in sorted_dirs(&crates_dir)? {
            let name = package_name(&dir.join("Cargo.toml")).unwrap_or_else(|| {
                dir.file_name()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default()
            });
            collect_package(root, &dir, &name, &mut out)?;
        }
    }
    Ok(out)
}

/// Collects the standard target dirs of one package rooted at `pkg`.
fn collect_package(
    root: &Path,
    pkg: &Path,
    name: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), AuditError> {
    for (sub, kind) in [
        ("src", FileKind::Lib),
        ("tests", FileKind::Test),
        ("benches", FileKind::Bench),
        ("examples", FileKind::Example),
    ] {
        let dir = pkg.join(sub);
        if dir.is_dir() {
            collect_rs(root, &dir, name, kind, out)?;
        }
    }
    let build = pkg.join("build.rs");
    if build.is_file() {
        out.push(parse_one(root, &build, name, FileKind::Build)?);
    }
    Ok(())
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> Result<(), AuditError> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| io_err(dir, e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let fname = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        if fname.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            // Fixture trees are skipped only under `tests/`: those hold
            // seeded violations for the audit's own tests. A `src/`
            // module that happens to be named `fixtures` is real code
            // and stays in scope (and in the stats line's file count).
            if fname == "target" || (fname == "fixtures" && kind == FileKind::Test) {
                continue;
            }
            let sub_kind = if fname == "bin" && kind == FileKind::Lib {
                FileKind::Bin
            } else {
                kind
            };
            collect_rs(root, &path, crate_name, sub_kind, out)?;
        } else if fname.ends_with(".rs") {
            let file_kind = if kind == FileKind::Lib && fname == "main.rs" {
                FileKind::Bin
            } else {
                kind
            };
            out.push(parse_one(root, &path, crate_name, file_kind)?);
        }
    }
    Ok(())
}

fn parse_one(
    root: &Path,
    path: &Path,
    crate_name: &str,
    kind: FileKind,
) -> Result<SourceFile, AuditError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(SourceFile::parse(&rel, crate_name, kind, &text))
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| io_err(dir, e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Extracts `name = "..."` from a `[package]` section (line-oriented; the
/// workspace's manifests are all simple).
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_simple_manifest() {
        let dir = std::env::temp_dir().join("gh-audit-test-manifest");
        fs::create_dir_all(&dir).expect("tempdir");
        let p = dir.join("Cargo.toml");
        fs::write(
            &p,
            "[package]\nname = \"gh-example\"\nversion = \"0.1.0\"\n",
        )
        .expect("write");
        assert_eq!(package_name(&p).as_deref(), Some("gh-example"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fixtures_are_skipped_under_tests_but_not_under_src() {
        let dir = std::env::temp_dir().join("gh-audit-test-fixture-scope");
        let _ = fs::remove_dir_all(&dir);
        for sub in ["src/fixtures", "tests/fixtures"] {
            fs::create_dir_all(dir.join(sub)).expect("tempdir");
        }
        fs::write(
            dir.join("Cargo.toml"),
            "[package]\nname = \"gh-scope\"\nversion = \"0.0.0\"\n",
        )
        .expect("write");
        fs::write(dir.join("src/lib.rs"), "pub mod fixtures;\n").expect("write");
        fs::write(dir.join("src/fixtures/mod.rs"), "pub fn real() {}\n").expect("write");
        fs::write(dir.join("tests/smoke.rs"), "#[test]\nfn t() {}\n").expect("write");
        fs::write(
            dir.join("tests/fixtures/seeded.rs"),
            "pub fn planted() { f64::NAN == 0.0; }\n",
        )
        .expect("write");
        let files = collect_files(&dir).expect("collect");
        let paths: Vec<&str> = files.iter().map(|f| f.rel_path.as_str()).collect();
        assert!(
            paths.contains(&"src/fixtures/mod.rs"),
            "src modules named fixtures are real code: {paths:?}"
        );
        assert!(
            paths.contains(&"tests/smoke.rs"),
            "ordinary tests stay in scope: {paths:?}"
        );
        assert!(
            !paths.iter().any(|p| p.starts_with("tests/fixtures/")),
            "seeded fixture trees must not be scanned: {paths:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn real_fixture_trees_are_outside_audit_scope() {
        // The engine auditing this very workspace must not pick up the
        // seeded/clean twins (which would both fire rules and pad the
        // stats line's file count).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_files(&root).expect("collect");
        assert!(
            files
                .iter()
                .all(|f| !f.rel_path.contains("tests/fixtures/")),
            "fixture files leaked into the audit scope"
        );
    }

    #[test]
    fn workspace_manifest_without_package_yields_none() {
        let dir = std::env::temp_dir().join("gh-audit-test-manifest-ws");
        fs::create_dir_all(&dir).expect("tempdir");
        let p = dir.join("Cargo.toml");
        fs::write(&p, "[workspace]\nmembers = [\"a\"]\n").expect("write");
        assert_eq!(package_name(&p), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
