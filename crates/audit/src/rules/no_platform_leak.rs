//! `no-platform-leak`: experiment layers must not name backend
//! cost-model types.
//!
//! The platform seam (`gh_sim::platform`) exists so that apps, benches,
//! the replay/advisor layer, the CLI and the integration tests work
//! against *any* registered backend. A single direct mention of
//! `CostParams`, `RuntimeOptions` or `Machine::default_gh200` outside
//! the backend layer hard-codes GH200 assumptions and silently excludes
//! every other platform from that experiment. Callers build machines
//! through `Platform::machine_cfg` / `machine_tweaked` instead; the
//! tweak closure's parameter type is inferred, so even parameter sweeps
//! never spell the banned names.
//!
//! The backend layer itself is exempt: the cost-model crates (`gh-mem`,
//! `gh-cuda`, `gh-os` — identified by path, `crates/mem/` etc.), the
//! platform implementations under `crates/core/src/platform/`, and the
//! `Machine` facade that adapts them. Tests and benches are *not*
//! exempt — they are experiment layers too.

use crate::rules::{Finding, Rule};
use crate::source::SourceFile;

/// Identifiers that belong to the backend layer only.
const BANNED: [&str; 3] = ["CostParams", "RuntimeOptions", "default_gh200"];

/// Path prefixes of the backend layer (workspace-relative).
const ALLOWED_PREFIXES: [&str; 4] = [
    "crates/mem/",
    "crates/cuda/",
    "crates/os/",
    "crates/core/src/platform",
];

/// Individual backend-layer files.
const ALLOWED_FILES: [&str; 1] = ["crates/core/src/machine.rs"];

/// See module docs.
#[derive(Debug)]
pub struct PlatformLeak;

impl Rule for PlatformLeak {
    fn name(&self) -> &'static str {
        "no-platform-leak"
    }

    fn describe(&self) -> &'static str {
        "experiment layers must build machines via gh_sim::platform, never backend cost types"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let path = file.rel_path.as_str();
        if ALLOWED_PREFIXES.iter().any(|p| path.starts_with(p)) || ALLOWED_FILES.contains(&path) {
            return;
        }
        for (_, t) in file.code_tokens() {
            if BANNED.iter().any(|b| t.is_ident(b)) {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    msg: format!(
                        "`{}` is a platform-backend identifier; build machines through \
                         gh_sim::platform (machine_cfg / machine_tweaked) so the \
                         experiment works on every registered backend",
                        t.text
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn run(path: &str, kind: FileKind, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(path, "c", kind, src);
        let mut out = Vec::new();
        PlatformLeak.check_file(&f, &mut out);
        out
    }

    #[test]
    fn cost_params_in_bench_fires() {
        let out = run(
            "crates/bench/src/util.rs",
            FileKind::Lib,
            "let p = CostParams::default();",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "no-platform-leak");
        assert!(out[0].msg.contains("machine_cfg"), "{}", out[0].msg);
    }

    #[test]
    fn default_gh200_in_root_test_fires() {
        let out = run(
            "tests/determinism.rs",
            FileKind::Test,
            "let m = Machine::default_gh200();",
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn runtime_options_in_example_fires() {
        let out = run(
            "examples/quickstart.rs",
            FileKind::Example,
            "let o = RuntimeOptions::default();",
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn test_mods_are_not_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let p = CostParams::default(); }\n}\n";
        assert_eq!(run("crates/apps/src/lib.rs", FileKind::Lib, src).len(), 1);
    }

    #[test]
    fn backend_layer_is_exempt() {
        for path in [
            "crates/mem/src/params.rs",
            "crates/cuda/src/runtime.rs",
            "crates/os/src/lib.rs",
            "crates/core/src/platform/gh200.rs",
            "crates/core/src/machine.rs",
        ] {
            let out = run(path, FileKind::Lib, "pub struct CostParams;");
            assert!(out.is_empty(), "{path} must be exempt");
        }
    }

    #[test]
    fn banned_words_in_strings_and_comments_are_fine() {
        let src = "// CostParams is banned here\nlet s = \"RuntimeOptions\";";
        assert!(run("crates/bench/src/util.rs", FileKind::Lib, src).is_empty());
    }

    #[test]
    fn platform_api_usage_is_fine() {
        let src = "let m = platform::gh200().machine_cfg(&cfg).unwrap();";
        assert!(run("crates/bench/src/util.rs", FileKind::Lib, src).is_empty());
    }
}
