//! `no-float-eq`: cost-model code must not compare floats with `==`/`!=`.
//!
//! Bandwidths, efficiencies, and utilization ratios flow through `f64`
//! (bytes ÷ GB/s). Exact float comparison is almost always a latent bug:
//! two mathematically equal cost expressions can differ in the last ulp
//! depending on evaluation order, so an `==` silently turns a model
//! decision into a platform/codegen coin flip — a determinism *and*
//! correctness hazard. Compare against an epsilon, restructure on integer
//! state, or allow the rare intentional exact-sentinel compare with a
//! reason.
//!
//! Detection: `==`/`!=` with a float literal on either side, or where the
//! adjacent identifier is float-annotated in this file (`: f64`, `: f32`).

use crate::rules::{Finding, Rule};
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeSet;

/// See module docs.
#[derive(Debug)]
pub struct FloatEq;

impl Rule for FloatEq {
    fn name(&self) -> &'static str {
        "no-float-eq"
    }

    fn describe(&self) -> &'static str {
        "no ==/!= on floating-point values in cost-model code"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
            return;
        }
        let code: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
        let float_idents = float_bound_idents(&code);
        for (i, t) in code.iter().enumerate() {
            if !(t.is_punct("==") || t.is_punct("!=")) || file.in_test_mod(t.line) {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| code[p]);
            let next = code.get(i + 1).copied();
            let lit = |tok: &Option<&crate::lexer::Tok>| {
                tok.map(|t| t.kind == crate::lexer::TokKind::Float)
                    .unwrap_or(false)
            };
            let bound = |tok: &Option<&crate::lexer::Tok>| {
                tok.map(|t| {
                    t.kind == crate::lexer::TokKind::Ident && float_idents.contains(t.text.as_str())
                })
                .unwrap_or(false)
            };
            // A float literal on either side is conclusive. Ident-only
            // matches need BOTH sides float-annotated: the ident table is
            // file-wide, so one `v: f64` must not taint an integer `v == 0`
            // in another function.
            if lit(&prev) || lit(&next) || (bound(&prev) && bound(&next)) {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    msg: format!(
                        "float `{}` comparison is exact to the last ulp and breaks under \
                         reordering; compare with an epsilon or restructure on integer state",
                        t.text
                    ),
                });
            }
        }
    }
}

/// Identifiers annotated `: f64` / `: f32` anywhere in the file.
fn float_bound_idents<'a>(code: &[&'a crate::lexer::Tok]) -> BTreeSet<&'a str> {
    let mut out = BTreeSet::new();
    for i in 2..code.len() {
        if (code[i].is_ident("f64") || code[i].is_ident("f32"))
            && code[i - 1].is_punct(":")
            && code[i - 2].kind == crate::lexer::TokKind::Ident
        {
            out.insert(code[i - 2].text.as_str());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("c/src/lib.rs", "c", FileKind::Lib, src);
        let mut out = Vec::new();
        FloatEq.check_file(&f, &mut out);
        out
    }

    #[test]
    fn literal_compare_fires() {
        assert_eq!(run("fn f(x: u64) { if ratio == 0.0 {} }").len(), 1);
        assert_eq!(run("fn f() { if 1.5 != y {} }").len(), 1);
    }

    #[test]
    fn annotated_ident_compare_fires() {
        assert_eq!(run("fn f(bw: f64, x: f64) { if bw == x {} }").len(), 1);
    }

    #[test]
    fn integer_compares_are_fine() {
        assert!(run("fn f(a: u64, b: u64) { if a == b || a != 0 {} }").is_empty());
    }

    #[test]
    fn shadowed_integer_ident_is_not_tainted_by_float_binding() {
        // `v: f64` in one fn must not flag `v == 0` (u64) in another.
        let src = "fn g(v: f64) -> f64 { v } fn f(v: u64) -> bool { v == 0 }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn tuple_field_integer_compare_is_fine() {
        assert!(run("fn f(slot: (u64, u64), line: u64) { if slot.0 == line {} }").is_empty());
    }

    #[test]
    fn test_mod_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { assert!(x == 0.0); } }";
        assert!(run(src).is_empty());
    }
}
