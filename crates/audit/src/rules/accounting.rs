//! `no-unchecked-accounting-arithmetic`: byte/page/cycle accounting in the
//! model crates must not use raw compound arithmetic.
//!
//! The paper's results *are* these accumulators: fault counts × per-fault
//! cost, migrated bytes ÷ C2C bandwidth, PTE teardown counts. In release
//! builds raw `+=`/`-=`/`*=` wraps silently on overflow/underflow; one
//! wrapped `bytes_migrated` invalidates a whole figure without failing a
//! single test (debug builds would panic, but CI benches and users run
//! `--release`). Accounting sites must use `saturating_add`/`_sub`/`_mul`
//! (or `checked_*` with explicit handling), which keeps totals pinned at
//! the rail instead of wrapping — and makes overflow visible as an
//! impossibly large, *stable* number rather than a random small one.
//!
//! Scope: lib sources of the model crates (`gh-mem`, `gh-os`, `gh-cuda`).
//! A compound assignment is flagged when the assigned place's final field
//! name matches the accounting vocabulary below (bytes, pages, faults,
//! costs, ...); loop indices and scratch variables are not accounting
//! state and stay idiomatic.
//!
//! Exemption: places declared with a `gh-units` newtype (`Bytes`, `Pages`,
//! `Lines`, `SimNs`, `Vpn`, `BwGiBs`). Their `+=`/`-=`/`*` operators are
//! saturating *by construction* (see `crates/units`), so compound
//! assignment on them is exactly the checked arithmetic this rule wants.
//! The file's declarations (`field: Bytes`, `x: [Pages; 2]`,
//! `let mut n = Lines::ZERO`) are scanned to learn which identifiers are
//! unit-typed.

use crate::rules::{Finding, Rule};
use crate::source::{FileKind, SourceFile};
use std::collections::HashSet;

/// Crates whose lib sources carry accounting state.
pub const ACCOUNTING_CRATES: [&str; 3] = ["gh-mem", "gh-os", "gh-cuda"];

/// Substrings of identifier names that denote accounting state.
const ACCT_SUBSTRINGS: [&str; 24] = [
    "byte", "page", "pte", "fault", "miss", "hit", "cost", "cycl", "notif", "evict", "hbm", "c2c",
    "l1l2", "walk", "total", "freed", "migrated", "used", "serviced", "xfer", "busy", "lines",
    "created", "removed",
];

/// Exact identifier names that denote accounting state (too short or too
/// generic for substring matching).
const ACCT_EXACT: [&str; 5] = ["dt", "tick", "dur", "pages", "bytes"];

/// True when `ident` names accounting state.
pub fn is_accounting_ident(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    ACCT_EXACT.iter().any(|e| *e == lower) || ACCT_SUBSTRINGS.iter().any(|s| lower.contains(s))
}

/// The `gh-units` newtypes whose arithmetic saturates by construction.
pub const UNIT_TYPES: [&str; 6] = ["Bytes", "Pages", "Lines", "SimNs", "Vpn", "BwGiBs"];

/// Scans a file's declarations for identifiers bound to a `gh-units`
/// newtype: struct fields and parameters (`name: Bytes`, `name: [Pages; 2]`)
/// and let bindings whose initializer calls into a unit type
/// (`let mut freed = Bytes::ZERO`, `let pages = gh_units::Pages::new(1)`).
fn unit_typed_idents(code: &[&crate::lexer::Tok]) -> HashSet<String> {
    use crate::lexer::TokKind;
    let mut set = HashSet::new();
    for i in 0..code.len() {
        if code[i].kind != TokKind::Ident {
            continue;
        }
        // `name: [&] [[]path::]Unit` — fields, params, typed lets.
        if i + 2 < code.len() && code[i + 1].is_punct(":") {
            let mut j = i + 2;
            while j < code.len()
                && (code[j].is_punct("[") || code[j].is_punct("&") || code[j].is_ident("mut"))
            {
                j += 1;
            }
            let mut last = None;
            while j < code.len() && code[j].kind == TokKind::Ident {
                last = Some(code[j].text.as_str());
                if j + 1 < code.len() && code[j + 1].is_punct("::") {
                    j += 2;
                } else {
                    break;
                }
            }
            if last.is_some_and(|t| UNIT_TYPES.contains(&t)) {
                set.insert(code[i].text.clone());
            }
        }
        // `let [mut] name = ... Unit:: ... ;`
        if code[i].is_ident("let") {
            let mut j = i + 1;
            if j < code.len() && code[j].is_ident("mut") {
                j += 1;
            }
            if j + 1 < code.len() && code[j].kind == TokKind::Ident && code[j + 1].is_punct("=") {
                let name = code[j].text.as_str();
                let mut k = j + 2;
                while k < code.len() && !code[k].is_punct(";") {
                    if code[k].kind == TokKind::Ident
                        && UNIT_TYPES.contains(&code[k].text.as_str())
                        && k + 1 < code.len()
                        && code[k + 1].is_punct("::")
                    {
                        set.insert(name.to_string());
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    set
}

/// See module docs.
#[derive(Debug)]
pub struct UncheckedAccounting;

impl Rule for UncheckedAccounting {
    fn name(&self) -> &'static str {
        "no-unchecked-accounting-arithmetic"
    }

    fn describe(&self) -> &'static str {
        "accounting accumulators in gh-mem/gh-os/gh-cuda must use saturating/checked math"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib || !ACCOUNTING_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let code: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
        let unit_typed = unit_typed_idents(&code);
        for (i, t) in code.iter().enumerate() {
            let op = match t.text.as_str() {
                "+=" | "-=" | "*=" if t.kind == crate::lexer::TokKind::Punct => &t.text,
                _ => continue,
            };
            if file.in_test_mod(t.line) {
                continue;
            }
            let Some(subject) = assigned_place_ident(&code[..i]) else {
                continue;
            };
            if !is_accounting_ident(subject) {
                continue;
            }
            // Declared as a gh-units newtype: its compound assignment is
            // saturating by construction — exactly what this rule asks for.
            if unit_typed.contains(subject) {
                continue;
            }
            let helper = match op.as_str() {
                "+=" => "saturating_add",
                "-=" => "saturating_sub",
                _ => "saturating_mul",
            };
            out.push(Finding {
                rule: self.name(),
                path: file.rel_path.clone(),
                line: t.line,
                msg: format!(
                    "`{subject} {op} ...` is accounting arithmetic that wraps on overflow in \
                     release builds; write `{subject} = {subject}.{helper}(...)` so totals \
                     saturate instead of corrupting results"
                ),
            });
        }
    }
}

/// Walks backwards over the assigned place (`self.used[node.idx()]`,
/// `row.cpu_faults`, `cost`) and returns its final field/variable name.
fn assigned_place_ident<'a>(before: &[&'a crate::lexer::Tok]) -> Option<&'a str> {
    let mut j = before.len();
    // Skip one trailing index/call group: `[ ... ]` or `( ... )`.
    if j > 0 && (before[j - 1].is_punct("]") || before[j - 1].is_punct(")")) {
        let (close, open) = if before[j - 1].is_punct("]") {
            ("]", "[")
        } else {
            (")", "(")
        };
        let mut depth = 0i32;
        while j > 0 {
            j -= 1;
            if before[j].is_punct(close) {
                depth += 1;
            } else if before[j].is_punct(open) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }
    while j > 0 {
        let t = before[j - 1];
        if t.kind == crate::lexer::TokKind::Ident {
            return Some(&t.text);
        }
        // `*cost += n` deref or grouping parens: keep walking left.
        if t.is_punct("*") || t.is_punct(")") || t.is_punct("(") {
            j -= 1;
            continue;
        }
        return None;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(crate_name: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("c/src/lib.rs", crate_name, FileKind::Lib, src);
        let mut out = Vec::new();
        UncheckedAccounting.check_file(&f, &mut out);
        out
    }

    #[test]
    fn byte_accumulator_fires() {
        let out = run("gh-mem", "fn f(s: &mut S, n: u64) { s.bytes_h2d += n; }");
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("saturating_add"));
    }

    #[test]
    fn indexed_place_fires() {
        let out = run(
            "gh-mem",
            "fn f(s: &mut S, b: u64) { s.used[node.idx()] -= b; }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("saturating_sub"));
    }

    #[test]
    fn deref_place_fires() {
        assert_eq!(
            run("gh-os", "fn f(cost: &mut u64) { *cost += 1; }").len(),
            1
        );
    }

    #[test]
    fn loop_index_is_fine() {
        assert!(run("gh-cuda", "fn f() { let mut idx = 0; idx += 1; }").is_empty());
    }

    #[test]
    fn saturating_form_is_fine() {
        assert!(run(
            "gh-mem",
            "fn f(s: &mut S, n: u64) { s.bytes = s.bytes.saturating_add(n); }"
        )
        .is_empty());
    }

    #[test]
    fn unit_typed_field_is_fine() {
        assert!(run(
            "gh-mem",
            "struct S { bytes_h2d: Bytes }\nfn f(s: &mut S, n: Bytes) { s.bytes_h2d += n; }"
        )
        .is_empty());
    }

    #[test]
    fn unit_typed_array_field_is_fine() {
        assert!(run(
            "gh-mem",
            "struct P { used: [Bytes; 2] }\nfn f(p: &mut P, b: Bytes) { p.used[0] += b; }"
        )
        .is_empty());
    }

    #[test]
    fn unit_typed_let_binding_is_fine() {
        assert!(run(
            "gh-os",
            "fn f() { let mut pages = gh_units::Pages::ZERO; pages += gh_units::Pages::new(1); }"
        )
        .is_empty());
    }

    #[test]
    fn raw_u64_still_fires_next_to_unit_decl() {
        let out = run(
            "gh-cuda",
            "struct S { lines: Lines }\nfn f(s: &mut S, raw_bytes: u64, n: u64) { s.lines += Lines::new(1); let mut bytes = raw_bytes; bytes += n; }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn unit_vocabulary_scan() {
        let f = SourceFile::parse(
            "c/src/lib.rs",
            "gh-mem",
            FileKind::Lib,
            "struct S { a: Bytes, b: [Pages; 2], c: u64 }\nfn f(d: gh_units::Lines) { let mut e = SimNs::ZERO; let g = 0u64; }",
        );
        let code: Vec<_> = f.code_tokens().map(|(_, t)| t).collect();
        let set = unit_typed_idents(&code);
        for name in ["a", "b", "d", "e"] {
            assert!(set.contains(name), "{name} should be unit-typed");
        }
        for name in ["c", "g"] {
            assert!(!set.contains(name), "{name} should not be unit-typed");
        }
    }

    #[test]
    fn non_model_crates_are_exempt() {
        assert!(run("gh-apps", "fn f(s: &mut S) { s.bytes += 1; }").is_empty());
    }

    #[test]
    fn acct_vocabulary() {
        assert!(is_accounting_ident("bytes_migrated_in"));
        assert!(is_accounting_ident("cpu_faults"));
        assert!(is_accounting_ident("dt"));
        assert!(is_accounting_ident("total_notifications"));
        assert!(!is_accounting_ident("idx"));
        assert!(!is_accounting_ident("next_buf"));
        assert!(!is_accounting_ident("va_cursor"));
    }
}
