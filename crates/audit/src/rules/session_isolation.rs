//! `session-isolation`: no session handle may escape its session.
//!
//! PR 9's determinism story is that every run owns a private
//! `SessionCtx` — a `Bus`, a `Perf`, and `Rc`-shared model state — so
//! concurrent jobs on the worker pool cannot observe each other. The
//! compiler enforces part of this (`Rc` is `!Send`), but only at the
//! real `std::thread` boundary: a handle smuggled into a pool-task
//! closure that happens to run on the submitting thread, stashed in a
//! `static`, or stored into *another* session's context would
//! type-check in several near-miss designs and corrupt isolation
//! silently. This rule closes the three escape hatches:
//!
//! 1. **pool-closure captures** — a closure passed to a spawn-like
//!    method must not reference a handle-typed variable bound outside
//!    the closure. Constructing a fresh session *inside* the task (the
//!    sanctioned `run_job` pattern) stays silent.
//! 2. **statics** — no `static` item of handle type (token-level,
//!    since the parser skips `static` items).
//! 3. **cross-session stores** — `a.bus = h` where `h` originates from
//!    a different session variable than `a` hands one session's handle
//!    to another.
//!
//! Handle-ness is resolved via [`crate::resolve`]: parameter and `let`
//! annotations, constructor shapes (`Bus::new`, `SessionCtx::...`,
//! `Rc::new`), known fn returns, `.clone()` chains, and field types
//! through the workspace-merged struct table. `let` chains additionally
//! record the *origin* variable a handle was cloned from, so rebinding
//! a session's own handle (`let h = a.bus.clone(); a.bus = h;`) is not
//! mistaken for a cross-session store.

use crate::ast::{self, Expr, FnDef, Stmt};
use crate::callgraph::for_each_graph_fn;
use crate::resolve::{expr_type_deep, fn_type_env, TypeEnv, Workspace};
use crate::rules::{Finding, FlowRule};
use crate::source::FileKind;
use std::collections::{BTreeMap, BTreeSet};

/// Per-session handle types. `Arc` is deliberately absent: `Arc`-shared
/// state (the job cache, result slots) is the sanctioned cross-session
/// channel.
const HANDLE_TYPES: [&str; 4] = ["Bus", "Perf", "SessionCtx", "Rc"];

/// Methods that move a closure onto pool/worker threads.
const SPAWN_METHODS: [&str; 3] = ["spawn", "execute", "broadcast"];

/// See module docs.
#[derive(Debug)]
pub struct SessionIsolation;

fn is_handle(idents: &[String]) -> bool {
    idents.iter().any(|i| HANDLE_TYPES.contains(&i.as_str()))
}

impl FlowRule for SessionIsolation {
    fn name(&self) -> &'static str {
        "session-isolation"
    }

    fn describe(&self) -> &'static str {
        "Bus/Perf/Rc session handles must not reach statics, pool closures, or other sessions"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        // (2) handle-typed statics, token-level (`'static` lifetimes lex
        // as Lifetime tokens, so they never match the `static` ident).
        for file in ws.files {
            if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
                continue;
            }
            let code: Vec<_> = file.code_tokens().collect();
            for (pos, (_, t)) in code.iter().enumerate() {
                if !t.is_ident("static") || file.in_test_mod(t.line) {
                    continue;
                }
                // Idents between `static NAME` and `=`/`;` are the type.
                let mut ty_idents = Vec::new();
                for (_, n) in code.iter().skip(pos + 1).take(24) {
                    if n.is_punct("=") || n.is_punct(";") || n.is_punct("{") {
                        break;
                    }
                    ty_idents.push(n.text.clone());
                }
                if is_handle(&ty_idents) {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: t.line,
                        msg: "a `static` of session-handle type (Bus/Perf/Rc/SessionCtx) \
                              outlives every session and aliases state across runs — \
                              sessions own their handles; pass them through SessionCtx"
                            .to_string(),
                    });
                }
            }
        }
        // (1) + (3): per-function AST analysis.
        for_each_graph_fn(ws.files, &ws.asts, &mut |_, fidx, impl_ty, fd| {
            let file = &ws.files[fidx];
            let mut cx = FnCx {
                ws,
                fidx,
                impl_ty,
                tenv: fn_type_env(fd, &ws.fn_returns),
                origins: BTreeMap::new(),
            };
            cx.extend_let_chains(fd);
            let Some(body) = &fd.body else { return };
            ast::walk_block(body, &mut |e| match e {
                Expr::Method { name, args, .. } if SPAWN_METHODS.contains(&name.as_str()) => {
                    for a in args {
                        if let Expr::Closure { params, body, line } = a {
                            for (var, tys) in captured_handles(&cx, params, body) {
                                out.push(Finding {
                                    rule: self.name(),
                                    path: file.rel_path.clone(),
                                    line: *line,
                                    msg: format!(
                                        "closure passed to `{name}` captures session \
                                             handle `{var}` (type mentions `{tys}`) — pool \
                                             tasks must construct their session inside the \
                                             task, not share the submitter's handles"
                                    ),
                                });
                            }
                        }
                    }
                }
                Expr::Assign { op, lhs, rhs, line } if op == "=" => {
                    if let Some((dst, field, src)) = cx.cross_session_store(lhs, rhs) {
                        out.push(Finding {
                            rule: self.name(),
                            path: file.rel_path.clone(),
                            line: *line,
                            msg: format!(
                                "session `{dst}` receives handle `{src}` through \
                                     `.{field}` — storing one session's handle into \
                                     another aliases their state; clone session-owned \
                                     handles from the owning ctx only"
                            ),
                        });
                    }
                }
                _ => {}
            });
        });
    }
}

struct FnCx<'w, 'a> {
    ws: &'w Workspace<'a>,
    fidx: usize,
    impl_ty: Option<&'w str>,
    tenv: TypeEnv,
    /// Handle-typed `let` binding -> the variable its value was rooted
    /// in (flattened at insert time), for same-session detection.
    origins: BTreeMap<String, String>,
}

impl FnCx<'_, '_> {
    fn self_fields(&self) -> Option<&BTreeMap<String, Vec<String>>> {
        self.impl_ty
            .and_then(|ty| self.ws.tables[self.fidx].get(ty))
    }

    fn type_of(&self, e: &Expr) -> Vec<String> {
        expr_type_deep(
            e,
            &self.tenv,
            self.self_fields(),
            &self.ws.fn_returns,
            &self.ws.merged,
        )
    }

    fn resolve_origin<'s>(&'s self, var: &'s str) -> &'s str {
        self.origins.get(var).map(String::as_str).unwrap_or(var)
    }

    /// Folds `let`-chain types the constructor heuristic misses
    /// (`let b = ctx.bus.clone()`) into the type environment, in
    /// declaration order so chains resolve transitively.
    fn extend_let_chains(&mut self, fd: &FnDef) {
        let Some(body) = &fd.body else { return };
        ast::walk_blocks(body, &mut |b| {
            for stmt in &b.stmts {
                let Stmt::Let { pats, ty, init, .. } = stmt else {
                    continue;
                };
                if !ty.is_empty() || pats.len() != 1 {
                    continue;
                }
                if let Some(init) = init {
                    let idents = self.type_of(init);
                    if is_handle(&idents) {
                        if let Some(root) = root_var(init) {
                            let origin = self.resolve_origin(root).to_string();
                            if origin != pats[0] {
                                self.origins.insert(pats[0].clone(), origin);
                            }
                        }
                        self.tenv.insert(&pats[0], idents);
                    }
                }
            }
        });
    }

    /// `lhs = rhs` where `lhs` is a field of a `SessionCtx`-typed
    /// variable and `rhs` is a handle originating from a *different*
    /// variable.
    fn cross_session_store(&self, lhs: &Expr, rhs: &Expr) -> Option<(String, String, String)> {
        let Expr::Field { recv, name, .. } = lhs else {
            return None;
        };
        let dst = self.resolve_origin(root_var(recv)?);
        if !self.type_of(recv).iter().any(|i| i == "SessionCtx") {
            return None;
        }
        let src = self.resolve_origin(root_var(rhs)?);
        if src == dst || !is_handle(&self.type_of(rhs)) {
            return None;
        }
        Some((dst.to_string(), name.clone(), src.to_string()))
    }
}

/// The base variable under field/index/ref/method projections.
fn root_var(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path { .. } => e.as_var(),
        Expr::Field { recv, .. }
        | Expr::Index { recv, .. }
        | Expr::Unary { expr: recv, .. }
        | Expr::Method { recv, .. } => root_var(recv),
        _ => None,
    }
}

/// Handle-typed references inside a spawn closure that are bound
/// *outside* it: free variables whose type mentions a handle, and field
/// chains resolving to a handle type. Returns `(var, type-idents)`
/// pairs, deduplicated by variable.
fn captured_handles(cx: &FnCx<'_, '_>, params: &[String], body: &Expr) -> Vec<(String, String)> {
    // Names bound inside the closure (params + local lets) are not
    // captures.
    let mut local: BTreeSet<String> = params.iter().cloned().collect();
    ast::walk_expr(body, &mut |e| {
        if let Expr::BlockExpr { block, .. } = e {
            for stmt in &block.stmts {
                if let Stmt::Let { pats, .. } = stmt {
                    local.extend(pats.iter().cloned());
                }
            }
        }
    });
    let mut out: Vec<(String, String)> = Vec::new();
    let mut seen = BTreeSet::new();
    ast::walk_expr(body, &mut |e| {
        let (var, tys) = match e {
            Expr::Path { .. } => {
                let Some(v) = e.as_var() else { return };
                if local.contains(v) {
                    return;
                }
                (
                    v.to_string(),
                    cx.tenv.get(v).map(<[String]>::to_vec).unwrap_or_default(),
                )
            }
            Expr::Field { .. } => {
                let Some(v) = root_var(e) else { return };
                if local.contains(v) {
                    return;
                }
                (v.to_string(), cx.type_of(e))
            }
            _ => return,
        };
        if is_handle(&tys) && seen.insert(var.clone()) {
            let names: Vec<&str> = tys
                .iter()
                .map(String::as_str)
                .filter(|t| HANDLE_TYPES.contains(t))
                .collect();
            out.push((var, names.join("/")));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse(
            "crates/gh-jobs/src/lib.rs",
            "gh-jobs",
            FileKind::Lib,
            src,
        )];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        SessionIsolation.check_workspace(&ws, &mut out);
        out
    }

    #[test]
    fn captured_bus_in_spawn_closure_fires() {
        let src = "pub fn leak(pool: &Pool, bus: Bus) { pool.spawn(move || bus.emit(1)); }";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("`bus`"));
    }

    #[test]
    fn cloned_handle_chain_is_tracked() {
        let src = "pub struct SessionCtx { pub bus: Bus }\n\
                   pub fn leak(pool: &Pool, ctx: &SessionCtx) { let b = ctx.bus.clone(); pool.spawn(move || b.emit(1)); }";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("`b`"));
    }

    #[test]
    fn field_chain_capture_fires() {
        let src = "pub struct SessionCtx { pub bus: Bus }\n\
                   pub fn leak(pool: &Pool, ctx: &SessionCtx) { pool.spawn(move || ctx.bus.emit(1)); }";
        assert!(!check(src).is_empty());
    }

    #[test]
    fn session_built_inside_task_is_clean() {
        let src = "pub fn ok(pool: &Pool, small: bool) { pool.spawn(move || { let ctx = SessionCtx::fresh(small); run(&ctx); }); }";
        assert!(
            check(src).is_empty(),
            "fresh-per-task is the sanctioned pattern"
        );
    }

    #[test]
    fn arc_capture_is_clean() {
        let src =
            "pub fn ok(pool: &Pool, cache: Arc<JobCache>) { pool.spawn(move || cache.len()); }";
        assert!(
            check(src).is_empty(),
            "Arc is the sanctioned sharing channel"
        );
    }

    #[test]
    fn closure_param_shadowing_is_clean() {
        let src =
            "pub fn ok(pool: &Pool, items: Vec<u64>) { items.iter().map(|bus| bus + 1).count(); }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn non_spawn_closure_is_clean() {
        let src = "pub fn ok(bus: Bus, v: Vec<u64>) { v.iter().for_each(|x| bus.emit(*x)); }";
        assert!(
            check(src).is_empty(),
            "same-thread iteration is not an escape"
        );
    }

    #[test]
    fn handle_static_fires() {
        let src = "static SHARED_BUS: Bus = Bus::new();";
        let out = check(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("static"));
    }

    #[test]
    fn plain_static_is_clean() {
        let src = "static MAX_JOBS: usize = 64;";
        assert!(check(src).is_empty());
    }

    #[test]
    fn static_lifetime_is_not_a_static_item() {
        let src = "pub fn name() -> &'static str { \"gh\" }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn cross_session_store_fires() {
        let src = "pub struct SessionCtx { pub bus: Bus }\n\
                   pub fn splice(a: &mut SessionCtx, b: &SessionCtx) { let h = b.bus.clone(); a.bus = h; }";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("`a`"));
    }

    #[test]
    fn same_session_store_is_clean() {
        let src = "pub struct SessionCtx { pub bus: Bus }\n\
                   pub fn rewire(a: &mut SessionCtx) { let h = a.bus.clone(); a.bus = h; }";
        assert!(
            check(src).is_empty(),
            "rebinding within one session is fine"
        );
    }
}
