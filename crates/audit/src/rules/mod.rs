//! The audit rules. Each rule walks one file's token stream; the
//! cross-file `trace-coverage` rule additionally runs over the whole
//! workspace (see [`trace_coverage::check_workspace`]).

pub mod accounting;
pub mod float_eq;
pub mod no_platform_leak;
pub mod trace_coverage;
pub mod units;
pub mod unordered_iter;
pub mod unwrap_lib;
pub mod wall_clock;

use crate::source::SourceFile;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (stable; used in allow directives).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description with the suggested fix.
    pub msg: String,
}

/// A per-file lint.
pub trait Rule {
    /// Stable rule name (what `allow(...)` takes).
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Appends findings for `file` (allow filtering happens later, in the
    /// engine, so rules stay oblivious to suppression).
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// All per-file rules, in report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(wall_clock::WallClock),
        Box::new(unordered_iter::UnorderedIter),
        Box::new(accounting::UncheckedAccounting),
        Box::new(units::TypedUnits),
        Box::new(units::NoRawUnitCast),
        Box::new(float_eq::FloatEq),
        Box::new(unwrap_lib::UnwrapInLib),
        Box::new(no_platform_leak::PlatformLeak),
    ]
}

/// Names of every rule (per-file rules plus `trace-coverage` and the
/// `allow-syntax` meta rule), for `--rule` validation and docs.
pub fn rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all_rules().iter().map(|r| r.name()).collect();
    names.push(trace_coverage::NAME);
    names.push(crate::engine::ALLOW_SYNTAX);
    names
}
