//! The audit rules, in two tiers:
//!
//! * **token rules** ([`Rule`]) walk one file's token stream — cheap
//!   shape checks that need no context;
//! * **flow rules** ([`FlowRule`]) run against the shared [`Workspace`]
//!   (parsed ASTs, struct/type tables, call graph) and use the
//!   [`crate::dataflow`] taint driver for value-flow reasoning.
//!
//! The cross-file `trace-coverage` rule additionally runs over the whole
//! workspace (see [`trace_coverage::check_workspace`]).

pub mod accounting;
pub mod cache_key;
pub mod epoch_coherence;
pub mod float_eq;
pub mod lock_discipline;
pub mod no_ambient_state;
pub mod no_platform_leak;
pub mod session_isolation;
pub mod trace_coverage;
pub mod unit_launder;
pub mod units;
pub mod unordered_flow;
pub mod unwrap_lib;
pub mod wall_clock;
pub mod wall_clock_taint;

use crate::resolve::Workspace;
use crate::source::SourceFile;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (stable; used in allow directives).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description with the suggested fix.
    pub msg: String,
}

/// A per-file lint.
pub trait Rule {
    /// Stable rule name (what `allow(...)` takes).
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Appends findings for `file` (allow filtering happens later, in the
    /// engine, so rules stay oblivious to suppression).
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// A workspace-level dataflow rule. Flow rules see the whole parsed
/// workspace at once and typically combine the call graph with a
/// [`crate::dataflow::TaintSpec`].
pub trait FlowRule {
    /// Stable rule name (what `allow(...)` takes).
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Appends findings for the whole workspace.
    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>);
}

/// All per-file rules, in report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(wall_clock::WallClock),
        Box::new(accounting::UncheckedAccounting),
        Box::new(units::TypedUnits),
        Box::new(units::NoRawUnitCast),
        Box::new(float_eq::FloatEq),
        Box::new(unwrap_lib::UnwrapInLib),
        Box::new(no_platform_leak::PlatformLeak),
        Box::new(no_ambient_state::AmbientState),
    ]
}

/// All workspace flow rules, in report order.
pub fn flow_rules() -> Vec<Box<dyn FlowRule>> {
    vec![
        Box::new(epoch_coherence::EpochCoherence),
        Box::new(unit_launder::UnitLaunderFlow),
        Box::new(wall_clock_taint::WallClockTaint),
        Box::new(unordered_flow::UnorderedIterFlow),
        Box::new(cache_key::CacheKeyCompleteness),
        Box::new(session_isolation::SessionIsolation),
        Box::new(lock_discipline::LockDiscipline),
    ]
}

/// Names of every rule (per-file rules, flow rules, `trace-coverage`,
/// and the `allow-syntax` meta rule), for `--rule` validation and docs.
pub fn rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all_rules().iter().map(|r| r.name()).collect();
    names.extend(flow_rules().iter().map(|r| r.name()));
    names.push(trace_coverage::NAME);
    names.push(crate::engine::ALLOW_SYNTAX);
    names
}
