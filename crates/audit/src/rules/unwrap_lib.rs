//! `no-unwrap-in-lib`: library crates return errors; they do not abort the
//! process.
//!
//! The simulator is a library first (`gh-sim::Machine` is embedded by the
//! CLI, the bench harness, and integration tests). A `.unwrap()` on a
//! fallible path turns a recoverable condition — unparseable trace line,
//! out-of-range replay offset, poisoned lock — into a process abort that
//! takes the whole experiment batch down with it. Every panic site in lib
//! code must either become a typed error or carry an allow directive whose
//! reason documents the invariant that makes it unreachable
//! (`// gh-audit: allow(no-unwrap-in-lib) -- <invariant>`). `assert!` /
//! `debug_assert!` are deliberately NOT flagged: asserts state invariants,
//! and that is exactly the escape hatch this rule pushes panics toward.
//!
//! Exempt: tests, benches, examples, binaries, and the `gh-bench` harness
//! crate (experiment scaffolding, same trust level as benches).

use crate::rules::{Finding, Rule};
use crate::source::{FileKind, SourceFile};

/// Crates exempt from this rule (harness/scaffolding, not library API).
pub const EXEMPT_CRATES: [&str; 1] = ["gh-bench"];

/// See module docs.
#[derive(Debug)]
pub struct UnwrapInLib;

impl Rule for UnwrapInLib {
    fn name(&self) -> &'static str {
        "no-unwrap-in-lib"
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic in library code; return typed errors or document the invariant"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib || EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let code: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
        for (i, t) in code.iter().enumerate() {
            if t.kind != crate::lexer::TokKind::Ident || file.in_test_mod(t.line) {
                continue;
            }
            let name = t.text.as_str();
            let flagged = match name {
                // `.unwrap()` / `.expect(` method calls.
                "unwrap" | "expect" => {
                    i > 0
                        && code[i - 1].is_punct(".")
                        && code.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false)
                }
                // Panicking macros.
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    code.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false)
                }
                _ => false,
            };
            if !flagged {
                continue;
            }
            out.push(Finding {
                rule: self.name(),
                path: file.rel_path.clone(),
                line: t.line,
                msg: format!(
                    "`{name}` can abort the process from library code; return a typed error, \
                     or document the invariant with an allow directive if it is unreachable"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(kind: FileKind, crate_name: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("c/src/lib.rs", crate_name, kind, src);
        let mut out = Vec::new();
        UnwrapInLib.check_file(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_and_expect_fire() {
        assert_eq!(
            run(FileKind::Lib, "c", "fn f(x: Option<u8>) { x.unwrap(); }").len(),
            1
        );
        assert_eq!(
            run(
                FileKind::Lib,
                "c",
                "fn f(x: Option<u8>) { x.expect(\"m\"); }"
            )
            .len(),
            1
        );
    }

    #[test]
    fn panic_macros_fire() {
        assert_eq!(
            run(FileKind::Lib, "c", "fn f() { panic!(\"boom\"); }").len(),
            1
        );
        assert_eq!(
            run(FileKind::Lib, "c", "fn f() { unreachable!(); }").len(),
            1
        );
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }";
        assert!(run(FileKind::Lib, "c", src).is_empty());
    }

    #[test]
    fn asserts_are_fine() {
        let src = "fn f(n: u64) { assert!(n.is_power_of_two()); debug_assert_eq!(n % 2, 0); }";
        assert!(run(FileKind::Lib, "c", src).is_empty());
    }

    #[test]
    fn tests_bins_and_bench_crate_are_exempt() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(run(FileKind::Test, "c", src).is_empty());
        assert!(run(FileKind::Bin, "c", src).is_empty());
        assert!(run(FileKind::Lib, "gh-bench", src).is_empty());
    }

    #[test]
    fn cfg_test_mod_in_lib_file_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { None::<u8>.unwrap(); } }";
        assert!(run(FileKind::Lib, "c", src).is_empty());
    }
}
