//! `no-wall-clock`: simulator code must never read host time.
//!
//! Every cost in the model is virtual nanoseconds ticked by
//! `gh_mem::clock::Clock`; results are counts × costs. A single
//! `Instant::now()` in a lib path silently couples reported numbers (or
//! iteration order, via time-seeded hashing) to the machine the simulator
//! runs on, breaking the bit-exact determinism contract that
//! `tests/determinism.rs` enforces end-to-end. Benches and tests may time
//! themselves; shipped simulator code may not.
//!
//! **Sanctioned carve-out:** the `gh-perf` crate is the workspace's
//! self-profiler — host time is its entire subject matter, and its
//! quarantine (profile data never reaches a `RunReport`; every entry
//! point is a no-op until armed) is what the determinism tests verify
//! instead. It is the *only* crate exempt from this rule; model crates
//! calling its no-op facade stay covered.

use crate::rules::{Finding, Rule};
use crate::source::{FileKind, SourceFile};

/// Identifiers that read or represent host time.
const BANNED: [&str; 4] = ["Instant", "SystemTime", "UNIX_EPOCH", "elapsed"];

/// The one crate sanctioned to read host time (see module docs).
const EXEMPT_CRATE: &str = "gh-perf";

/// See module docs.
#[derive(Debug)]
pub struct WallClock;

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "no-wall-clock"
    }

    fn describe(&self) -> &'static str {
        "simulator code must use the virtual clock, never std::time::Instant/SystemTime"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
            return;
        }
        if file.crate_name == EXEMPT_CRATE {
            return;
        }
        let code: Vec<_> = file.code_tokens().collect();
        for (pos, (_, t)) in code.iter().enumerate() {
            if !BANNED.iter().any(|b| t.is_ident(b)) || file.in_test_mod(t.line) {
                continue;
            }
            // `elapsed` only counts as a method/assoc call; a field or
            // local named `elapsed` holding virtual ns is fine.
            if t.is_ident("elapsed") {
                let called = code
                    .get(pos + 1)
                    .map(|(_, n)| n.is_punct("("))
                    .unwrap_or(false);
                let receiver =
                    pos > 0 && (code[pos - 1].1.is_punct(".") || code[pos - 1].1.is_punct("::"));
                if !(called && receiver) {
                    continue;
                }
            }
            out.push(Finding {
                rule: self.name(),
                path: file.rel_path.clone(),
                line: t.line,
                msg: format!(
                    "`{}` reads host wall-clock time; simulator state must advance only \
                     through the virtual clock (gh_mem::Clock) so runs stay bit-exact",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(kind: FileKind, src: &str) -> Vec<Finding> {
        run_in("c", kind, src)
    }

    fn run_in(crate_name: &str, kind: FileKind, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("c/src/lib.rs", crate_name, kind, src);
        let mut out = Vec::new();
        WallClock.check_file(&f, &mut out);
        out
    }

    #[test]
    fn instant_in_lib_fires() {
        let out = run(FileKind::Lib, "let t = std::time::Instant::now();");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "no-wall-clock");
    }

    #[test]
    fn bench_files_are_exempt() {
        assert!(run(FileKind::Bench, "let t = Instant::now();").is_empty());
    }

    #[test]
    fn duration_alone_is_fine() {
        assert!(run(FileKind::Lib, "use std::time::Duration;").is_empty());
    }

    #[test]
    fn elapsed_field_is_fine_method_is_not() {
        assert!(run(FileKind::Lib, "let x = report.elapsed;").is_empty());
        assert_eq!(run(FileKind::Lib, "let x = t0.elapsed();").len(), 1);
    }

    #[test]
    fn test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let x = Instant::now(); }\n}\n";
        assert!(run(FileKind::Lib, src).is_empty());
    }

    #[test]
    fn gh_perf_is_the_sanctioned_exemption() {
        let src = "let t = std::time::Instant::now(); let e = t.elapsed();";
        assert!(run_in("gh-perf", FileKind::Lib, src).is_empty());
        // The same source in any other crate still fires (both idents).
        assert_eq!(run_in("gh-mem", FileKind::Lib, src).len(), 2);
    }
}
