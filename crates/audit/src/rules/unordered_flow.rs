//! `unordered-iter-flow`: hash-map/set iteration order may only influence
//! outputs through order-insensitive operations.
//!
//! The retired `no-unordered-iteration` token rule flagged every
//! `HashMap`/`HashSet` iteration, which forced `BTreeMap` (or an `allow`)
//! even where the iteration folded into a sum — order-insensitive and
//! perfectly deterministic. This flow rule keeps the invariant the
//! determinism tests actually need: values produced *in hash order* must
//! not reach returns, stored state, trace/output sinks, or formatted
//! text. It taints the result of iterating a hash-typed expression
//! (receiver types resolved via [`crate::resolve::expr_type`]) and kills
//! the taint at order-insensitive boundaries:
//!
//! * commutative folds — any binary arithmetic (`acc += v`, `a + b`),
//! * reducers (`sum`, `count`, `min`, `max`, `any`, `all`, `fold`, ...),
//! * explicit re-ordering (`sort*` methods, `collect` into an ordered
//!   container).
//!
//! What remains tainted and reaches a sink is genuine nondeterminism:
//! element-wise pushes into an accumulator that escapes, direct emission,
//! `format!`/`writeln!` of hash-ordered values, returns.

use crate::ast::Expr;
use crate::callgraph::for_each_graph_fn;
use crate::dataflow::{self, Labels, TaintEnv, TaintSpec};
use crate::resolve::{expr_type, fn_type_env, mentions_hash, Workspace};
use crate::rules::{Finding, FlowRule};

/// The taint label for hash-ordered values.
const HASH: &str = "hash";

/// Methods that yield elements in the container's iteration order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Order-insensitive iterator reducers.
const REDUCERS: [&str; 9] = [
    "sum", "product", "count", "len", "min", "max", "any", "all", "fold",
];

/// Commutative accumulation methods — `acc.saturating_add(v)` in a hash
/// loop is order-insensitive exactly like `acc += v` (which the binary
/// hook already kills).
const ARITH_FOLDS: [&str; 6] = [
    "saturating_add",
    "saturating_sub",
    "checked_add",
    "checked_sub",
    "wrapping_add",
    "wrapping_sub",
];

/// Ordered containers a `collect` turbofish can name to sanitize.
const ORDERED_COLLECT: [&str; 3] = ["BTreeMap", "BTreeSet", "BinaryHeap"];

/// Element-wise accumulation methods (order of calls = order of output).
const ACCUMULATORS: [&str; 5] = ["push", "extend", "append", "insert", "push_str"];

/// Output/trace sink method or call names.
const SINKS: [&str; 4] = ["emit", "observe", "gauge", "record"];

/// Formatting macros whose output ordering is user-visible.
const FORMAT_MACROS: [&str; 7] = [
    "write", "writeln", "print", "println", "eprint", "eprintln", "format",
];

/// See module docs.
#[derive(Debug)]
pub struct UnorderedIterFlow;

impl FlowRule for UnorderedIterFlow {
    fn name(&self) -> &'static str {
        "unordered-iter-flow"
    }

    fn describe(&self) -> &'static str {
        "hash-ordered values must not reach returns, stored state, or output sinks"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        for_each_graph_fn(ws.files, &ws.asts, &mut |_, fidx, impl_ty, fd| {
            let file = &ws.files[fidx];
            let mut spec = Spec {
                ws,
                fidx,
                impl_ty,
                tenv: fn_type_env(fd, &ws.fn_returns),
                findings: Vec::new(),
            };
            dataflow::run_fn(&mut spec, fd, TaintEnv::default());
            spec.findings.sort_unstable();
            spec.findings.dedup();
            for (line, what) in spec.findings {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line,
                    msg: format!(
                        "hash-ordered value {what}; iteration order of HashMap/HashSet \
                         is nondeterministic — sort first, collect into a BTree \
                         container, or reduce order-insensitively"
                    ),
                });
            }
        });
    }
}

struct Spec<'w, 'a> {
    ws: &'w Workspace<'a>,
    fidx: usize,
    impl_ty: Option<&'w str>,
    tenv: crate::resolve::TypeEnv,
    /// (line, what happened)
    findings: Vec<(u32, &'static str)>,
}

impl Spec<'_, '_> {
    fn is_hash_typed(&self, e: &Expr) -> bool {
        let fields = self
            .impl_ty
            .and_then(|ty| self.ws.tables[self.fidx].get(ty));
        mentions_hash(&expr_type(e, &self.tenv, fields, &self.ws.fn_returns))
    }
}

/// Strips `&`/`&mut`/parens-equivalents the parser models as `Unary`.
fn unwrap_refs(e: &Expr) -> &Expr {
    match e {
        Expr::Unary { expr, .. } => unwrap_refs(expr),
        _ => e,
    }
}

impl TaintSpec for Spec<'_, '_> {
    fn method(&mut self, e: &Expr, recv: Labels, args: &[Labels], env: &mut TaintEnv) -> Labels {
        let Expr::Method {
            recv: recv_e,
            name,
            turbofish,
            line,
            ..
        } = e
        else {
            return dataflow::union(
                recv,
                args.iter().cloned().fold(Labels::new(), dataflow::union),
            );
        };
        if ITER_METHODS.contains(&name.as_str()) && self.is_hash_typed(unwrap_refs(recv_e)) {
            return dataflow::union(recv, dataflow::tag(HASH));
        }
        if name.contains("sort") {
            // Sorting re-establishes a deterministic order for the
            // receiver itself.
            if let Some(v) = unwrap_refs(recv_e).as_var() {
                env.clear(v);
            }
            return Labels::new();
        }
        if name == "collect"
            && turbofish
                .iter()
                .any(|t| ORDERED_COLLECT.contains(&t.as_str()))
        {
            return Labels::new();
        }
        if REDUCERS.contains(&name.as_str()) || ARITH_FOLDS.contains(&name.as_str()) {
            return Labels::new();
        }
        if ACCUMULATORS.contains(&name.as_str()) {
            if args.iter().any(|a| dataflow::has(a, HASH)) {
                match unwrap_refs(recv_e).as_var() {
                    // The accumulator variable is now hash-ordered; it is
                    // flagged only if it escapes unsorted.
                    Some(v) => env.add(v, &dataflow::tag(HASH)),
                    // Accumulating into a field/temporary escapes the
                    // function's tracking — flag at the accumulation site.
                    None => self
                        .findings
                        .push((*line, "accumulated into escaping state")),
                }
            }
            return Labels::new();
        }
        if SINKS.contains(&name.as_str()) && args.iter().any(|a| dataflow::has(a, HASH)) {
            self.findings.push((*line, "reaches an output sink"));
            return Labels::new();
        }
        args.iter()
            .fold(recv, |acc, a| dataflow::union(acc, a.clone()))
    }

    fn call(&mut self, e: &Expr, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        if let Expr::Call { callee, line, .. } = e {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if segs.last().is_some_and(|s| SINKS.contains(&s.as_str()))
                    && args.iter().any(|a| dataflow::has(a, HASH))
                {
                    self.findings.push((*line, "reaches an output sink"));
                    return Labels::new();
                }
            }
        }
        args.iter().cloned().fold(Labels::new(), dataflow::union)
    }

    fn binary(&mut self, _op: &str, _l: Labels, _r: Labels, _line: u32) -> Labels {
        // Arithmetic over hash-ordered values is a commutative fold
        // (`acc += v` routes here too) — order-insensitive, kills taint.
        Labels::new()
    }

    fn for_bindings(&mut self, iter: &Expr, labels: &Labels, _env: &TaintEnv) -> Labels {
        let inner = unwrap_refs(iter);
        if self.is_hash_typed(inner) {
            return dataflow::union(labels.clone(), dataflow::tag(HASH));
        }
        labels.clone()
    }

    fn macro_call(&mut self, e: &Expr, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        if let Expr::Macro { name, line, .. } = e {
            if FORMAT_MACROS.contains(&name.as_str()) && args.iter().any(|a| dataflow::has(a, HASH))
            {
                self.findings.push((*line, "reaches formatted output"));
                return Labels::new();
            }
        }
        args.iter().cloned().fold(Labels::new(), dataflow::union)
    }

    fn on_return(&mut self, e: &Expr, labels: &Labels) {
        if dataflow::has(labels, HASH) {
            self.findings.push((e.line(), "is returned"));
        }
    }

    fn on_store(&mut self, lhs: &Expr, _rhs: &Expr, labels: &Labels, _env: &mut TaintEnv) {
        if dataflow::has(labels, HASH) {
            self.findings.push((lhs.line(), "is stored into a field"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn check(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse(
            "crates/gh-mem/src/lib.rs",
            "gh-mem",
            FileKind::Lib,
            src,
        )];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        UnorderedIterFlow.check_workspace(&ws, &mut out);
        out
    }

    #[test]
    fn iteration_into_returned_vec_fires() {
        let src = "pub fn f(m: HashMap<u64, u64>) -> Vec<u64> { let mut v = Vec::new(); for k in m.keys() { v.push(k); } v }";
        let out = check(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("returned"));
    }

    #[test]
    fn sum_over_values_is_clean() {
        let src = "pub fn f(m: HashMap<u64, u64>) -> u64 { m.values().sum() }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn commutative_fold_loop_is_clean() {
        let src = "pub fn f(m: HashMap<u64, u64>) -> u64 { let mut acc = 0; for v in m.values() { acc += v; } acc }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn saturating_fold_loop_is_clean() {
        let src = "pub fn f(m: HashMap<u64, u64>) -> u64 { let mut acc = 0u64; for v in m.values() { acc = acc.saturating_add(*v); } acc }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn sorted_accumulator_is_clean() {
        let src = "pub fn f(m: HashMap<u64, u64>) -> Vec<u64> { let mut v = Vec::new(); for k in m.keys() { v.push(k); } v.sort_unstable(); v }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn collect_into_btreemap_is_clean() {
        let src = "pub fn f(m: HashMap<u64, u64>) -> BTreeMap<u64, u64> { m.into_iter().collect::<BTreeMap<u64, u64>>() }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = "pub fn f(m: BTreeMap<u64, u64>) -> Vec<u64> { let mut v = Vec::new(); for k in m.keys() { v.push(k); } v }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn point_lookups_are_clean() {
        let src =
            "pub fn f(m: HashMap<u64, u64>, k: u64) -> u64 { m.get(&k).copied().unwrap_or(0) }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn formatted_output_fires() {
        // Explicit format args carry taint; inline `"{k}"` captures lex as
        // string literals and are a known blind spot.
        let src = "pub fn f(m: HashMap<u64, u64>) -> String { let mut s = String::new(); for k in m.keys() { s = format!(\"{}{}\", s, k); } s }";
        let out = check(src);
        assert!(!out.is_empty());
        assert!(out[0].msg.contains("formatted output"));
    }

    #[test]
    fn self_field_map_iteration_fires_on_return() {
        let src = "struct S { m: HashMap<u64, u64> }\n\
                   impl S { pub fn dump(&self) -> Vec<u64> { let mut v = Vec::new(); for k in self.m.keys() { v.push(k); } v } }";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn drain_into_sink_fires() {
        let src = "pub fn f(mut m: HashMap<u64, u64>, t: &Trace) { for (k, _v) in m.drain() { t.emit(k); } }";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn store_into_field_fires() {
        let src = "struct S { order: Vec<u64> }\n\
                   impl S { pub fn f(&mut self, m: HashMap<u64, u64>) { let mut v = Vec::new(); for k in m.keys() { v.push(k); } self.order = v; } }";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn vec_iteration_is_clean() {
        let src = "pub fn f(v: Vec<u64>) -> Vec<u64> { let mut o = Vec::new(); for x in v.iter() { o.push(x); } o }";
        assert!(check(src).is_empty());
    }
}
