//! `epoch-coherence`: every function that mutates page placement must
//! bump `placement_epoch` before returning.
//!
//! PR 7's `Runtime::classify_span_cached` caches span classifications and
//! validates them against `PageTable::placement_epoch()`. The cache is
//! sound only if *every* path that changes placement — mapping, unmapping,
//! remapping/migration, eviction — also advances the epoch; a single
//! missed bump silently serves stale placement to the access fast path,
//! which is exactly the class of bug end-to-end determinism tests cannot
//! localize.
//!
//! Detection is structural, not name-based, so `Tlb::evict` and friends
//! cannot false-positive:
//!
//! * **placement mutation** = `*.entries.insert(..)` / `*.entries.remove(..)`
//!   or an assignment to a `.node` field, inside an `impl` of a struct
//!   that declares an `epoch`/`placement_epoch` field in the same file
//!   (only the page table matches);
//! * **epoch bump** = an assignment to an `epoch`/`placement_epoch`
//!   field under the same gating.
//!
//! Both effects propagate transitively through the workspace call graph
//! (union over same-named callees — see [`crate::callgraph`]), and any
//! `gh-mem`/`gh-os`/`gh-cuda` library function whose transitive effects
//! include mutation but not a bump is flagged. Dirty-bit updates
//! (`mark_dirty`) touch neither `entries` membership nor `.node`, so they
//! are exempt by construction — dirtiness is not placement.

use crate::ast::{self, Expr, FnDef};
use crate::callgraph::for_each_graph_fn;
use crate::resolve::{StructTable, Workspace};
use crate::rules::{Finding, FlowRule};
use crate::source::FileKind;

/// Effect bit: the fn (transitively) mutates page placement.
const EF_MUTATES: u8 = 1;
/// Effect bit: the fn (transitively) bumps the placement epoch.
const EF_BUMPS: u8 = 2;

/// Crates whose placement state guards the span-classification cache.
const GUARDED_CRATES: [&str; 3] = ["gh-mem", "gh-os", "gh-cuda"];

/// Field names that hold the placement epoch.
const EPOCH_FIELDS: [&str; 2] = ["epoch", "placement_epoch"];

/// See module docs.
#[derive(Debug)]
pub struct EpochCoherence;

impl FlowRule for EpochCoherence {
    fn name(&self) -> &'static str {
        "epoch-coherence"
    }

    fn describe(&self) -> &'static str {
        "placement-mutating fns must bump placement_epoch before returning"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        let graph = &ws.graph;
        let mut direct = vec![0u8; graph.fns.len()];
        for_each_graph_fn(ws.files, &ws.asts, &mut |node, fidx, impl_ty, fd| {
            direct[node] = direct_effects(fd, impl_ty, &ws.tables[fidx]);
        });
        let effects = graph.propagate(&direct);
        for (i, node) in graph.fns.iter().enumerate() {
            let file = &ws.files[node.file];
            if file.kind != FileKind::Lib || !GUARDED_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            if effects[i] & EF_MUTATES != 0 && effects[i] & EF_BUMPS == 0 {
                let what = match &node.impl_ty {
                    Some(ty) => format!("`{}::{}`", ty, node.name),
                    None => format!("`{}`", node.name),
                };
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: node.line,
                    msg: format!(
                        "{what} mutates page placement (directly or via its callees) \
                         without bumping `placement_epoch`; \
                         `Runtime::classify_span_cached` would serve stale placement \
                         — bump the epoch before returning"
                    ),
                });
            }
        }
    }
}

/// Direct effects of one function body: placement mutation and epoch
/// bumps, gated to impls of structs that declare an epoch field in the
/// declaring file.
fn direct_effects(fd: &FnDef, impl_ty: Option<&str>, table: &StructTable) -> u8 {
    let gated = impl_ty
        .and_then(|ty| table.get(ty))
        .is_some_and(|fields| EPOCH_FIELDS.iter().any(|f| fields.contains_key(*f)));
    if !gated {
        return 0;
    }
    let Some(body) = &fd.body else { return 0 };
    let mut effects = 0u8;
    ast::walk_block(body, &mut |e| match e {
        Expr::Method { recv, name, .. } if name == "insert" || name == "remove" => {
            if matches!(recv.as_ref(), Expr::Field { name, .. } if name == "entries") {
                effects |= EF_MUTATES;
            }
        }
        Expr::Assign { lhs, .. } => match lhs.as_ref() {
            Expr::Field { name, .. } if name == "node" => effects |= EF_MUTATES,
            Expr::Field { name, .. } if EPOCH_FIELDS.contains(&name.as_str()) => {
                effects |= EF_BUMPS;
            }
            Expr::Field { name, .. } if name == "entries" => effects |= EF_MUTATES,
            _ => {}
        },
        _ => {}
    });
    effects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Workspace;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse(
            "crates/gh-mem/src/lib.rs",
            "gh-mem",
            FileKind::Lib,
            src,
        )];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        EpochCoherence.check_workspace(&ws, &mut out);
        out
    }

    const TABLE: &str = "pub struct Table { entries: Radix, epoch: u64 }\n";

    #[test]
    fn mutation_without_bump_fires() {
        let src = format!(
            "{TABLE}impl Table {{ pub fn stash(&mut self, k: u64) {{ self.entries.insert(k, 1); }} }}"
        );
        let out = check(&src);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("Table::stash"));
    }

    #[test]
    fn mutation_with_bump_is_clean() {
        let src = format!(
            "{TABLE}impl Table {{ pub fn stash(&mut self, k: u64) {{ self.entries.insert(k, 1); self.epoch = self.epoch.saturating_add(1); }} }}"
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn missing_bump_propagates_to_callers() {
        let src = format!(
            "{TABLE}impl Table {{ fn stash(&mut self, k: u64) {{ self.entries.insert(k, 1); }} \
             pub fn map_page(&mut self, k: u64) {{ self.stash(k); }} }}"
        );
        let out = check(&src);
        assert_eq!(out.len(), 2, "both the mutator and its caller fire");
    }

    #[test]
    fn caller_of_bumping_mutator_is_clean() {
        let src = format!(
            "{TABLE}impl Table {{ fn stash(&mut self, k: u64) {{ self.entries.insert(k, 1); self.epoch = self.epoch.saturating_add(1); }} \
             pub fn map_page(&mut self, k: u64) {{ self.stash(k); }} }}"
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn non_epoch_structs_are_exempt() {
        // A TLB with an `entries`-named field but no epoch: eviction is
        // not placement.
        let src = "pub struct Tlb { entries: Vec<u64> }\n\
                   impl Tlb { pub fn evict(&mut self) { self.entries.remove(0); } }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn dirty_bit_updates_are_exempt() {
        let src = format!(
            "{TABLE}impl Table {{ pub fn mark_dirty(&mut self, k: u64) {{ if let Some(e) = self.entries.get_mut(k) {{ e.dirty = true; }} }} }}"
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn node_reassignment_is_mutation() {
        let src = format!(
            "{TABLE}impl Table {{ pub fn remap(&mut self, k: u64, n: u8) {{ if let Some(e) = self.entries.get_mut(k) {{ e.node = n; }} }} }}"
        );
        assert_eq!(check(&src).len(), 1);
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let files = vec![SourceFile::parse(
            "crates/gh-trace/src/lib.rs",
            "gh-trace",
            FileKind::Lib,
            &format!("{TABLE}impl Table {{ pub fn stash(&mut self, k: u64) {{ self.entries.insert(k, 1); }} }}"),
        )];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        EpochCoherence.check_workspace(&ws, &mut out);
        assert!(out.is_empty());
    }
}
