//! `no-unordered-iteration`: iteration order of `HashMap`/`HashSet` must
//! never leak into simulator results or exports.
//!
//! `std::collections::HashMap` iterates in a randomized order (SipHash
//! keys are seeded per process unless a fixed hasher is supplied). Any
//! loop over such a map that feeds `RunReport`, an exporter, advisor
//! notes, or even the *order* of cost-charging calls makes two identical
//! runs diverge — exactly the failure class `tests/determinism.rs` exists
//! to catch, but only for the paths the test happens to exercise. The rule
//! catches it at the source level: iterate a `BTreeMap`, sort the
//! collected entries, or annotate a provably commutative fold with an
//! allow directive.
//!
//! Detection is an intra-file heuristic: identifiers bound to
//! `HashMap`/`HashSet` (struct fields, lets, fn params) are tracked, and
//! iteration-shaped uses of those identifiers are flagged:
//! `.iter()`, `.iter_mut()`, `.keys()`, `.values()`, `.values_mut()`,
//! `.drain()`, `.into_iter()`, `.into_keys()`, `.into_values()`, and
//! `for _ in [&[mut]] [recv.]ident`. `retain`/`get`/`entry` are fine
//! (no order leaks from a pure per-entry visit).

use crate::rules::{Finding, Rule};
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeSet;

const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// See module docs.
#[derive(Debug)]
pub struct UnorderedIter;

impl Rule for UnorderedIter {
    fn name(&self) -> &'static str {
        "no-unordered-iteration"
    }

    fn describe(&self) -> &'static str {
        "no iterating HashMap/HashSet where order can reach results or exports"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
            return;
        }
        let code: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
        let bound = hash_bound_idents(&code);
        if bound.is_empty() {
            return;
        }
        for (i, t) in code.iter().enumerate() {
            if t.kind != crate::lexer::TokKind::Ident || !bound.contains(t.text.as_str()) {
                continue;
            }
            if file.in_test_mod(t.line) {
                continue;
            }
            // `ident . iter_method (`
            if i + 3 < code.len()
                && code[i + 1].is_punct(".")
                && ITER_METHODS.iter().any(|m| code[i + 2].is_ident(m))
                && code[i + 3].is_punct("(")
            {
                out.push(self.finding(file, t.line, &t.text, &code[i + 2].text));
                continue;
            }
            // `for pat in [&[mut]] [recv .] ident {`  — the ident directly
            // precedes the loop body brace.
            if i + 1 < code.len() && code[i + 1].is_punct("{") && preceded_by_for_in(&code[..i], i)
            {
                out.push(self.finding(file, t.line, &t.text, "for-loop"));
            }
        }
    }
}

impl UnorderedIter {
    fn finding(&self, file: &SourceFile, line: u32, ident: &str, how: &str) -> Finding {
        Finding {
            rule: self.name(),
            path: file.rel_path.clone(),
            line,
            msg: format!(
                "`{ident}` is a HashMap/HashSet; iterating it ({how}) has randomized \
                 order that can leak into results — use a BTreeMap, sort the collected \
                 entries, or allow with a commutativity argument"
            ),
        }
    }
}

/// True when the token slice before `idx` looks like `for ... in` leading
/// directly to the identifier at `idx` (allowing `&`, `&mut`, and a
/// `recv.`/`self.` prefix in between).
fn preceded_by_for_in(before: &[&crate::lexer::Tok], _idx: usize) -> bool {
    let mut j = before.len();
    // Skip the receiver chain: `self .`, `foo .`, `&`, `& mut`.
    while j > 0 {
        let t = before[j - 1];
        if t.is_punct(".") || t.is_punct("&") || t.is_ident("mut") || t.is_ident("self") {
            j -= 1;
            continue;
        }
        if t.kind == crate::lexer::TokKind::Ident && j >= 2 && before[j - 2].is_punct(".") {
            // part of a field chain `a.b.map`
            j -= 1;
            continue;
        }
        break;
    }
    j > 0
        && before[j - 1].is_ident("in")
        && before[..j - 1]
            .iter()
            .rev()
            .take(8)
            .any(|t| t.is_ident("for"))
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file:
/// `ident : [path ::] Hash{Map,Set} <` (fields, lets, params) and
/// `ident = [path ::] Hash{Map,Set} :: new ...` initializations.
fn hash_bound_idents<'a>(code: &[&'a crate::lexer::Tok]) -> BTreeSet<&'a str> {
    let mut bound = BTreeSet::new();
    for (i, t) in code.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std :: collections ::` style path prefix.
        let mut j = i;
        while j >= 2
            && code[j - 1].is_punct("::")
            && code[j - 2].kind == crate::lexer::TokKind::Ident
        {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        // `name : <path> HashMap` (field / let / param annotation)
        if code[j - 1].is_punct(":") && j >= 2 && code[j - 2].kind == crate::lexer::TokKind::Ident {
            bound.insert(code[j - 2].text.as_str());
            continue;
        }
        // `name = <path> HashMap :: new`  /  `name : _ = HashMap::with_...`
        if code[j - 1].is_punct("=") && j >= 2 && code[j - 2].kind == crate::lexer::TokKind::Ident {
            bound.insert(code[j - 2].text.as_str());
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("c/src/lib.rs", "c", FileKind::Lib, src);
        let mut out = Vec::new();
        UnorderedIter.check_file(&f, &mut out);
        out
    }

    #[test]
    fn field_iteration_fires() {
        let src = "struct S { m: std::collections::HashMap<u64, u64> }\n\
                   impl S { fn f(&self) -> Vec<u64> { self.m.keys().copied().collect() } }";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn for_loop_over_map_fires() {
        let src = "fn f(m: HashMap<u32, u32>) { for (k, v) in &m { drop((k, v)); } }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn let_binding_new_fires() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for x in m.values() { drop(x); } }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn btreemap_is_fine() {
        let src =
            "fn f(m: std::collections::BTreeMap<u32, u32>) { for x in m.values() { drop(x); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn point_lookups_are_fine() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn retain_is_fine() {
        let src = "fn f(m: &mut HashMap<u32, u32>) { m.retain(|_, v| *v > 0); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn drain_fires() {
        let src = "fn f(mut m: HashMap<u32, u32>) -> Vec<(u32, u32)> { m.drain().collect() }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn vec_iteration_is_fine() {
        let src = "fn f(v: Vec<u32>) { for x in v.iter() { drop(x); } }";
        assert!(run(src).is_empty());
    }
}
