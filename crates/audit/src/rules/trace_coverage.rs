//! `trace-coverage`: every `gh-trace` event kind used anywhere in the
//! simulator must be explicitly registered in the exporter.
//!
//! `rustc` guarantees match exhaustiveness only until someone adds a `_`
//! arm; the exporters (`crates/trace/src/export.rs`) route each event kind
//! to a named track, and a new `Event` variant that silently falls into a
//! catch-all would record events that no exporter surfaces — invisible in
//! Perfetto, absent from the explain table, unverifiable against the
//! ground-truth counters. This workspace-level rule cross-references three
//! things lexically: the `Event` enum declaration, every `Event::Variant`
//! use site in lib/bin code, and the exporter source. A used variant that
//! the exporter never names by its identifier is a finding at the first
//! use site.

use crate::rules::Finding;
use crate::source::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Rule name (workspace rule; not part of the per-file registry).
pub const NAME: &str = "trace-coverage";

/// Runs the cross-file check over all parsed workspace files.
pub fn check_workspace(files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(enum_file) = files
        .iter()
        .find(|f| f.rel_path.ends_with("src/event.rs") && declares_event_enum(f))
    else {
        return; // No event bus in this tree (fixture workspaces).
    };
    let variants = event_variants(enum_file);
    if variants.is_empty() {
        return;
    }
    let exporter_names: BTreeSet<String> = files
        .iter()
        .filter(|f| f.rel_path.ends_with("src/export.rs"))
        .flat_map(|f| event_variant_uses(f).into_keys())
        .collect();
    // First use site of each variant outside the declaring/exporting files.
    let mut uses: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for f in files {
        if !matches!(f.kind, FileKind::Lib | FileKind::Bin)
            || f.rel_path == enum_file.rel_path
            || f.rel_path.ends_with("src/export.rs")
        {
            continue;
        }
        for (v, line) in event_variant_uses(f) {
            let site = (f.rel_path.clone(), line);
            uses.entry(v)
                .and_modify(|s| *s = (*s).clone().min(site.clone()))
                .or_insert(site);
        }
    }
    for (variant, (path, line)) in uses {
        if !variants.contains(&variant) {
            continue; // `Event::` on some other enum named Event.
        }
        if !exporter_names.contains(&variant) {
            out.push(Finding {
                rule: NAME,
                path,
                line,
                msg: format!(
                    "event kind `Event::{variant}` is emitted here but never named in the \
                     exporter (src/export.rs); register it on a track so traces surface it"
                ),
            });
        }
    }
}

fn declares_event_enum(f: &SourceFile) -> bool {
    let code: Vec<_> = f.code_tokens().map(|(_, t)| t).collect();
    code.windows(2)
        .any(|w| w[0].is_ident("enum") && w[1].is_ident("Event"))
}

/// Variant identifiers of `enum Event { ... }` (depth-1 idents that open a
/// variant: followed by `{`, `(`, `,`, or the closing brace).
fn event_variants(f: &SourceFile) -> BTreeSet<String> {
    let code: Vec<_> = f.code_tokens().map(|(_, t)| t).collect();
    let mut variants = BTreeSet::new();
    let Some(start) = code
        .windows(3)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident("Event") && w[2].is_punct("{"))
    else {
        return variants;
    };
    let mut depth = 0i32;
    let mut i = start + 2;
    let mut at_variant_start = true;
    while i < code.len() {
        let t = code[i];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
            if depth == 1 {
                at_variant_start = false; // end of a variant's field block
            }
        } else if depth == 1 {
            if t.is_punct(",") {
                at_variant_start = true;
            } else if t.is_punct("#") {
                // attribute on a variant; skip its [ ... ] group
            } else if at_variant_start
                && t.kind == crate::lexer::TokKind::Ident
                && t.text
                    .chars()
                    .next()
                    .map(char::is_uppercase)
                    .unwrap_or(false)
            {
                variants.insert(t.text.clone());
                at_variant_start = false;
            }
        }
        i += 1;
    }
    variants
}

/// `Event :: Variant` token sequences in a file, with the first line each
/// variant is seen on (test modules excluded).
fn event_variant_uses(f: &SourceFile) -> BTreeMap<String, u32> {
    let code: Vec<_> = f.code_tokens().map(|(_, t)| t).collect();
    let mut out: BTreeMap<String, u32> = BTreeMap::new();
    for w in code.windows(3) {
        if w[0].is_ident("Event")
            && w[1].is_punct("::")
            && w[2].kind == crate::lexer::TokKind::Ident
            && !f.in_test_mod(w[2].line)
        {
            out.entry(w[2].text.clone()).or_insert(w[2].line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(path: &str, kind: FileKind, src: &str) -> SourceFile {
        SourceFile::parse(path, "gh-trace", kind, src)
    }

    const ENUM_SRC: &str = "pub enum Event {\n    PageFault { va: u64 },\n    Migration { bytes: u64 },\n    TlbEvict { va: u64 },\n}\n";

    #[test]
    fn unregistered_emitted_variant_fires() {
        let files = vec![
            sf("crates/trace/src/event.rs", FileKind::Lib, ENUM_SRC),
            sf(
                "crates/trace/src/export.rs",
                FileKind::Lib,
                "fn tid(e: &Event) -> u32 { match e { Event::PageFault { .. } => 1, Event::Migration { .. } => 2, _ => 9 } }",
            ),
            sf(
                "crates/mem/src/tlb.rs",
                FileKind::Lib,
                "fn f() { emit(Event::TlbEvict { va: 0 }); }",
            ),
        ];
        let mut out = Vec::new();
        check_workspace(&files, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("TlbEvict"));
        assert_eq!(out[0].path, "crates/mem/src/tlb.rs");
    }

    #[test]
    fn fully_registered_workspace_is_clean() {
        let files = vec![
            sf("crates/trace/src/event.rs", FileKind::Lib, ENUM_SRC),
            sf(
                "crates/trace/src/export.rs",
                FileKind::Lib,
                "fn tid(e: &Event) -> u32 { match e { Event::PageFault { .. } => 1, Event::Migration { .. } => 2, Event::TlbEvict { .. } => 3 } }",
            ),
            sf(
                "crates/mem/src/tlb.rs",
                FileKind::Lib,
                "fn f() { emit(Event::TlbEvict { va: 0 }); emit(Event::Migration { bytes: 1 }); }",
            ),
        ];
        let mut out = Vec::new();
        check_workspace(&files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn variant_parse_handles_field_blocks() {
        let f = sf("crates/trace/src/event.rs", FileKind::Lib, ENUM_SRC);
        let v = event_variants(&f);
        assert_eq!(
            v.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["Migration", "PageFault", "TlbEvict"]
        );
    }

    #[test]
    fn no_event_enum_means_no_findings() {
        let files = vec![sf("crates/mem/src/tlb.rs", FileKind::Lib, "fn f() {}")];
        let mut out = Vec::new();
        check_workspace(&files, &mut out);
        assert!(out.is_empty());
    }
}
