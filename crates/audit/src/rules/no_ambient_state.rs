//! `no-ambient-state`: model crates must not grow process-wide state.
//!
//! PR 9 evicted every piece of ambient run state into the per-run
//! `SessionCtx` — the `thread_local!` trace/perf collectors, the
//! `OnceLock` env latches for the sanitizer and the reference-walk
//! toggle. That is what lets the `gh-jobs` executor run the whole
//! experiment matrix concurrently in one process with bitwise-identical
//! reports. This rule keeps the door shut: library code may not
//! introduce new `thread_local!`, `static mut`, `OnceLock`/`LazyLock`
//! cells, or environment reads (`std::env::var*`). Configuration flows
//! in through `SessionOptions`; env vars are honored only at the
//! CLI/bench boundary.
//!
//! **Sanctioned carve-outs:**
//!
//! * binary targets, benches, tests, examples — they *are* the boundary;
//! * the `gh-bench` harness crate — its `util` module is where
//!   `GH_TRACE`/`GH_JOBS`/`GH_FAST` seed per-run `SessionOptions`;
//! * `crates/par/src/pool.rs` — the process-wide work-stealing pool
//!   (`global()`) is shared *compute*, not per-run state: jobs carry
//!   their own session handles, so which thread runs them cannot affect
//!   results.

use crate::rules::{Finding, Rule};
use crate::source::{FileKind, SourceFile};

/// Crates that are entirely boundary code.
const EXEMPT_CRATES: [&str; 1] = ["gh-bench"];

/// Specific sanctioned files (workspace-relative suffix match).
const EXEMPT_PATHS: [&str; 1] = ["par/src/pool.rs"];

/// Cell types whose appearance in a lib file means process-wide state.
const BANNED_CELLS: [&str; 2] = ["OnceLock", "LazyLock"];

/// See module docs.
#[derive(Debug)]
pub struct AmbientState;

impl Rule for AmbientState {
    fn name(&self) -> &'static str {
        "no-ambient-state"
    }

    fn describe(&self) -> &'static str {
        "model crates must not add thread_local!/static mut/OnceLock cells or env reads; \
         per-run state belongs on the SessionCtx"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return; // bins/benches/tests/examples are the boundary
        }
        if EXEMPT_CRATES.contains(&file.crate_name.as_str())
            || EXEMPT_PATHS.iter().any(|p| file.rel_path.ends_with(p))
        {
            return;
        }
        let code: Vec<_> = file.code_tokens().collect();
        for (pos, (_, t)) in code.iter().enumerate() {
            if file.in_test_mod(t.line) {
                continue;
            }
            let next_is = |what: &str| {
                code.get(pos + 1)
                    .map(|(_, n)| n.is_punct(what) || n.is_ident(what))
                    .unwrap_or(false)
            };
            let offense = if t.is_ident("thread_local") && next_is("!") {
                Some("`thread_local!` is per-thread ambient state")
            } else if t.is_ident("static") && next_is("mut") {
                Some("`static mut` is process-wide mutable state")
            } else if BANNED_CELLS.iter().any(|b| t.is_ident(b)) {
                Some("a process-wide lazy cell latches state across runs")
            } else if t.is_ident("env")
                && next_is("::")
                && code
                    .get(pos + 2)
                    .map(|(_, n)| n.is_ident("var") || n.is_ident("var_os") || n.is_ident("vars"))
                    .unwrap_or(false)
            {
                Some("library code must not read the environment")
            } else {
                None
            };
            if let Some(why) = offense {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    msg: format!(
                        "{why}; thread per-run configuration and collectors through \
                         SessionCtx/SessionOptions instead (env vars are honored only at \
                         the CLI/bench boundary)"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run_at(path: &str, crate_name: &str, kind: FileKind, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(path, crate_name, kind, src);
        let mut out = Vec::new();
        AmbientState.check_file(&f, &mut out);
        out
    }

    fn run(kind: FileKind, src: &str) -> Vec<Finding> {
        run_at("c/src/lib.rs", "gh-mem", kind, src)
    }

    #[test]
    fn thread_local_in_lib_fires() {
        let out = run(
            FileKind::Lib,
            "thread_local! { static S: RefCell<u32> = RefCell::new(0); }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "no-ambient-state");
    }

    #[test]
    fn lazy_cells_fire() {
        assert_eq!(
            run(
                FileKind::Lib,
                "static ON: OnceLock<bool> = OnceLock::new();"
            )
            .len(),
            2, // both mentions of the cell type
        );
        assert_eq!(run(FileKind::Lib, "use std::sync::LazyLock;").len(), 1);
    }

    #[test]
    fn static_mut_fires_but_plain_static_does_not() {
        assert_eq!(run(FileKind::Lib, "static mut X: u32 = 0;").len(), 1);
        assert!(run(FileKind::Lib, "static X: u32 = 0;").is_empty());
        // A local named `static_mut` or the words in a string are fine.
        assert!(run(FileKind::Lib, "let s = \"static mut\";").is_empty());
    }

    #[test]
    fn env_reads_fire_in_lib_only() {
        let src = "let v = std::env::var(\"GH_TRACE\");";
        assert_eq!(run(FileKind::Lib, src).len(), 1);
        assert!(run(FileKind::Bin, src).is_empty());
        assert!(run(FileKind::Bench, src).is_empty());
        assert!(run(FileKind::Test, src).is_empty());
    }

    #[test]
    fn env_module_mention_alone_is_fine() {
        assert!(run(FileKind::Lib, "use std::env;").is_empty());
        assert!(run(FileKind::Lib, "let env = 3; let x = env + 1;").is_empty());
    }

    #[test]
    fn sanctioned_boundaries_are_exempt() {
        let src = "static POOL: OnceLock<Pool> = OnceLock::new();";
        assert!(run_at("crates/par/src/pool.rs", "gh-par", FileKind::Lib, src).is_empty());
        let env_src = "let v = std::env::var(\"GH_FAST\");";
        assert!(run_at(
            "crates/bench/src/lib.rs",
            "gh-bench",
            FileKind::Lib,
            env_src
        )
        .is_empty());
        // The same pool code elsewhere in gh-par still fires.
        assert!(!run_at("crates/par/src/lib.rs", "gh-par", FileKind::Lib, src).is_empty());
    }

    #[test]
    fn test_mods_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let v = std::env::var(\"X\"); }\n}\n";
        assert!(run(FileKind::Lib, src).is_empty());
    }
}
