//! `unit-launder-flow`: a raw value escaped from one unit domain must not
//! be rewrapped in a *different* domain's constructor.
//!
//! The token-level `typed-units` rules catch raw arithmetic and `as`
//! casts, but nothing stops `Pages::new(bytes.get())` — a byte count
//! laundered through `.get()` into a page quantity with no conversion.
//! The classic instance in this codebase's domain is a 4 KiB/64 KiB page
//! confusion: a byte count reinterpreted as a page count is off by the
//! page size, and the resulting placement/accounting drift survives every
//! determinism test because it is *deterministically* wrong.
//!
//! The rule taints the result of `.get()` with the unit type of its
//! receiver (resolved via [`crate::resolve::expr_type`] — parameter and
//! `let` annotations, constructor shapes, `self` fields, known fn
//! returns) and flags `U::new(arg)` / `U::from_raw(arg)` when `arg`
//! carries a different unit's label. Arithmetic that plausibly performs a
//! conversion (`*`, `/`, `%`, shifts, or mul/div-named methods) kills the
//! label: scaling is exactly how legitimate domain crossings look.
//! Same-unit round-trips (`Bytes::new(b.get() + 1)`) stay silent.

use crate::ast::Expr;
use crate::callgraph::for_each_graph_fn;
use crate::dataflow::{self, Labels, TaintEnv, TaintSpec};
use crate::resolve::{expr_type, first_unit, fn_type_env, Workspace, UNIT_TYPES};
use crate::rules::{Finding, FlowRule};

/// Constructor names that (re)wrap a raw value into a unit domain.
const UNIT_CTORS: [&str; 2] = ["new", "from_raw"];

/// See module docs.
#[derive(Debug)]
pub struct UnitLaunderFlow;

impl FlowRule for UnitLaunderFlow {
    fn name(&self) -> &'static str {
        "unit-launder-flow"
    }

    fn describe(&self) -> &'static str {
        "a .get()-escaped raw value must not flow into a different unit's constructor"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        for_each_graph_fn(ws.files, &ws.asts, &mut |_, fidx, impl_ty, fd| {
            let file = &ws.files[fidx];
            let mut spec = Spec {
                ws,
                fidx,
                impl_ty,
                tenv: fn_type_env(fd, &ws.fn_returns),
                findings: Vec::new(),
            };
            dataflow::run_fn(&mut spec, fd, TaintEnv::default());
            // Loop bodies run twice in the dataflow driver; drop the
            // duplicate sink hits.
            spec.findings.sort_unstable();
            spec.findings.dedup();
            for (line, from, to) in spec.findings {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line,
                    msg: format!(
                        "raw value escaped from `{from}` via .get() flows into \
                         `{to}::new` — convert explicitly (the quantities differ \
                         by a unit factor) or construct from a `{to}`-domain value"
                    ),
                });
            }
        });
    }
}

struct Spec<'w, 'a> {
    ws: &'w Workspace<'a>,
    fidx: usize,
    impl_ty: Option<&'w str>,
    tenv: crate::resolve::TypeEnv,
    /// (line, source unit, destination unit)
    findings: Vec<(u32, &'static str, &'static str)>,
}

impl Spec<'_, '_> {
    fn self_fields(&self) -> Option<&std::collections::BTreeMap<String, Vec<String>>> {
        self.impl_ty
            .and_then(|ty| self.ws.tables[self.fidx].get(ty))
    }

    fn unit_of(&self, e: &Expr) -> Option<&'static str> {
        let idents = expr_type(e, &self.tenv, self.self_fields(), &self.ws.fn_returns);
        first_unit(&idents)
    }
}

/// True when `name` suggests a scaling/conversion operation.
fn is_scaling_method(name: &str) -> bool {
    name.contains("mul") || name.contains("div") || name.contains("rem") || name.contains("pow")
}

impl TaintSpec for Spec<'_, '_> {
    fn method(&mut self, e: &Expr, recv: Labels, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        let Expr::Method {
            recv: recv_e,
            name,
            args: arg_es,
            ..
        } = e
        else {
            return dataflow::union(
                recv,
                args.iter().cloned().fold(Labels::new(), dataflow::union),
            );
        };
        // `.get()` with no args is the gh-units raw escape; HashMap::get(&k)
        // takes an argument and never matches.
        if name == "get" && arg_es.is_empty() {
            if let Some(unit) = self.unit_of(recv_e) {
                return dataflow::tag(unit);
            }
            return recv;
        }
        if is_scaling_method(name) {
            return Labels::new();
        }
        args.iter()
            .fold(recv, |acc, a| dataflow::union(acc, a.clone()))
    }

    fn binary(&mut self, op: &str, l: Labels, r: Labels, _line: u32) -> Labels {
        // Scaling (`*`, `/`, `%`, shifts) is how a legitimate conversion
        // looks; additive ops keep the operands' domain.
        match op {
            "+" | "-" => dataflow::union(l, r),
            _ => Labels::new(),
        }
    }

    fn call(&mut self, e: &Expr, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        if let Expr::Call { callee, line, .. } = e {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if segs.len() >= 2 && UNIT_CTORS.contains(&segs[segs.len() - 1].as_str()) {
                    let ty = &segs[segs.len() - 2];
                    if let Some(dest) = UNIT_TYPES.iter().find(|u| *u == ty) {
                        for a in args {
                            for l in a.iter() {
                                if let dataflow::Label::Tag(from) = l {
                                    if from != dest {
                                        self.findings.push((*line, from, dest));
                                    }
                                }
                            }
                        }
                        return Labels::new();
                    }
                }
            }
        }
        args.iter().cloned().fold(Labels::new(), dataflow::union)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn check(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse(
            "crates/gh-mem/src/lib.rs",
            "gh-mem",
            FileKind::Lib,
            src,
        )];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        UnitLaunderFlow.check_workspace(&ws, &mut out);
        out
    }

    #[test]
    fn cross_unit_rewrap_fires() {
        let out = check("fn f(b: Bytes) -> Pages { let raw = b.get(); Pages::new(raw) }");
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("`Bytes`"));
        assert!(out[0].msg.contains("`Pages`"));
    }

    #[test]
    fn direct_cross_unit_rewrap_fires() {
        assert_eq!(
            check("fn f(b: Bytes) -> Pages { Pages::new(b.get()) }").len(),
            1
        );
    }

    #[test]
    fn same_unit_roundtrip_is_clean() {
        assert!(check("fn f(b: Bytes) -> Bytes { Bytes::new(b.get() + 1) }").is_empty());
    }

    #[test]
    fn scaled_conversion_is_clean() {
        assert!(
            check("fn f(b: Bytes) -> Pages { Pages::new(b.get() / 4096) }").is_empty(),
            "division is how legitimate conversions look"
        );
    }

    #[test]
    fn self_field_units_resolve() {
        let src = "struct S { len: Bytes }\n\
                   impl S { fn f(&self) -> Pages { Pages::new(self.len.get()) } }";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn hashmap_get_does_not_match() {
        let src =
            "fn f(m: HashMap<u64, u64>, k: u64) -> Pages { Pages::new(m.get(&k).copied().unwrap_or(0)) }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn branch_tainted_value_fires() {
        let src = "fn f(c: bool, b: Bytes, p: Pages) -> Vpn { let raw = if c { b.get() } else { p.get() }; Vpn::new(raw) }";
        assert_eq!(check(src).len(), 2, "both branch domains differ from Vpn");
    }

    #[test]
    fn known_fn_return_resolves() {
        let src = "pub fn span_len() -> Bytes { Bytes::new(4096) }\n\
                   pub fn f() -> Pages { let l = span_len(); Pages::new(l.get()) }";
        assert_eq!(check(src).len(), 1);
    }
}
