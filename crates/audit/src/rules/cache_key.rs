//! `cache-key-completeness`: every report-influencing config field must
//! be part of the job cache key.
//!
//! The `gh-jobs` executor memoizes `RunReport`s keyed by a stable hash
//! of `JobSpec::canonical_key()`. That is only sound if *every* field
//! that can change a report is folded into the key — a field that
//! steers the simulation but is missing from the key makes the cache
//! serve stale results for the configs that differ in it, silently and
//! deterministically.
//!
//! The rule anchors on any `impl` providing a `canonical_key` method:
//!
//! 1. **K** — the keyed set: field names read through `self` inside
//!    `canonical_key` (nested reads like `self.session.trace` contribute
//!    both `session` and `trace`).
//! 2. **Audited structs** — the anchor struct plus the struct types of
//!    its fields (one level deep; for `JobSpec` that pulls in
//!    `SessionOptions`). `RuntimeOptions` is deliberately not audited
//!    per-field: it is derived from keyed inputs (platform + session),
//!    and the `SessionOptions -> RuntimeOptions` store path is covered.
//! 3. **R** — the escaping set: audited fields whose read value
//!    *escapes* the reading function — reaches a return, stored state,
//!    a branch decision (control influence), a trace/checksum/report
//!    sink, an output macro, or a call that consumes it per the
//!    interprocedural summaries ([`crate::summary`]); calls with no
//!    workspace candidate consume conservatively.
//!
//! Every field in `R \ K` is one finding, reported at the
//! `canonical_key` definition with a representative read site.
//! Functions that legitimately read fields without keying them
//! (`canonical_key` itself, `stable_hash`, `fmt`/`eq`/`hash`-style
//! trait plumbing) are exempt from the R-scan.

use crate::ast::{self, Expr, FnDef};
use crate::callgraph::for_each_graph_fn;
use crate::dataflow::{self, Label, Labels, TaintEnv, TaintSpec};
use crate::resolve::{expr_type_deep, fn_type_env, TypeEnv, Workspace};
use crate::rules::{Finding, FlowRule};
use std::collections::{BTreeMap, BTreeSet};

/// Trace/telemetry sinks (same vocabulary as the summary layer).
const TRACE_SINKS: [&str; 4] = ["emit", "count", "observe", "gauge"];

/// Output macros: printing a config field is publishing it in a report.
const OUTPUT_MACROS: [&str; 6] = ["print", "println", "eprint", "eprintln", "write", "writeln"];

/// Functions whose field reads are definitionally not report flows.
const EXEMPT_FNS: [&str; 10] = [
    "canonical_key",
    "stable_hash",
    "fmt",
    "hash",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "clone",
    "default",
];

/// See module docs.
#[derive(Debug)]
pub struct CacheKeyCompleteness;

impl FlowRule for CacheKeyCompleteness {
    fn name(&self) -> &'static str {
        "cache-key-completeness"
    }

    fn describe(&self) -> &'static str {
        "every config field that influences a report must appear in canonical_key"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        // Anchors: `canonical_key` methods with a known impl type.
        let mut anchors: Vec<(usize, String, u32)> = Vec::new();
        for_each_graph_fn(ws.files, &ws.asts, &mut |_, fidx, impl_ty, fd| {
            if fd.name == "canonical_key" {
                if let Some(ty) = impl_ty {
                    anchors.push((fidx, ty.to_string(), fd.line));
                }
            }
        });
        for (anchor_fidx, anchor_ty, anchor_line) in anchors {
            let Some(keyed) = keyed_fields(ws, anchor_fidx, &anchor_ty) else {
                continue;
            };
            let audited = audited_structs(ws, &anchor_ty);
            let (escaped, reads) = escaping_reads(ws, &audited);
            for (ty, fields) in &audited {
                for field in fields {
                    let key = format!("{ty}.{field}");
                    if !escaped.contains(&key) || keyed.contains(field) {
                        continue;
                    }
                    let site = reads
                        .get(&key)
                        .map(|(p, l)| format!(" (read at {p}:{l})"))
                        .unwrap_or_default();
                    out.push(Finding {
                        rule: self.name(),
                        path: ws.files[anchor_fidx].rel_path.clone(),
                        line: anchor_line,
                        msg: format!(
                            "field `{field}` of `{ty}` influences run output{site} but is \
                             missing from `{anchor_ty}::canonical_key` — a cached report \
                             would be served for configs that differ in it; fold the \
                             field into the key"
                        ),
                    });
                }
            }
        }
    }
}

/// Field names read through `self` inside the anchor's `canonical_key`.
fn keyed_fields(
    ws: &Workspace<'_>,
    anchor_fidx: usize,
    anchor_ty: &str,
) -> Option<BTreeSet<String>> {
    let mut keyed = None;
    for_each_graph_fn(ws.files, &ws.asts, &mut |_, fidx, impl_ty, fd| {
        if fidx != anchor_fidx || fd.name != "canonical_key" || impl_ty != Some(anchor_ty) {
            return;
        }
        let mut set = BTreeSet::new();
        if let Some(body) = &fd.body {
            ast::walk_block(body, &mut |e| {
                if let Expr::Field { name, .. } = e {
                    if roots_at_self(e) {
                        set.insert(name.clone());
                    }
                }
            });
        }
        keyed = Some(set);
    });
    keyed
}

/// True when the field chain of `e` is rooted at `self`.
fn roots_at_self(e: &Expr) -> bool {
    match e {
        Expr::Path { .. } => e.as_var() == Some("self"),
        Expr::Field { recv, .. } | Expr::Index { recv, .. } | Expr::Unary { expr: recv, .. } => {
            roots_at_self(recv)
        }
        _ => false,
    }
}

/// The anchor struct plus struct types of its fields, with their field
/// names (from the workspace-merged struct table).
fn audited_structs(ws: &Workspace<'_>, anchor_ty: &str) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = BTreeMap::new();
    let Some(anchor_fields) = ws.merged.get(anchor_ty) else {
        return out;
    };
    out.insert(
        anchor_ty.to_string(),
        anchor_fields.keys().cloned().collect(),
    );
    for ftys in anchor_fields.values() {
        for t in ftys {
            if let Some(fields) = ws.merged.get(t) {
                out.entry(t.clone())
                    .or_insert_with(|| fields.keys().cloned().collect());
            }
        }
    }
    out
}

/// Scans every non-exempt graph function for audited-field reads whose
/// value escapes. Returns the escaped `"Ty.field"` keys and, per key,
/// the first read site.
fn escaping_reads(
    ws: &Workspace<'_>,
    audited: &BTreeMap<String, BTreeSet<String>>,
) -> (BTreeSet<String>, BTreeMap<String, (String, u32)>) {
    let mut escaped = BTreeSet::new();
    let mut reads = BTreeMap::new();
    for_each_graph_fn(ws.files, &ws.asts, &mut |_, fidx, impl_ty, fd| {
        if EXEMPT_FNS.contains(&fd.name.as_str()) {
            return;
        }
        let mut spec = Spec {
            ws,
            fidx,
            impl_ty,
            tenv: fn_type_env(fd, &ws.fn_returns),
            audited,
            params: param_names(fd),
            escaped: &mut escaped,
            reads: &mut reads,
        };
        dataflow::run_fn(&mut spec, fd, TaintEnv::default());
    });
    (escaped, reads)
}

fn param_names(fd: &FnDef) -> BTreeSet<String> {
    fd.params
        .iter()
        .flat_map(|p| p.pats.iter().cloned())
        .collect()
}

struct Spec<'w, 'a> {
    ws: &'w Workspace<'a>,
    fidx: usize,
    impl_ty: Option<&'w str>,
    tenv: TypeEnv,
    audited: &'w BTreeMap<String, BTreeSet<String>>,
    params: BTreeSet<String>,
    escaped: &'w mut BTreeSet<String>,
    reads: &'w mut BTreeMap<String, (String, u32)>,
}

impl Spec<'_, '_> {
    fn self_fields(&self) -> Option<&BTreeMap<String, Vec<String>>> {
        self.impl_ty
            .and_then(|ty| self.ws.tables[self.fidx].get(ty))
    }

    /// Struct-type identifiers of a receiver expression; `self` resolves
    /// to the enclosing impl type.
    fn recv_types(&self, e: &Expr) -> Vec<String> {
        if e.as_var() == Some("self") {
            return self
                .impl_ty
                .map(|t| vec![t.to_string()])
                .unwrap_or_default();
        }
        expr_type_deep(
            e,
            &self.tenv,
            self.self_fields(),
            &self.ws.fn_returns,
            &self.ws.merged,
        )
    }

    fn first_recv_type(&self, e: &Expr) -> Option<String> {
        self.recv_types(e)
            .into_iter()
            .find(|i| i.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
    }

    fn mark_escaped(&mut self, labels: &Labels) {
        for l in labels {
            if let Label::Field(key) = l {
                if self.reads.contains_key(key) {
                    self.escaped.insert(key.clone());
                }
            }
        }
    }

    /// True when `e` is rooted at a plain local (non-parameter) variable.
    fn local_root<'e>(&self, e: &'e Expr) -> Option<&'e str> {
        fn root(e: &Expr) -> Option<&str> {
            match e {
                Expr::Path { .. } => e.as_var(),
                Expr::Field { recv, .. }
                | Expr::Index { recv, .. }
                | Expr::Unary { expr: recv, .. } => root(recv),
                _ => None,
            }
        }
        let v = root(e)?;
        (v != "self" && !self.params.contains(v)).then_some(v)
    }
}

impl TaintSpec for Spec<'_, '_> {
    fn field(&mut self, e: &Expr, recv: Labels, _env: &mut TaintEnv) -> Labels {
        let Expr::Field {
            recv: recv_e, name, ..
        } = e
        else {
            return recv;
        };
        let mut out = recv;
        for ty in self.recv_types(recv_e) {
            if self
                .audited
                .get(&ty)
                .is_some_and(|fields| fields.contains(name))
            {
                let key = format!("{ty}.{name}");
                self.reads
                    .entry(key.clone())
                    .or_insert_with(|| (self.ws.files[self.fidx].rel_path.clone(), e.line()));
                out.insert(Label::Field(key));
            }
        }
        out
    }

    fn method(&mut self, e: &Expr, recv: Labels, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        let Expr::Method {
            recv: recv_e, name, ..
        } = e
        else {
            return args
                .iter()
                .fold(recv, |acc, a| dataflow::union(acc, a.clone()));
        };
        let mut slots = Vec::with_capacity(args.len() + 1);
        slots.push(recv);
        slots.extend(args.iter().cloned());
        let all: Labels = slots.iter().cloned().fold(Labels::new(), dataflow::union);
        if TRACE_SINKS.contains(&name.as_str()) || name.contains("checksum") {
            self.mark_escaped(&all);
            return Labels::new();
        }
        let recv_ty = self.first_recv_type(recv_e);
        let consumed = self.ws.summaries.consumed_slots(
            &self.ws.graph,
            name,
            recv_ty.as_deref(),
            true,
            slots.len(),
        );
        for (slot, used) in slots.iter().zip(&consumed) {
            if *used {
                let slot = slot.clone();
                self.mark_escaped(&slot);
            }
        }
        // The result carries only the labels the summary says flow into
        // the callee's return value.
        let ret = self.ws.summaries.ret_slots(
            &self.ws.graph,
            name,
            recv_ty.as_deref(),
            true,
            slots.len(),
        );
        slots
            .into_iter()
            .zip(&ret)
            .filter(|(_, r)| **r)
            .map(|(s, _)| s)
            .fold(Labels::new(), dataflow::union)
    }

    fn call(&mut self, e: &Expr, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        let all: Labels = args.iter().cloned().fold(Labels::new(), dataflow::union);
        let Expr::Call { callee, .. } = e else {
            return all;
        };
        let Expr::Path { segs, .. } = callee.as_ref() else {
            // Unknown callable: conservative escape.
            self.mark_escaped(&all);
            return all;
        };
        let Some(name) = segs.last() else { return all };
        if TRACE_SINKS.contains(&name.as_str()) || name.contains("checksum") {
            self.mark_escaped(&all);
            return Labels::new();
        }
        let qual_ty = (segs.len() >= 2).then(|| segs[segs.len() - 2].clone());
        let consumed = self.ws.summaries.consumed_slots(
            &self.ws.graph,
            name,
            qual_ty.as_deref(),
            false,
            args.len(),
        );
        for (slot, used) in args.iter().zip(&consumed) {
            if *used {
                let slot = slot.clone();
                self.mark_escaped(&slot);
            }
        }
        // The result carries only the labels the summary says flow into
        // the callee's return value.
        let ret = self.ws.summaries.ret_slots(
            &self.ws.graph,
            name,
            qual_ty.as_deref(),
            false,
            args.len(),
        );
        args.iter()
            .zip(&ret)
            .filter(|(_, r)| **r)
            .map(|(s, _)| s.clone())
            .fold(Labels::new(), dataflow::union)
    }

    fn macro_call(&mut self, e: &Expr, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        let all: Labels = args.iter().cloned().fold(Labels::new(), dataflow::union);
        if let Expr::Macro { name, .. } = e {
            if OUTPUT_MACROS.contains(&name.as_str()) {
                self.mark_escaped(&all);
            }
        }
        all
    }

    fn struct_lit(&mut self, e: &Expr, fields: &[(String, Labels)], _env: &mut TaintEnv) -> Labels {
        let all: Labels = fields
            .iter()
            .map(|(_, l)| l.clone())
            .fold(Labels::new(), dataflow::union);
        if let Expr::StructLit { segs, .. } = e {
            if segs.last().is_some_and(|s| s == "RunReport") {
                self.mark_escaped(&all);
            }
        }
        all
    }

    fn on_branch(&mut self, _e: &Expr, labels: &Labels) {
        let labels = labels.clone();
        self.mark_escaped(&labels);
    }

    fn on_return(&mut self, _e: &Expr, labels: &Labels) {
        let labels = labels.clone();
        self.mark_escaped(&labels);
    }

    fn on_store(&mut self, lhs: &Expr, _rhs: &Expr, labels: &Labels, env: &mut TaintEnv) {
        match self.local_root(lhs) {
            Some(v) => {
                let v = v.to_string();
                env.add(&v, labels);
            }
            None => {
                let labels = labels.clone();
                self.mark_escaped(&labels);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn check(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse(
            "crates/gh-jobs/src/lib.rs",
            "gh-jobs",
            FileKind::Lib,
            src,
        )];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        CacheKeyCompleteness.check_workspace(&ws, &mut out);
        out
    }

    const SPEC: &str = "pub struct Spec { pub app: u64, pub small: bool }\n";

    #[test]
    fn unkeyed_branch_field_fires() {
        let src = format!(
            "{SPEC}impl Spec {{ pub fn canonical_key(&self) -> String {{ format!(\"app={{}}\", self.app) }} }}\n\
             pub fn run(spec: &Spec) -> u64 {{ if spec.small {{ 1 }} else {{ 2 }} }}"
        );
        let out = check(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("`small`"));
        assert!(out[0].msg.contains("canonical_key"));
    }

    #[test]
    fn fully_keyed_spec_is_clean() {
        let src = format!(
            "{SPEC}impl Spec {{ pub fn canonical_key(&self) -> String {{ format!(\"app={{}};small={{}}\", self.app, self.small) }} }}\n\
             pub fn run(spec: &Spec) -> u64 {{ if spec.small {{ spec.app }} else {{ 2 }} }}"
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn unread_unkeyed_field_is_clean() {
        // `small` is never read outside canonical_key: nothing escapes.
        let src = format!(
            "{SPEC}impl Spec {{ pub fn canonical_key(&self) -> String {{ format!(\"app={{}}\", self.app) }} }}\n\
             pub fn run(spec: &Spec) -> u64 {{ spec.app }}"
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn nested_session_field_fires_once() {
        let src = "pub struct Opts { pub trace: bool, pub perf: bool }\n\
                   pub struct Spec { pub app: u64, pub session: Opts }\n\
                   impl Spec { pub fn canonical_key(&self) -> String { format!(\"a={};t={}\", self.app, self.session.trace) } }\n\
                   pub fn run(spec: &Spec) -> u64 { if spec.session.perf { 1 } else { 0 } }";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("`perf`"));
        assert!(out[0].msg.contains("`Opts`"));
    }

    #[test]
    fn flow_through_helper_call_fires() {
        // The field value escapes only via a helper whose summary says
        // the parameter reaches the return value.
        let src = format!(
            "{SPEC}impl Spec {{ pub fn canonical_key(&self) -> String {{ format!(\"app={{}}\", self.app) }} }}\n\
             fn shape(x: bool) -> u64 {{ if x {{ 1 }} else {{ 0 }} }}\n\
             pub fn run(spec: &Spec) -> u64 {{ shape(spec.small) }}"
        );
        let out = check(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("`small`"));
    }

    #[test]
    fn helper_that_ignores_the_field_is_clean() {
        let src = format!(
            "{SPEC}impl Spec {{ pub fn canonical_key(&self) -> String {{ format!(\"app={{}}\", self.app) }} }}\n\
             fn drop_it(_x: bool) -> u64 {{ 7 }}\n\
             pub fn run(spec: &Spec) -> u64 {{ drop_it(spec.small) }}"
        );
        assert!(check(&src).is_empty(), "summary proves the arg is dead");
    }

    #[test]
    fn no_canonical_key_is_silent() {
        let src = format!(
            "{SPEC}pub fn run(spec: &Spec) -> u64 {{ if spec.small {{ 1 }} else {{ 0 }} }}"
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn printed_field_counts_as_output() {
        let src = format!(
            "{SPEC}impl Spec {{ pub fn canonical_key(&self) -> String {{ format!(\"app={{}}\", self.app) }} }}\n\
             pub fn dump(spec: &Spec) {{ println!(\"{{}}\", spec.small); }}"
        );
        assert_eq!(check(&src).len(), 1);
    }
}
