//! `wall-clock-taint`: host-time *values* must never reach model-visible
//! sinks — trace emission, counters, checksums, or a `RunReport`.
//!
//! The token-level `no-wall-clock` rule bans `Instant`/`SystemTime` from
//! model crates outright but exempts `gh-perf` wholesale — the
//! self-profiler's entire subject is host time. That per-crate exemption
//! is coarser than the actual invariant, which is about *values*: gh-perf
//! may read the clock all it wants as long as no wall-clock-derived
//! number flows into anything the determinism contract covers. This rule
//! tracks exactly that flow, in every crate including gh-perf, closing
//! the gap where a profiler refactor could route a measured duration into
//! a counter or report field and pass the old audit.
//!
//! Sources: `Instant::now()` / `SystemTime::now()`, `.elapsed()` /
//! `.duration_since(..)`, and calls through a `gh_perf` path. Propagation
//! is the default union (so `.as_nanos()`, arithmetic, and struct hops
//! keep the label). Sinks: `emit`/`count`/`observe`/`gauge` calls,
//! anything `*checksum*`-named, and `RunReport { .. }` field values.

use crate::ast::Expr;
use crate::callgraph::for_each_graph_fn;
use crate::dataflow::{self, Labels, TaintEnv, TaintSpec};
use crate::resolve::Workspace;
use crate::rules::{Finding, FlowRule};

/// The taint label for wall-clock-derived values.
const WALL: &str = "wall";

/// Types whose `now()` reads host time.
const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];

/// Methods that produce a host-time measurement from a clock value.
const CLOCK_METHODS: [&str; 2] = ["elapsed", "duration_since"];

/// Call/method names that feed model-visible outputs.
const SINKS: [&str; 4] = ["emit", "count", "observe", "gauge"];

/// See module docs.
#[derive(Debug)]
pub struct WallClockTaint;

impl FlowRule for WallClockTaint {
    fn name(&self) -> &'static str {
        "wall-clock-taint"
    }

    fn describe(&self) -> &'static str {
        "wall-clock-derived values must not flow into traces, counters, checksums, or RunReport"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        for_each_graph_fn(ws.files, &ws.asts, &mut |_, fidx, _, fd| {
            let file = &ws.files[fidx];
            let mut spec = Spec {
                findings: Vec::new(),
            };
            dataflow::run_fn(&mut spec, fd, TaintEnv::default());
            spec.findings.sort_unstable();
            spec.findings.dedup();
            for (line, sink) in spec.findings {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line,
                    msg: format!(
                        "wall-clock-derived value reaches {sink}; host time must \
                         never feed model-visible output — derive the value from \
                         the virtual clock or keep it inside the profiler"
                    ),
                });
            }
        });
    }
}

struct Spec {
    /// (line, sink description)
    findings: Vec<(u32, &'static str)>,
}

/// True when a call/method name is a model-output sink; returns its
/// description.
fn sink_desc(name: &str) -> Option<&'static str> {
    if SINKS.contains(&name) {
        return Some("a trace/counter sink");
    }
    if name.contains("checksum") {
        return Some("a checksum");
    }
    None
}

impl TaintSpec for Spec {
    fn call(&mut self, e: &Expr, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        let Expr::Call { callee, line, .. } = e else {
            return args.iter().cloned().fold(Labels::new(), dataflow::union);
        };
        if let Expr::Path { segs, .. } = callee.as_ref() {
            if segs.len() >= 2
                && segs[segs.len() - 1] == "now"
                && CLOCK_TYPES.contains(&segs[segs.len() - 2].as_str())
            {
                return dataflow::tag(WALL);
            }
            if segs.iter().any(|s| s == "gh_perf") {
                // Anything the profiler hands back is host-time-derived.
                return dataflow::tag(WALL);
            }
            if let Some(desc) = segs.last().and_then(|s| sink_desc(s)) {
                if args.iter().any(|a| dataflow::has(a, WALL)) {
                    self.findings.push((*line, desc));
                }
                return Labels::new();
            }
        }
        args.iter().cloned().fold(Labels::new(), dataflow::union)
    }

    fn method(&mut self, e: &Expr, recv: Labels, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        let Expr::Method { name, line, .. } = e else {
            return dataflow::union(
                recv,
                args.iter().cloned().fold(Labels::new(), dataflow::union),
            );
        };
        if CLOCK_METHODS.contains(&name.as_str()) {
            return dataflow::tag(WALL);
        }
        if let Some(desc) = sink_desc(name) {
            if args.iter().any(|a| dataflow::has(a, WALL)) {
                self.findings.push((*line, desc));
            }
            return Labels::new();
        }
        args.iter()
            .fold(recv, |acc, a| dataflow::union(acc, a.clone()))
    }

    fn struct_lit(&mut self, e: &Expr, fields: &[(String, Labels)], _env: &mut TaintEnv) -> Labels {
        if let Expr::StructLit { segs, line, .. } = e {
            if segs.last().is_some_and(|s| s == "RunReport")
                && fields.iter().any(|(_, l)| dataflow::has(l, WALL))
            {
                self.findings.push((*line, "a RunReport field"));
            }
        }
        fields
            .iter()
            .map(|(_, l)| l.clone())
            .fold(Labels::new(), dataflow::union)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn check_in(crate_name: &str, src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse(
            &format!("crates/{crate_name}/src/lib.rs"),
            crate_name,
            FileKind::Lib,
            src,
        )];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        WallClockTaint.check_workspace(&ws, &mut out);
        out
    }

    #[test]
    fn elapsed_into_counter_fires_even_in_gh_perf() {
        let src = "pub fn f(c: &Counters, t: Instant) { let d = t.elapsed(); c.count(d.as_nanos() as u64); }";
        let out = check_in("gh-perf", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("trace/counter sink"));
    }

    #[test]
    fn instant_now_into_checksum_fires() {
        let src = "pub fn f(h: &mut H) { let t = Instant::now(); h.mix_checksum(t.as_nanos()); }";
        assert_eq!(check_in("gh-mem", src).len(), 1);
    }

    #[test]
    fn tainted_run_report_field_fires() {
        let src = "pub fn f(t: Instant) -> RunReport { let ns = t.elapsed().as_nanos() as u64; RunReport { sim_ns: ns } }";
        let out = check_in("gh-cli", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("RunReport"));
    }

    #[test]
    fn gh_perf_internal_timing_is_clean() {
        // Measuring and storing host time inside the profiler is the
        // profiler's job; only model-visible sinks are flagged.
        let src = "pub fn f(&mut self) { let t = Instant::now(); self.samples.push(t.elapsed()); }";
        assert!(check_in("gh-perf", src).is_empty());
    }

    #[test]
    fn virtual_clock_values_are_clean() {
        let src = "pub fn f(c: &Counters, clk: &Clock) { c.count(clk.now_ns().get()); }";
        assert!(check_in("gh-mem", src).is_empty());
    }

    #[test]
    fn gh_perf_api_results_are_tainted_sources() {
        let src = "pub fn f(c: &Counters) { let d = gh_perf::scope_ns(); c.observe(d); }";
        assert_eq!(check_in("gh-cli", src).len(), 1);
    }

    #[test]
    fn duration_since_propagates_through_arithmetic() {
        let src = "pub fn f(c: &Counters, a: Instant, b: Instant) { let d = b.duration_since(a).as_nanos() as u64 / 1000; c.gauge(d); }";
        assert_eq!(check_in("gh-mem", src).len(), 1);
    }

    #[test]
    fn untainted_report_is_clean() {
        let src = "pub fn f(ns: u64) -> RunReport { RunReport { sim_ns: ns } }";
        assert!(check_in("gh-cli", src).is_empty());
    }
}
