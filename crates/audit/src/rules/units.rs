//! `typed-units` and `no-raw-unit-cast`: the gh-units newtypes must not
//! decay back to raw integers inside the model crates.
//!
//! The `gh-units` crate (`Bytes`, `Pages`, `Lines`, `SimNs`, `Vpn`,
//! `BwGiBs`) exists so that a page count can never be added to a byte
//! count and a nanosecond duration can never be divided by a bandwidth
//! without going through a declared conversion. Two leaks would undo
//! that guarantee:
//!
//! * **`typed-units`** — a public function of a model crate (`gh-mem`,
//!   `gh-os`, `gh-cuda`) taking a raw-`u64` parameter whose *name* says
//!   it is a unit quantity (`*bytes*`, `*pages*`, `*ns*`, `*vpn*`,
//!   `*lines*`). Every such parameter is an API boundary where a caller
//!   can silently pass pages where bytes are expected. Type the
//!   parameter with the matching newtype instead. Virtual-address
//!   offsets and lengths (`addr`, `off`, `len`, pitches, strides) are
//!   the *address* domain and intentionally stay raw — the rule only
//!   matches unit vocabulary.
//! * **`no-raw-unit-cast`** — an `as u64` cast or a `.0` tuple-field
//!   escape in model-crate lib code. Both bypass the conversion surface:
//!   `as` casts re-launder any integer into any unit at the next call,
//!   and `.0` reads a newtype's payload without naming the operation.
//!   `gh_units::widen` (usize → u64) and the units' `.get()` accessor
//!   are the sanctioned exits; `as f64`/`as usize` casts toward the
//!   float/indexing domains stay legal.
//!
//! Scope for both rules: lib sources of the model crates, test modules
//! exempt (tests may build raw fixtures).

use crate::lexer::{Tok, TokKind};
use crate::rules::{Finding, Rule};
use crate::source::{FileKind, SourceFile};

/// Crates whose public APIs must speak typed units.
pub const UNIT_CRATES: [&str; 3] = ["gh-mem", "gh-os", "gh-cuda"];

/// `_`-separated name segments that mark a parameter as a unit quantity,
/// with the newtype it should carry.
const UNIT_SEGMENTS: [(&str, &str); 6] = [
    ("bytes", "gh_units::Bytes"),
    ("pages", "gh_units::Pages"),
    ("ns", "gh_units::SimNs"),
    ("vpn", "gh_units::Vpn"),
    ("vpns", "gh_units::VpnRange"),
    ("lines", "gh_units::Lines"),
];

/// The newtype suggested for a parameter name, if any segment matches.
fn suggested_unit(name: &str) -> Option<&'static str> {
    name.split('_').find_map(|seg| {
        UNIT_SEGMENTS
            .iter()
            .find(|(s, _)| *s == seg)
            .map(|(_, u)| *u)
    })
}

fn in_scope(file: &SourceFile) -> bool {
    file.kind == FileKind::Lib && UNIT_CRATES.contains(&file.crate_name.as_str())
}

/// See module docs.
#[derive(Debug)]
pub struct TypedUnits;

impl Rule for TypedUnits {
    fn name(&self) -> &'static str {
        "typed-units"
    }

    fn describe(&self) -> &'static str {
        "public model-crate APIs must type unit-named parameters with gh-units newtypes"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !in_scope(file) {
            return;
        }
        let code: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
        let mut i = 0;
        while i < code.len() {
            let is_pub_fn = code[i].is_ident("fn") && i > 0 && code[i - 1].is_ident("pub");
            if !is_pub_fn || file.in_test_mod(code[i].line) {
                i += 1;
                continue;
            }
            let Some(open) = param_list_open(&code, i + 1) else {
                i += 1;
                continue;
            };
            let (params, close) = split_params(&code, open);
            for p in params {
                check_param(self.name(), file, p, out);
            }
            i = close;
        }
    }
}

/// Index of the parameter list's `(`, skipping the fn name and any
/// generic parameter list (where `<`/`>` nest and `<<`/`>>` count
/// double). `None` when the declaration has no parens before its body.
fn param_list_open(code: &[&Tok], from: usize) -> Option<usize> {
    let mut angle = 0i32;
    for (j, t) in code.iter().enumerate().skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "(" if angle == 0 => return Some(j),
                "{" | ";" if angle == 0 => return None,
                _ => {}
            }
        }
    }
    None
}

/// Splits the parameter list starting at `open` (`(`) into per-parameter
/// token slices (split on `,` at depth 1) and returns them with the
/// index just past the closing `)`.
fn split_params<'a>(code: &[&'a Tok], open: usize) -> (Vec<Vec<&'a Tok>>, usize) {
    let mut depth = 0i32;
    let mut params = Vec::new();
    let mut cur: Vec<&Tok> = Vec::new();
    let mut j = open;
    while j < code.len() {
        let t = code[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        if !cur.is_empty() {
                            params.push(std::mem::take(&mut cur));
                        }
                        return (params, j + 1);
                    }
                }
                "," if depth == 1 => {
                    if !cur.is_empty() {
                        params.push(std::mem::take(&mut cur));
                    }
                    j += 1;
                    continue;
                }
                _ => {}
            }
        }
        if depth >= 1 && !(depth == 1 && t.is_punct("(")) {
            cur.push(t);
        }
        j += 1;
    }
    (params, j)
}

/// Flags `name: <type containing u64>` when the name is unit vocabulary.
fn check_param(rule: &'static str, file: &SourceFile, p: Vec<&Tok>, out: &mut Vec<Finding>) {
    if p.iter().any(|t| t.is_ident("self")) {
        return;
    }
    let Some(k) = (0..p.len().saturating_sub(1))
        .find(|&k| p[k].kind == TokKind::Ident && p[k + 1].is_punct(":"))
    else {
        return;
    };
    let name = &p[k].text;
    let Some(unit) = suggested_unit(name) else {
        return;
    };
    if p[k + 2..].iter().any(|t| t.is_ident("u64")) {
        out.push(Finding {
            rule,
            path: file.rel_path.clone(),
            line: p[k].line,
            msg: format!(
                "`{name}: u64` crosses a public model-crate API as a raw integer; \
                 type it `{unit}` so unit mixups fail to compile"
            ),
        });
    }
}

/// See module docs.
#[derive(Debug)]
pub struct NoRawUnitCast;

impl Rule for NoRawUnitCast {
    fn name(&self) -> &'static str {
        "no-raw-unit-cast"
    }

    fn describe(&self) -> &'static str {
        "model-crate lib code must not `as u64` or `.0` past the gh-units conversion surface"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !in_scope(file) {
            return;
        }
        let code: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
        for i in 0..code.len() {
            let t = code[i];
            if file.in_test_mod(t.line) {
                continue;
            }
            if t.is_ident("as") && i + 1 < code.len() && code[i + 1].is_ident("u64") {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    msg: "`as u64` re-launders any integer into any unit; convert through \
                          gh_units (`widen` for usize, the newtype constructors otherwise) \
                          or take `.get()` at the boundary"
                        .to_string(),
                });
            }
            let tuple_zero = t.is_punct(".")
                && i + 1 < code.len()
                && code[i + 1].kind == TokKind::Int
                && code[i + 1].text == "0"
                && i > 0
                && (code[i - 1].kind == TokKind::Ident
                    || code[i - 1].is_punct(")")
                    || code[i - 1].is_punct("]"));
            if tuple_zero {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    msg: "`.0` reads a newtype's payload without naming the operation; \
                          call `.get()` (units) or give the struct named fields"
                        .to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_typed(crate_name: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("c/src/lib.rs", crate_name, FileKind::Lib, src);
        let mut out = Vec::new();
        TypedUnits.check_file(&f, &mut out);
        out
    }

    fn run_cast(crate_name: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("c/src/lib.rs", crate_name, FileKind::Lib, src);
        let mut out = Vec::new();
        NoRawUnitCast.check_file(&f, &mut out);
        out
    }

    #[test]
    fn raw_bytes_param_fires() {
        let out = run_typed(
            "gh-mem",
            "pub fn alloc(&mut self, n_bytes: u64) -> u64 { n_bytes }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("gh_units::Bytes"), "{}", out[0].msg);
    }

    #[test]
    fn every_unit_segment_is_known() {
        for (name, unit) in [
            ("bytes", "Bytes"),
            ("free_pages", "Pages"),
            ("dur_ns", "SimNs"),
            ("vpn", "Vpn"),
            ("hot_vpns", "VpnRange"),
            ("missed_lines", "Lines"),
        ] {
            let src = format!("pub fn f({name}: u64) {{}}");
            let out = run_typed("gh-os", &src);
            assert_eq!(out.len(), 1, "{name}");
            assert!(out[0].msg.contains(unit), "{name}: {}", out[0].msg);
        }
    }

    #[test]
    fn typed_param_is_fine() {
        assert!(run_typed("gh-mem", "pub fn alloc(&mut self, bytes: Bytes) {}").is_empty());
    }

    #[test]
    fn address_domain_names_are_fine() {
        assert!(run_typed(
            "gh-cuda",
            "pub fn slice(&self, addr: u64, off: u64, len: u64, pitch: u64) {}"
        )
        .is_empty());
    }

    #[test]
    fn private_and_crate_fns_are_fine() {
        assert!(run_typed("gh-mem", "fn alloc(bytes: u64) {}").is_empty());
        assert!(run_typed("gh-mem", "pub(crate) fn alloc(bytes: u64) {}").is_empty());
    }

    #[test]
    fn generic_fn_params_are_scanned_past_the_generics() {
        let out = run_typed(
            "gh-mem",
            "pub fn fold<F: Fn(u64) -> u64>(&self, f: F, total_bytes: u64) {}",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn non_model_crates_are_out_of_scope() {
        assert!(run_typed("gh-bench", "pub fn run(bytes: u64) {}").is_empty());
    }

    #[test]
    fn test_mods_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    pub fn helper(bytes: u64) {}\n}";
        assert!(run_typed("gh-mem", src).is_empty());
    }

    #[test]
    fn as_u64_fires() {
        let out = run_cast("gh-cuda", "fn f(x: u32) -> u64 { x as u64 }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("widen"), "{}", out[0].msg);
    }

    #[test]
    fn tuple_zero_escape_fires() {
        let out = run_cast("gh-mem", "fn f(b: Bytes) -> u64 { b.0 }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains(".get()"), "{}", out[0].msg);
    }

    #[test]
    fn float_and_index_casts_are_fine() {
        assert!(run_cast(
            "gh-mem",
            "fn f(b: Bytes) -> f64 { (b.get() as f64) / (4 as usize as f64) }"
        )
        .is_empty());
    }

    #[test]
    fn float_literals_and_ranges_are_fine() {
        assert!(run_cast("gh-os", "fn f() -> f64 { let _r = 0..10; 1.0 + 0.5 }").is_empty());
    }

    #[test]
    fn get_is_the_sanctioned_exit() {
        assert!(run_cast("gh-cuda", "fn f(b: Bytes) -> u64 { b.get() }").is_empty());
    }

    #[test]
    fn cast_rule_skips_tests_and_foreign_crates() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(x: u32) -> u64 { x as u64 }\n}";
        assert!(run_cast("gh-mem", src).is_empty());
        assert!(run_cast("gh-trace", "fn f(x: u32) -> u64 { x as u64 }").is_empty());
    }
}
