//! `lock-discipline`: guards must not be held across conflicting locks.
//!
//! The PR-9 concurrency layer (`gh-par`'s pool/deques, `gh-jobs`'
//! cache) uses several `Mutex`es. Two source-level mistakes deadlock
//! without any test failing deterministically:
//!
//! * **self-deadlock** — re-acquiring a lock while its guard is still
//!   alive, either directly (`let g = self.map.lock()…; self.map.lock()`)
//!   or through a call (`let g = self.map.lock()…; self.len()` where
//!   `len` locks `map`). `std::sync::Mutex` is not reentrant.
//! * **lock-order inversion** — two functions acquiring the same pair
//!   of locks in opposite orders; under contention each holds one and
//!   waits for the other.
//!
//! The analysis works on lock *identities* — the final field (or
//! variable) name of a `.lock()` receiver, so `self.gate.lock()` and
//! `shared.gate.lock()` are the same logical lock. Per function it
//! tracks which guards are held, statement by statement:
//!
//! * a guard is **held** when a `let` binds a chain whose
//!   `expect`/`unwrap` wrappers peel down to exactly `.lock()`;
//!   longer chains (`….lock()….get(&k).cloned()`) are statement
//!   temporaries that die at the `;` and are never held;
//! * a guard is **released** by `drop(g)`, by passing `g` by value to
//!   a call (`cv.wait(g)` consumes and re-parks it), or at the end of
//!   the block that bound it;
//! * while any guard is held, every `.lock()` and every call records
//!   either a *same-lock* finding or an *order edge* `held -> acquired`;
//!   call effects come from a workspace-wide `may_lock` fixpoint over
//!   the [`crate::callgraph`] (typed candidate narrowing, guard-receiver
//!   calls excluded — `g.push(x)` touches the data, not a lock).
//!
//! Order edges from all functions are joined at the end: a pair of
//! locks acquired in both orders anywhere in the workspace is one
//! finding. Closure bodies are walked with an empty held-set (they run
//! later, usually on another thread); their locks still count toward
//! `may_lock`.

use crate::ast::{self, Block, Expr, Stmt};
use crate::callgraph::for_each_graph_fn;
use crate::resolve::{expr_type_deep, fn_type_env, TypeEnv, Workspace};
use crate::rules::{Finding, FlowRule};
use std::collections::{BTreeMap, BTreeSet};

/// Wrapper methods peeled between a binding and its `.lock()`.
const PEEL: [&str; 2] = ["expect", "unwrap"];

/// Call names that never constitute an outgoing lock effect.
const SKIP_CALLS: [&str; 5] = ["lock", "drop", "expect", "unwrap", "clone"];

/// Smart-pointer/container idents skipped when picking a receiver type
/// for candidate narrowing.
const WRAPPERS: [&str; 12] = [
    "Arc",
    "Rc",
    "Box",
    "Option",
    "Result",
    "Vec",
    "Mutex",
    "RwLock",
    "RefCell",
    "Ref",
    "RefMut",
    "MutexGuard",
];

/// Fixpoint iteration cap for `may_lock` (mirrors the summary layer).
const MAX_ITERS: usize = 64;

/// See module docs.
#[derive(Debug)]
pub struct LockDiscipline;

impl FlowRule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn describe(&self) -> &'static str {
        "no lock re-acquired while held, no lock pair taken in both orders"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        // Pass 1: per-function direct locks + outgoing calls.
        let mut infos: Vec<FnInfo> = Vec::new();
        for_each_graph_fn(ws.files, &ws.asts, &mut |_, _, impl_ty, fd| {
            infos.push(collect_info(ws, impl_ty, fd));
        });
        // `may_lock` fixpoint over the call graph.
        let mut may: Vec<BTreeSet<String>> = infos.iter().map(|i| i.direct.clone()).collect();
        for _ in 0..MAX_ITERS {
            let mut changed = false;
            for i in 0..infos.len() {
                let mut add = BTreeSet::new();
                for (name, recv_ty) in &infos[i].calls {
                    for c in ws.graph.candidates(name, recv_ty.as_deref()) {
                        if let Some(s) = may.get(c) {
                            add.extend(s.iter().cloned());
                        }
                    }
                }
                let before = may[i].len();
                may[i].extend(add);
                changed |= may[i].len() > before;
            }
            if !changed {
                break;
            }
        }
        // Pass 2: held-guard walk per function, accumulating order edges.
        let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
        for_each_graph_fn(ws.files, &ws.asts, &mut |_, fidx, impl_ty, fd| {
            let Some(body) = &fd.body else { return };
            let mut w = Walk {
                ws,
                fidx,
                impl_ty,
                tenv: fn_type_env(fd, &ws.fn_returns),
                may: &may,
                held: Vec::new(),
                fired: BTreeSet::new(),
                edges: &mut edges,
                out,
            };
            w.block(body);
        });
        // Join: a pair acquired in both orders is one finding, reported
        // at the lexicographically-first direction's site.
        for ((a, b), (path, line)) in &edges {
            if a >= b {
                continue;
            }
            if let Some((rpath, rline)) = edges.get(&(b.clone(), a.clone())) {
                out.push(Finding {
                    rule: self.name(),
                    path: path.clone(),
                    line: *line,
                    msg: format!(
                        "lock `{b}` is acquired while `{a}` is held here, but \
                         {rpath}:{rline} acquires `{a}` while holding `{b}` — \
                         inconsistent lock order deadlocks under contention; \
                         acquire them in one order everywhere"
                    ),
                });
            }
        }
    }
}

/// Pass-1 facts about one graph function.
struct FnInfo {
    /// Identities this function locks directly (closures included).
    direct: BTreeSet<String>,
    /// Outgoing calls as `(name, receiver type for narrowing)`.
    calls: Vec<(String, Option<String>)>,
}

fn collect_info(ws: &Workspace<'_>, impl_ty: Option<&str>, fd: &ast::FnDef) -> FnInfo {
    let mut info = FnInfo {
        direct: BTreeSet::new(),
        calls: Vec::new(),
    };
    let Some(body) = &fd.body else { return info };
    let tenv = fn_type_env(fd, &ws.fn_returns);
    // Guard-bound variables: calls on them dereference protected data,
    // not the containing lock, and are excluded from effects.
    let mut guard_vars: BTreeSet<String> = BTreeSet::new();
    ast::walk_blocks(body, &mut |b| {
        for stmt in &b.stmts {
            if let Stmt::Let {
                pats,
                init: Some(init),
                ..
            } = stmt
            {
                if pats.len() == 1 && guard_source(init).is_some() {
                    guard_vars.insert(pats[0].clone());
                }
            }
        }
    });
    let self_fields = impl_ty.and_then(|ty| ws.merged.get(ty));
    ast::walk_block(body, &mut |e| match e {
        Expr::Method { recv, name, .. } => {
            if name == "lock" {
                if let Some(id) = lock_identity(recv) {
                    info.direct.insert(id);
                }
            } else if !SKIP_CALLS.contains(&name.as_str())
                && !root_var(recv).is_some_and(|v| guard_vars.contains(v))
            {
                let ty = narrow_ty(recv, &tenv, self_fields, ws);
                info.calls.push((name.clone(), ty));
            }
        }
        Expr::Call {
            callee, args: _, ..
        } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if let Some(n) = segs.last() {
                    if !SKIP_CALLS.contains(&n.as_str()) {
                        info.calls.push((n.clone(), None));
                    }
                }
            }
        }
        _ => {}
    });
    info
}

/// Pass-2 walker: tracks held guards with block scoping.
struct Walk<'x, 'w, 'a> {
    ws: &'w Workspace<'a>,
    fidx: usize,
    impl_ty: Option<&'w str>,
    tenv: TypeEnv,
    may: &'x [BTreeSet<String>],
    /// Held guards as `(lock identity, binding variable)`.
    held: Vec<(String, String)>,
    /// Dedup for same-lock findings: `(line, identity)`.
    fired: BTreeSet<(u32, String)>,
    edges: &'x mut BTreeMap<(String, String), (String, u32)>,
    out: &'x mut Vec<Finding>,
}

impl Walk<'_, '_, '_> {
    fn path(&self) -> &str {
        &self.ws.files[self.fidx].rel_path
    }

    fn block(&mut self, b: &Block) {
        // Guards bound in this block die at its end; releases of outer
        // guards (e.g. `drop(gate)` inside a branch) persist.
        let before: BTreeSet<String> = self.held.iter().map(|(_, v)| v.clone()).collect();
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    pats,
                    init: Some(init),
                    ..
                } => {
                    self.expr(init);
                    if pats.len() == 1 {
                        if let Some(id) = guard_source(init).and_then(lock_identity) {
                            self.held.retain(|(_, v)| v != &pats[0]);
                            self.held.push((id, pats[0].clone()));
                        }
                    }
                }
                Stmt::Let { .. } => {}
                Stmt::Expr(e) => self.expr(e),
                // Nested items get their own `for_each_graph_fn` visit.
                Stmt::Item(_) => {}
            }
        }
        if let Some(t) = b.tail.as_deref() {
            self.expr(t);
        }
        self.held.retain(|(_, v)| before.contains(v));
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Method {
                recv,
                name,
                args,
                line,
                ..
            } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
                if name == "lock" {
                    if let Some(id) = lock_identity(recv) {
                        self.acquire(&id, *line);
                    }
                    return;
                }
                self.release_moved_guards(args);
                if SKIP_CALLS.contains(&name.as_str())
                    || root_var(recv).is_some_and(|v| self.held.iter().any(|(_, hv)| hv == v))
                {
                    return;
                }
                let self_fields = self.impl_ty.and_then(|ty| self.ws.merged.get(ty));
                let ty = narrow_ty(recv, &self.tenv, self_fields, self.ws);
                self.call_effect(name, ty.as_deref(), *line);
            }
            Expr::Call { callee, args, line } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if segs.last().is_some_and(|n| n == "drop") {
                        for a in args {
                            if let Some(v) = a.as_var() {
                                self.held.retain(|(_, hv)| hv != v);
                            }
                        }
                        return;
                    }
                }
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
                self.release_moved_guards(args);
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(n) = segs.last() {
                        if !SKIP_CALLS.contains(&n.as_str()) {
                            self.call_effect(n, None, *line);
                        }
                    }
                }
            }
            Expr::Assign { lhs, rhs, .. } => {
                self.expr(rhs);
                if let Some(v) = lhs.as_var() {
                    if let Some(id) = guard_source(rhs).and_then(lock_identity) {
                        self.held.retain(|(_, hv)| hv != v);
                        self.held.push((id, v.to_string()));
                    }
                } else {
                    self.expr(lhs);
                }
            }
            Expr::If {
                cond, then, else_, ..
            } => {
                self.expr(cond);
                self.block(then);
                if let Some(e) = else_ {
                    self.expr(e);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.expr(scrutinee);
                for arm in arms {
                    self.expr(&arm.body);
                }
            }
            Expr::While { cond, body, .. } => {
                self.expr(cond);
                self.block(body);
            }
            Expr::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            Expr::Loop { body, .. } => self.block(body),
            Expr::BlockExpr { block, .. } => self.block(block),
            Expr::Closure { body, .. } => {
                // Runs later (usually on another thread): not under our
                // held guards, and its guards never outlive it here.
                let saved = std::mem::take(&mut self.held);
                self.expr(body);
                self.held = saved;
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => self.expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Field { recv, .. } => self.expr(recv),
            Expr::Index { recv, idx, .. } => {
                self.expr(recv);
                self.expr(idx);
            }
            Expr::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.expr(v);
                }
            }
            Expr::Macro { args, .. }
            | Expr::Tuple { items: args, .. }
            | Expr::Array { items: args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Ret { expr, .. } | Expr::Break { expr, .. } => {
                if let Some(e) = expr {
                    self.expr(e);
                }
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
        }
    }

    /// A `.lock()` on `id` while guards are held: same lock -> finding,
    /// different lock -> order edge.
    fn acquire(&mut self, id: &str, line: u32) {
        let held = self.held.clone();
        for (h, _) in &held {
            if h == id {
                if self.fired.insert((line, id.to_string())) {
                    let path = self.path().to_string();
                    self.out.push(Finding {
                        rule: "lock-discipline",
                        path,
                        line,
                        msg: format!(
                            "`{id}` is locked again while its guard is still held — \
                             Mutex is not reentrant, this self-deadlocks; drop the \
                             guard (or restructure) before re-locking"
                        ),
                    });
                }
            } else {
                let path = self.path().to_string();
                self.edges
                    .entry((h.clone(), id.to_string()))
                    .or_insert((path, line));
            }
        }
    }

    /// A call that (per `may_lock`) may acquire locks, made with guards
    /// held.
    fn call_effect(&mut self, name: &str, recv_ty: Option<&str>, line: u32) {
        if self.held.is_empty() {
            return;
        }
        let mut effects: BTreeSet<String> = BTreeSet::new();
        for c in self.ws.graph.candidates(name, recv_ty) {
            if let Some(s) = self.may.get(c) {
                effects.extend(s.iter().cloned());
            }
        }
        let held = self.held.clone();
        for (h, _) in &held {
            if effects.contains(h) && self.fired.insert((line, h.clone())) {
                let path = self.path().to_string();
                self.out.push(Finding {
                    rule: "lock-discipline",
                    path,
                    line,
                    msg: format!(
                        "guard on `{h}` is held across a call to `{name}`, which \
                         may lock `{h}` again — Mutex is not reentrant, this \
                         self-deadlocks; drop the guard before the call"
                    ),
                });
            }
            for l2 in &effects {
                if l2 != h {
                    let path = self.path().to_string();
                    self.edges
                        .entry((h.clone(), l2.clone()))
                        .or_insert((path, line));
                }
            }
        }
    }

    /// Bare guard variables passed by value are consumed by the callee
    /// (`cv.wait(gate)` releases and re-parks).
    fn release_moved_guards(&mut self, args: &[Expr]) {
        for a in args {
            if let Some(v) = a.as_var() {
                self.held.retain(|(_, hv)| hv != v);
            }
        }
    }
}

/// Peels `expect`/`unwrap` wrappers; `Some(receiver)` iff the chain is
/// exactly a `.lock()` acquisition (longer chains are temporaries).
fn guard_source(e: &Expr) -> Option<&Expr> {
    match e {
        Expr::Method { recv, name, .. } => match name.as_str() {
            n if PEEL.contains(&n) => guard_source(recv),
            "lock" => Some(recv),
            _ => None,
        },
        _ => None,
    }
}

/// The logical lock identity of a `.lock()` receiver: its final field
/// name, or the variable name for bare paths.
fn lock_identity(e: &Expr) -> Option<String> {
    match e {
        Expr::Field { name, .. } => Some(name.clone()),
        Expr::Path { segs, .. } => segs.last().cloned(),
        Expr::Index { recv, .. } | Expr::Unary { expr: recv, .. } | Expr::Method { recv, .. } => {
            lock_identity(recv)
        }
        _ => None,
    }
}

/// The base variable under field/index/ref/method projections.
fn root_var(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path { .. } => e.as_var(),
        Expr::Field { recv, .. }
        | Expr::Index { recv, .. }
        | Expr::Unary { expr: recv, .. }
        | Expr::Method { recv, .. } => root_var(recv),
        _ => None,
    }
}

/// Picks the receiver type ident used for call-graph narrowing: the
/// first resolved ident that is capitalized and not a wrapper.
fn narrow_ty(
    recv: &Expr,
    tenv: &TypeEnv,
    self_fields: Option<&BTreeMap<String, Vec<String>>>,
    ws: &Workspace<'_>,
) -> Option<String> {
    expr_type_deep(recv, tenv, self_fields, &ws.fn_returns, &ws.merged)
        .into_iter()
        .find(|i| {
            !WRAPPERS.contains(&i.as_str())
                && i.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn check(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse(
            "crates/gh-par/src/lib.rs",
            "gh-par",
            FileKind::Lib,
            src,
        )];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        LockDiscipline.check_workspace(&ws, &mut out);
        out
    }

    #[test]
    fn direct_relock_fires() {
        let src = "pub struct W { map: Mutex<u64> }\n\
                   impl W { pub fn bad(&self) { let g = self.map.lock().expect(\"l\"); let h = self.map.lock().expect(\"l\"); } }";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("`map`"));
    }

    #[test]
    fn relock_through_call_fires() {
        let src = "pub struct W { map: Mutex<u64> }\n\
                   impl W {\n\
                   pub fn len(&self) -> u64 { let g = self.map.lock().expect(\"l\"); *g }\n\
                   pub fn bad(&self) -> u64 { let g = self.map.lock().expect(\"l\"); self.len() } }";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("len"));
    }

    #[test]
    fn drop_before_call_is_clean() {
        let src = "pub struct W { map: Mutex<u64> }\n\
                   impl W {\n\
                   pub fn len(&self) -> u64 { let g = self.map.lock().expect(\"l\"); *g }\n\
                   pub fn ok(&self) -> u64 { let g = self.map.lock().expect(\"l\"); let v = *g; drop(g); self.len() + v } }";
        assert!(check(src).is_empty(), "released before the call");
    }

    #[test]
    fn statement_temporary_is_not_held() {
        let src = "pub struct W { map: Mutex<Table> }\n\
                   impl W {\n\
                   pub fn len(&self) -> u64 { let g = self.map.lock().expect(\"l\"); g.len() }\n\
                   pub fn ok(&self) -> u64 { let v = self.map.lock().expect(\"l\").snapshot(); self.len() } }";
        assert!(check(src).is_empty(), "chain past .lock() dies at the `;`");
    }

    #[test]
    fn order_inversion_fires_once() {
        let src = "pub struct W { alpha: Mutex<u64>, beta: Mutex<u64> }\n\
                   impl W {\n\
                   pub fn x(&self) { let g = self.alpha.lock().expect(\"l\"); let h = self.beta.lock().expect(\"l\"); }\n\
                   pub fn y(&self) { let h = self.beta.lock().expect(\"l\"); let g = self.alpha.lock().expect(\"l\"); } }";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("`alpha`") && out[0].msg.contains("`beta`"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "pub struct W { alpha: Mutex<u64>, beta: Mutex<u64> }\n\
                   impl W {\n\
                   pub fn x(&self) { let g = self.alpha.lock().expect(\"l\"); let h = self.beta.lock().expect(\"l\"); }\n\
                   pub fn y(&self) { let g = self.alpha.lock().expect(\"l\"); let h = self.beta.lock().expect(\"l\"); } }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn wait_consumes_the_guard() {
        let src = "pub struct W { gate: Mutex<bool>, cv: Condvar }\n\
                   impl W { pub fn park(&self) { let mut gate = self.gate.lock().expect(\"l\"); gate = self.cv.wait(gate).expect(\"w\"); let g2 = self.gate.lock().expect(\"l\"); } }";
        // `wait(gate)` moves the guard out, so the re-lock is clean; the
        // rebind through `wait` is not modeled as a fresh acquisition.
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn drop_in_branch_then_relock_is_clean() {
        let src = "pub struct W { gate: Mutex<bool> }\n\
                   impl W { pub fn run(&self) { let mut gate = self.gate.lock().expect(\"l\"); loop { if *gate { drop(gate); step(); gate = self.gate.lock().expect(\"l\"); } } } }";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn guard_method_is_data_access_not_lock() {
        let src = "pub struct W { items: Mutex<Vec<u64>> }\n\
                   impl W {\n\
                   pub fn push(&self, v: u64) { let mut g = self.items.lock().expect(\"l\"); g.push(v); } }";
        assert!(check(src).is_empty(), "guard deref touches data, not locks");
    }

    #[test]
    fn closure_body_is_not_under_held_guards() {
        let src = "pub struct W { map: Mutex<u64> }\n\
                   impl W { pub fn ok(&self, pool: &Pool) { let g = self.map.lock().expect(\"l\"); pool.spawn(move || { let h = self.map.lock().expect(\"l\"); }); } }";
        // The closure runs on another thread; cross-thread blocking is
        // contention, not self-deadlock.
        assert!(check(src).is_empty(), "{:?}", check(src));
    }
}
