//! A small Rust lexer: just enough token structure for the audit rules.
//!
//! The engine deliberately avoids `syn`/`proc-macro2` (no registry access
//! in the build environment, and the rules do not need a full AST). Rules
//! pattern-match over this token stream instead. The lexer understands the
//! parts of Rust surface syntax that would otherwise cause false positives
//! inside non-code text: line/block comments (kept, because allow
//! directives live in them), string/char literals, raw strings, and
//! lifetimes vs. char literals.

/// Token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`self`, `for`, `HashMap`, ...).
    Ident,
    /// Lifetime (`'a`) — distinct from char literals.
    Lifetime,
    /// Integer literal.
    Int,
    /// Float literal (has a fractional part, exponent, or `f32`/`f64`
    /// suffix).
    Float,
    /// String, raw-string, byte-string, or char literal.
    Str,
    /// Punctuation / operator. Multi-character operators the rules care
    /// about (`::`, `==`, `!=`, `+=`, `-=`, `*=`, `->`, `=>`, `..`) are
    /// single tokens.
    Punct,
    /// `// ...` comment (text includes the `//`).
    LineComment,
    /// `/* ... */` comment (text includes delimiters; nesting handled).
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True if this token is the given punctuation/operator.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// True if this token is the given identifier/keyword.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }

    /// True for comment tokens (skipped by most rule matchers).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character operators lexed as single tokens, longest first.
const MULTI_PUNCT: [&str; 17] = [
    "..=", "<<=", ">>=", "::", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "->", "=>",
    "&&", "||",
];

/// Lexes `src` into a token stream. Unterminated literals/comments consume
/// to end of input rather than erroring: the auditor must never panic on a
/// source file the compiler itself will reject later.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::with_capacity(src.len() / 4);
    let mut i = 0usize;
    let mut line: u32 = 1;
    let push = |toks: &mut Vec<Tok>, kind: TokKind, text: &str, line: u32| {
        toks.push(Tok {
            kind,
            text: text.to_string(),
            line,
        })
    };
    while i < b.len() {
        let c = b[i];
        // Whitespace (tracks line numbers).
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            push(&mut toks, TokKind::LineComment, &src[start..i], line);
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let (start, start_line) = (i, line);
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            push(&mut toks, TokKind::BlockComment, &src[start..i], start_line);
            continue;
        }
        // Raw strings r"..." / r#"..."# / br"..." (any hash depth).
        if c == b'r' || c == b'b' {
            if let Some((end, newlines)) = raw_string_end(b, i) {
                push(&mut toks, TokKind::Str, &src[i..end], line);
                line += newlines;
                i = end;
                continue;
            }
        }
        // Plain and byte strings.
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            let start = i;
            let start_line = line;
            i += if c == b'b' { 2 } else { 1 };
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\\' {
                    i += 1; // skip escaped char (covers \" and \\)
                }
                if i < b.len() && b[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 1).min(b.len());
            push(&mut toks, TokKind::Str, &src[start..i], start_line);
            continue;
        }
        // Lifetime or char literal.
        if c == b'\'' {
            let start = i;
            // Escaped char literal: '\n', '\'', '\u{..}'.
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                i += 3; // opening quote, backslash, escaped char
                while i < b.len() && b[i] != b'\'' {
                    i += 1;
                }
                i = (i + 1).min(b.len());
                push(&mut toks, TokKind::Str, &src[start..i], line);
                continue;
            }
            // Single-char literal: any char then a closing quote ('x',
            // '"', '{'). Lifetimes are never followed by a quote, so this
            // test is unambiguous.
            if i + 2 < b.len() && b[i + 1] != b'\'' && b[i + 2] == b'\'' {
                i += 3;
                push(&mut toks, TokKind::Str, &src[start..i], line);
                continue;
            }
            // Lifetime ('a, 'static). Multi-byte char literals fall here
            // too and leave a stray quote token — harmless for the rules.
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] >= 0x80) {
                j += 1;
            }
            i = j.max(i + 1);
            push(&mut toks, TokKind::Lifetime, &src[start..i], line);
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
                i += 2;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            } else {
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                // Fractional part: digit after the dot required so that
                // `0..n` ranges and tuple access `x.0` stay separate tokens.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                } else if i < b.len()
                    && b[i] == b'.'
                    && (i + 1 == b.len()
                        || !matches!(b[i + 1], b'.' | b'a'..=b'z' | b'A'..=b'Z' | b'_'))
                {
                    // `1.` trailing-dot float (not `1..` or `1.method()`).
                    is_float = true;
                    i += 1;
                }
                // Exponent.
                if i < b.len() && matches!(b[i], b'e' | b'E') {
                    let mut j = i + 1;
                    if j < b.len() && matches!(b[j], b'+' | b'-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                            i += 1;
                        }
                    }
                }
            }
            // Type suffix (u64, f64, ...).
            let suffix_start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let suffix = &src[suffix_start..i];
            if suffix.starts_with('f') {
                is_float = true;
            }
            push(
                &mut toks,
                if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                &src[start..i],
                line,
            );
            continue;
        }
        // Identifiers / keywords (ASCII + pass-through for non-ASCII).
        if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] >= 0x80) {
                i += 1;
            }
            push(&mut toks, TokKind::Ident, &src[start..i], line);
            continue;
        }
        // Multi-char operators, longest match first.
        let rest = &src[i..];
        if let Some(op) = MULTI_PUNCT.iter().find(|op| rest.starts_with(**op)) {
            push(&mut toks, TokKind::Punct, op, line);
            i += op.len();
            continue;
        }
        // `..` after the longest-match list (it is a prefix of `..=`).
        if rest.starts_with("..") {
            push(&mut toks, TokKind::Punct, "..", line);
            i += 2;
            continue;
        }
        // Single-char punctuation.
        push(&mut toks, TokKind::Punct, &src[i..i + 1], line);
        i += 1;
    }
    toks
}

/// If `b[i..]` starts a raw (byte) string, returns `(end_index,
/// newline_count)`; otherwise `None`.
fn raw_string_end(b: &[u8], i: usize) -> Option<(usize, u32)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return None;
    }
    j += 1;
    let mut newlines = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            newlines += 1;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut h = 0usize;
            while k < b.len() && b[k] == b'#' && h < hashes {
                h += 1;
                k += 1;
            }
            if h == hashes {
                return Some((k, newlines));
            }
        }
        j += 1;
    }
    Some((b.len(), newlines))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn operators_lex_as_single_tokens() {
        let ts = kinds("a += b; c == 0.0; d :: e");
        assert!(ts.contains(&(TokKind::Punct, "+=".into())));
        assert!(ts.contains(&(TokKind::Punct, "==".into())));
        assert!(ts.contains(&(TokKind::Punct, "::".into())));
        assert!(ts.contains(&(TokKind::Float, "0.0".into())));
    }

    #[test]
    fn tuple_access_is_not_a_float() {
        let ts = kinds("slot.0 == line");
        assert_eq!(ts[0], (TokKind::Ident, "slot".into()));
        assert_eq!(ts[1], (TokKind::Punct, ".".into()));
        assert_eq!(ts[2], (TokKind::Int, "0".into()));
    }

    #[test]
    fn ranges_are_not_floats() {
        let ts = kinds("0..n");
        assert_eq!(ts[0], (TokKind::Int, "0".into()));
        assert_eq!(ts[1], (TokKind::Punct, "..".into()));
    }

    #[test]
    fn float_suffix_and_exponent() {
        assert_eq!(kinds("1f64")[0].0, TokKind::Float);
        assert_eq!(kinds("1e9")[0].0, TokKind::Float);
        assert_eq!(kinds("1_000")[0].0, TokKind::Int);
    }

    #[test]
    fn strings_hide_their_contents() {
        let ts = kinds(r#"let s = "Instant == 0.0 // not code";"#);
        assert!(ts.iter().all(|t| t.0 != TokKind::Float));
        assert!(!ts.iter().any(|t| t.1 == "Instant"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let ts = kinds(r##"let s = r#"a "quoted" b"#;"##);
        assert!(ts.iter().any(|t| t.0 == TokKind::Str));
        assert_eq!(ts.last().map(|t| t.1.as_str()), Some(";"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(ts.iter().filter(|t| t.0 == TokKind::Lifetime).count(), 2);
        assert_eq!(ts.iter().filter(|t| t.0 == TokKind::Str).count(), 2);
    }

    #[test]
    fn comments_are_kept_with_lines() {
        let toks = lex("let a = 1;\n// gh-audit: allow(x) -- why\nlet b = 2;");
        let c = toks
            .iter()
            .find(|t| t.kind == TokKind::LineComment)
            .expect("comment token");
        assert_eq!(c.line, 2);
        assert!(c.text.contains("gh-audit"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ let x = 1;");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[0].text.ends_with("c */"));
        assert!(toks.iter().any(|t| t.is_ident("let")));
    }
}
