//! Name and type resolution over the [`crate::ast`] tree, plus the
//! [`Workspace`] context the flow rules run against.
//!
//! Resolution is deliberately shallow — the flow rules need "which unit
//! newtype / hash container is this expression", not full Rust typing:
//!
//! * per-file struct tables (struct name -> field -> type identifiers),
//! * a flow-insensitive per-function [`TypeEnv`] built from parameter
//!   annotations, `let` annotations, and `Type::constructor(...)`
//!   initializers,
//! * a workspace map of function name -> return-type identifiers, kept
//!   only when every same-named function agrees (ambiguity resolves to
//!   "unknown", which makes rules silent, never wrong).
//!
//! [`Workspace::build`] parses every collected source file once and
//! shares the ASTs, the type tables, and the [`crate::callgraph`] between
//! flow rules.

use crate::ast::{self, Expr, FnDef};
use crate::callgraph::CallGraph;
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeMap;

/// The `gh-units` quantity newtypes the unit rules know about.
pub const UNIT_TYPES: [&str; 8] = [
    "Bytes", "Pages", "Lines", "SimNs", "BwGiBs", "Vpn", "VpnRange", "PageSize",
];

/// Unordered std containers whose iteration order is randomized.
pub const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// First unit-type name among `idents`, if any.
pub fn first_unit(idents: &[String]) -> Option<&'static str> {
    idents
        .iter()
        .find_map(|i| UNIT_TYPES.iter().find(|u| *u == i).copied())
}

/// True when `idents` mention an unordered hash container.
pub fn mentions_hash(idents: &[String]) -> bool {
    idents.iter().any(|i| HASH_TYPES.contains(&i.as_str()))
}

/// Struct name -> field name -> identifiers in the field's type.
pub type StructTable = BTreeMap<String, BTreeMap<String, Vec<String>>>;

/// Builds the [`StructTable`] for one file.
pub fn struct_table(file: &ast::File) -> StructTable {
    let mut out = StructTable::new();
    ast::for_each_struct(file, &mut |s| {
        let fields = out.entry(s.name.clone()).or_default();
        for (name, ty) in &s.fields {
            fields.insert(name.clone(), ty.clone());
        }
    });
    out
}

/// Flow-insensitive variable types for one function: variable name ->
/// identifiers of its annotated or constructed type.
#[derive(Debug, Default)]
pub struct TypeEnv {
    vars: BTreeMap<String, Vec<String>>,
}

impl TypeEnv {
    /// Type identifiers recorded for `var`.
    pub fn get(&self, var: &str) -> Option<&[String]> {
        self.vars.get(var).map(Vec::as_slice)
    }

    /// Records (or overrides) `var`'s type identifiers — used by rules
    /// that resolve `let` chains the constructor-shape heuristic misses
    /// (e.g. `let b = ctx.bus.clone()`).
    pub fn insert(&mut self, var: &str, idents: Vec<String>) {
        self.vars.insert(var.to_string(), idents);
    }
}

/// Methods assumed to preserve their receiver's type (unit arithmetic and
/// clamping return the same quantity).
const TYPE_PRESERVING: [&str; 9] = [
    "saturating_add",
    "saturating_sub",
    "checked_add",
    "checked_sub",
    "min",
    "max",
    "clamp",
    "clone",
    "unwrap_or",
];

/// Builds a [`TypeEnv`] for `fd` from parameter annotations, `let`
/// annotations, and constructor-shaped initializers (`Type::new(..)`,
/// `Type::with_capacity(..)`, a call to a function with a known return).
pub fn fn_type_env(fd: &FnDef, fn_returns: &BTreeMap<String, Vec<String>>) -> TypeEnv {
    let mut env = TypeEnv::default();
    for p in &fd.params {
        if p.ty.is_empty() {
            continue;
        }
        for pat in &p.pats {
            env.vars.insert(pat.clone(), p.ty.clone());
        }
    }
    let Some(body) = &fd.body else { return env };
    ast::walk_blocks(body, &mut |b| {
        for stmt in &b.stmts {
            let ast::Stmt::Let { pats, ty, init, .. } = stmt else {
                continue;
            };
            let inferred: Option<Vec<String>> = if !ty.is_empty() {
                Some(ty.clone())
            } else {
                init.as_ref().and_then(|e| init_type(e, fn_returns))
            };
            if let Some(idents) = inferred {
                for pat in pats {
                    env.vars
                        .entry(pat.clone())
                        .or_insert_with(|| idents.clone());
                }
            }
        }
    });
    env
}

/// Type identifiers of an initializer expression, when its shape names
/// them: `Type::ctor(..)` or a call to a function with a known return.
fn init_type(e: &Expr, fn_returns: &BTreeMap<String, Vec<String>>) -> Option<Vec<String>> {
    match e {
        Expr::Call { callee, .. } => match callee.as_ref() {
            Expr::Path { segs, .. } if segs.len() >= 2 => {
                let ty = &segs[segs.len() - 2];
                ty.chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase())
                    .then(|| vec![ty.clone()])
            }
            Expr::Path { segs, .. } if segs.len() == 1 => fn_returns.get(&segs[0]).cloned(),
            _ => None,
        },
        Expr::Method { name, .. } if name == "clone" => None,
        _ => None,
    }
}

/// Resolves the type identifiers of `e` against a [`TypeEnv`], the
/// enclosing impl's struct fields, and the workspace function-return map.
/// Returns an empty vec when unknown.
pub fn expr_type(
    e: &Expr,
    tenv: &TypeEnv,
    self_fields: Option<&BTreeMap<String, Vec<String>>>,
    fn_returns: &BTreeMap<String, Vec<String>>,
) -> Vec<String> {
    expr_type_deep(e, tenv, self_fields, fn_returns, &StructTable::new())
}

/// Like [`expr_type`], but additionally resolves `recv.field` for
/// non-`self` receivers through a (typically workspace-merged) struct
/// table: the receiver's type identifiers are resolved first, and any
/// that name a known struct contribute that struct's field type.
pub fn expr_type_deep(
    e: &Expr,
    tenv: &TypeEnv,
    self_fields: Option<&BTreeMap<String, Vec<String>>>,
    fn_returns: &BTreeMap<String, Vec<String>>,
    structs: &StructTable,
) -> Vec<String> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => tenv
            .get(&segs[0])
            .map(<[String]>::to_vec)
            .unwrap_or_default(),
        Expr::Unary { expr, .. } => expr_type_deep(expr, tenv, self_fields, fn_returns, structs),
        Expr::Field { recv, name, .. } => {
            if matches!(recv.as_ref(), Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "self")
            {
                return self_fields
                    .and_then(|f| f.get(name))
                    .cloned()
                    .unwrap_or_default();
            }
            let recv_ty = expr_type_deep(recv, tenv, self_fields, fn_returns, structs);
            let mut out = Vec::new();
            for ident in &recv_ty {
                if let Some(ty) = structs.get(ident).and_then(|fields| fields.get(name)) {
                    for i in ty {
                        if !out.contains(i) {
                            out.push(i.clone());
                        }
                    }
                }
            }
            out
        }
        Expr::Index { recv, .. } => expr_type_deep(recv, tenv, self_fields, fn_returns, structs),
        Expr::Call { callee, .. } => match callee.as_ref() {
            Expr::Path { segs, .. } if segs.len() >= 2 => {
                let ty = &segs[segs.len() - 2];
                if ty.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    vec![ty.clone()]
                } else {
                    Vec::new()
                }
            }
            Expr::Path { segs, .. } if segs.len() == 1 => {
                fn_returns.get(&segs[0]).cloned().unwrap_or_default()
            }
            _ => Vec::new(),
        },
        Expr::Method { recv, name, .. } if TYPE_PRESERVING.contains(&name.as_str()) => {
            expr_type_deep(recv, tenv, self_fields, fn_returns, structs)
        }
        _ => Vec::new(),
    }
}

/// Everything the flow rules see: the collected files, their parsed ASTs
/// (parallel by index), per-file struct tables, the function-return map,
/// and the workspace call graph.
#[derive(Debug)]
pub struct Workspace<'a> {
    /// Collected source files, as discovered by the engine.
    pub files: &'a [SourceFile],
    /// `asts[i]` is the parse of `files[i]`.
    pub asts: Vec<ast::File>,
    /// `tables[i]` is the struct table of `files[i]`.
    pub tables: Vec<StructTable>,
    /// Workspace-merged struct table (union across files; on a duplicate
    /// struct name, the first file's field entry wins — deterministic by
    /// collection order).
    pub merged: StructTable,
    /// Function name -> return-type identifiers, library code only,
    /// dropped on cross-file disagreement.
    pub fn_returns: BTreeMap<String, Vec<String>>,
    /// Call graph over `Lib`/`Bin` functions outside test modules.
    pub graph: CallGraph,
    /// Interprocedural per-function dataflow summaries, parallel to
    /// `graph.fns` (see [`crate::summary`]).
    pub summaries: crate::summary::Summaries,
}

impl<'a> Workspace<'a> {
    /// Parses every file and builds the shared analysis context.
    pub fn build(files: &'a [SourceFile]) -> Workspace<'a> {
        let asts: Vec<ast::File> = files.iter().map(|f| ast::parse(&f.tokens)).collect();
        let tables: Vec<StructTable> = asts.iter().map(struct_table).collect();
        let mut fn_returns: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut ambiguous: Vec<String> = Vec::new();
        for (file, tree) in files.iter().zip(&asts) {
            if file.kind != FileKind::Lib {
                continue;
            }
            ast::for_each_fn(tree, &mut |_, fd| {
                if fd.ret.is_empty() {
                    return;
                }
                match fn_returns.get(&fd.name) {
                    None => {
                        fn_returns.insert(fd.name.clone(), fd.ret.clone());
                    }
                    Some(prev) if *prev != fd.ret => ambiguous.push(fd.name.clone()),
                    Some(_) => {}
                }
            });
        }
        for name in ambiguous {
            fn_returns.remove(&name);
        }
        let graph = CallGraph::build(files, &asts);
        let mut merged = StructTable::new();
        for table in &tables {
            for (name, fields) in table {
                let entry = merged.entry(name.clone()).or_default();
                for (fname, fty) in fields {
                    entry.entry(fname.clone()).or_insert_with(|| fty.clone());
                }
            }
        }
        let summaries =
            crate::summary::Summaries::build(files, &asts, &tables, &merged, &fn_returns, &graph);
        Workspace {
            files,
            asts,
            tables,
            merged,
            fn_returns,
            graph,
            summaries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ast::File {
        ast::parse(&lex(src))
    }

    #[test]
    fn struct_table_records_field_types() {
        let t = tree("struct PageTable { entries: RadixTable<Pte>, epoch: u64 }");
        let table = struct_table(&t);
        assert!(table["PageTable"]["entries"].contains(&"RadixTable".to_string()));
        assert!(table["PageTable"]["epoch"].contains(&"u64".to_string()));
    }

    #[test]
    fn type_env_from_params_and_lets() {
        let t = tree(
            "fn f(b: Bytes, n: u64) { let p = Pages::new(n); let m: HashMap<u64, u64> = HashMap::new(); let q = helper(); }",
        );
        let mut returns = BTreeMap::new();
        returns.insert("helper".to_string(), vec!["SimNs".to_string()]);
        let mut seen = false;
        ast::for_each_fn(&t, &mut |_, fd| {
            let env = fn_type_env(fd, &returns);
            assert_eq!(env.get("b"), Some(&["Bytes".to_string()][..]));
            assert_eq!(env.get("p"), Some(&["Pages".to_string()][..]));
            assert!(mentions_hash(env.get("m").unwrap_or(&[])));
            assert_eq!(env.get("q"), Some(&["SimNs".to_string()][..]));
            assert!(env.get("n").is_some());
            seen = true;
        });
        assert!(seen);
    }

    #[test]
    fn expr_type_resolves_self_fields() {
        let t = tree("struct S { len: Bytes }\nimpl S { fn f(&self) -> u64 { self.len.get() } }");
        let table = struct_table(&t);
        let fields = table.get("S");
        let mut ok = false;
        ast::for_each_fn(&t, &mut |_, fd| {
            let env = fn_type_env(fd, &BTreeMap::new());
            // `self.len` inside the body:
            if let Some(Expr::Method { recv, .. }) =
                fd.body.as_ref().and_then(|b| b.tail.as_deref())
            {
                let ty = expr_type(recv, &env, fields, &BTreeMap::new());
                assert_eq!(first_unit(&ty), Some("Bytes"));
                ok = true;
            }
        });
        assert!(ok);
    }

    #[test]
    fn ambiguous_fn_returns_are_dropped() {
        let files = vec![
            SourceFile::parse(
                "a/src/lib.rs",
                "a",
                FileKind::Lib,
                "pub fn size() -> Bytes { Bytes::new(1) }",
            ),
            SourceFile::parse(
                "b/src/lib.rs",
                "b",
                FileKind::Lib,
                "pub fn size() -> Pages { Pages::new(1) }\npub fn uniq() -> SimNs { SimNs::new(0) }",
            ),
        ];
        let ws = Workspace::build(&files);
        assert!(!ws.fn_returns.contains_key("size"));
        assert_eq!(ws.fn_returns["uniq"], vec!["SimNs".to_string()]);
    }
}
