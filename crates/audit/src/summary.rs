//! Interprocedural dataflow summaries over the call graph.
//!
//! PR 8's taint driver is intraprocedural: a call was a black box that
//! unioned its arguments. This module computes, for every function in
//! the [`crate::callgraph::CallGraph`], a [`FnSummary`] — which of its
//! *inputs* (parameter positions, `self` fields) flow to the return
//! value, to stored state, to branch decisions, and to known sinks —
//! and propagates the summaries over the graph to a fixpoint, so a
//! flow that crosses three function boundaries is still attributed to
//! the original input.
//!
//! Candidate resolution is by callee name, narrowed to an `impl` when
//! the receiver's type resolves (see [`CallGraph::candidates`]); where
//! several same-named functions remain, their summaries union, which
//! over-approximates but never drops a flow. Calls with *no* workspace
//! candidate (std, shims) are the engine's honesty boundary: queries
//! treat them as consuming every argument ([`Summaries::consumed_slots`]),
//! so "this value escapes" stays conservative. The `branched` set is the
//! control-dependence channel: an input that steers an `if`/`match`
//! changes behavior without flowing into any value, and rules like
//! `cache-key-completeness` must see that as consumption.
//!
//! Known blind spots, shared with the call graph: trait-object dispatch
//! (no candidate narrowing — falls back to name union), closures stored
//! and invoked later, and macro-generated calls.

use crate::ast::{self, Expr, FnDef};
use crate::callgraph::{for_each_graph_fn, CallGraph};
use crate::dataflow::{self, Label, Labels, TaintEnv, TaintSpec};
use crate::resolve::{expr_type_deep, fn_type_env, StructTable, TypeEnv};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Sink kind: trace/telemetry emission (`emit`, `count`, `observe`,
/// `gauge`).
pub const SINK_TRACE: &str = "trace";
/// Sink kind: checksum folding (any `*checksum*`-named callable).
pub const SINK_CHECKSUM: &str = "checksum";
/// Sink kind: a `RunReport` struct literal — the value becomes part of
/// a cached, user-visible result.
pub const SINK_REPORT: &str = "report";

/// Trace/telemetry sink names (methods or free calls).
const TRACE_SINKS: [&str; 4] = ["emit", "count", "observe", "gauge"];

/// Container-mutation methods: when the callee cannot be resolved in
/// the workspace, `recv.push(x)` is assumed to store `x` into `recv`.
const MUTATORS: [&str; 7] = [
    "push", "insert", "extend", "append", "push_str", "record", "store",
];

/// One input of a function, from the caller's point of view.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Input {
    /// The i-th declared parameter (0-based, `self` included).
    Param(u16),
    /// A named field of `self`.
    SelfField(String),
}

/// A set of inputs.
pub type Inputs = BTreeSet<Input>;

/// What a function does with its inputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// The function's first parameter is `self`.
    pub has_self: bool,
    /// Inputs that reach the return value.
    pub to_ret: Inputs,
    /// Inputs stored into fields, parameters, or escaping containers.
    pub to_state: Inputs,
    /// Inputs that steer a branch (`if`/`while` condition, `match`
    /// scrutinee) — control influence without value flow.
    pub branched: Inputs,
    /// Inputs reaching each known sink kind ([`SINK_TRACE`],
    /// [`SINK_CHECKSUM`], [`SINK_REPORT`]).
    pub to_sinks: BTreeMap<&'static str, Inputs>,
}

impl FnSummary {
    /// Inputs consumed in any observable way.
    pub fn consumed(&self) -> Inputs {
        let mut out = self.to_ret.clone();
        out.extend(self.to_state.iter().cloned());
        out.extend(self.branched.iter().cloned());
        for inputs in self.to_sinks.values() {
            out.extend(inputs.iter().cloned());
        }
        out
    }
}

/// All per-function summaries, parallel to `CallGraph::fns`.
#[derive(Debug, Default)]
pub struct Summaries {
    /// `fns[i]` summarizes `graph.fns[i]`.
    pub fns: Vec<FnSummary>,
    /// Fixpoint passes until the summaries stabilized (reported in the
    /// audit stats line and the CI job summary).
    pub iterations: usize,
}

impl Summaries {
    /// Computes summaries for every graph function to a fixpoint.
    pub fn build(
        files: &[SourceFile],
        asts: &[ast::File],
        tables: &[StructTable],
        merged: &StructTable,
        fn_returns: &BTreeMap<String, Vec<String>>,
        graph: &CallGraph,
    ) -> Summaries {
        let mut cur: Vec<FnSummary> = Vec::with_capacity(graph.fns.len());
        for_each_graph_fn(files, asts, &mut |_, _, _, fd| {
            cur.push(FnSummary {
                has_self: fd.params.first().is_some_and(|p| p.pats == ["self"]),
                ..FnSummary::default()
            });
        });
        let mut iterations = 0usize;
        // The summary lattice is finite (inputs per fn are bounded by its
        // parameter and field count), so this terminates; the cap guards
        // against a non-monotone bug looping forever.
        while iterations < 64 {
            iterations += 1;
            let mut changed = false;
            for_each_graph_fn(files, asts, &mut |node, fidx, impl_ty, fd| {
                let computed = summarize_fn(
                    fd, fidx, impl_ty, tables, merged, fn_returns, graph, &cur, node,
                );
                if computed != cur[node] {
                    cur[node] = computed;
                    changed = true;
                }
            });
            if !changed {
                break;
            }
        }
        Summaries {
            fns: cur,
            iterations,
        }
    }

    /// Which value slots of a call are consumed (reach the callee's
    /// return, stored state, a branch, or a sink) by at least one
    /// candidate. Slots are `[receiver, args...]` for method calls and
    /// `[args...]` for path calls. A call with no workspace candidate
    /// conservatively consumes every slot — the analysis cannot see
    /// into std or shims, so "does not escape" is never claimed there.
    pub fn consumed_slots(
        &self,
        graph: &CallGraph,
        name: &str,
        recv_ty: Option<&str>,
        is_method: bool,
        nslots: usize,
    ) -> Vec<bool> {
        let cands = graph.candidates(name, recv_ty);
        if cands.is_empty() {
            return vec![true; nslots];
        }
        let mut out = vec![false; nslots];
        for &c in &cands {
            let cs = &self.fns[c];
            for input in cs.consumed() {
                if let Some(slot) = slot_of_input(&input, cs.has_self, is_method) {
                    if slot < nslots {
                        out[slot] = true;
                    }
                }
            }
        }
        out
    }

    /// Which value slots of a call flow into the callee's *return
    /// value* (same slot convention as [`Summaries::consumed_slots`]).
    /// Callers use this to decide which argument labels the call result
    /// carries; with no workspace candidate every slot flows through.
    pub fn ret_slots(
        &self,
        graph: &CallGraph,
        name: &str,
        recv_ty: Option<&str>,
        is_method: bool,
        nslots: usize,
    ) -> Vec<bool> {
        let cands = graph.candidates(name, recv_ty);
        if cands.is_empty() {
            return vec![true; nslots];
        }
        let mut out = vec![false; nslots];
        for &c in &cands {
            let cs = &self.fns[c];
            for input in &cs.to_ret {
                if let Some(slot) = slot_of_input(input, cs.has_self, is_method) {
                    if slot < nslots {
                        out[slot] = true;
                    }
                }
            }
        }
        out
    }
}

/// Maps a callee input to the caller-side slot index it binds to, given
/// the callee's `self`-ness and the call shape. `None` when the input
/// has no caller-visible slot (a `self` field of an associated call).
fn slot_of_input(input: &Input, callee_has_self: bool, is_method: bool) -> Option<usize> {
    match input {
        Input::SelfField(_) => (callee_has_self && is_method).then_some(0),
        Input::Param(i) => {
            let i = *i as usize;
            if is_method && !callee_has_self {
                // `args.iter().map(f)`-style: no receiver slot for the
                // callee's params; shift past the receiver.
                Some(i + 1)
            } else {
                Some(i)
            }
        }
    }
}

/// Projects the summary-layer inputs out of a label set (tags from rule
/// vocabularies are ignored).
pub fn inputs_of(labels: &Labels) -> Inputs {
    labels
        .iter()
        .filter_map(|l| match l {
            Label::Param(i) => Some(Input::Param(*i)),
            Label::Field(f) => Some(Input::SelfField(f.clone())),
            Label::Tag(_) => None,
        })
        .collect()
}

/// Runs the summary taint spec over one function body.
#[allow(clippy::too_many_arguments)]
fn summarize_fn(
    fd: &FnDef,
    fidx: usize,
    impl_ty: Option<&str>,
    tables: &[StructTable],
    merged: &StructTable,
    fn_returns: &BTreeMap<String, Vec<String>>,
    graph: &CallGraph,
    cur: &[FnSummary],
    node: usize,
) -> FnSummary {
    let mut env = TaintEnv::default();
    let mut params = BTreeSet::new();
    let mut self_idx = None;
    for (i, p) in fd.params.iter().enumerate() {
        for pat in &p.pats {
            env.bind(pat, [Label::Param(i as u16)].into());
            params.insert(pat.clone());
            if pat == "self" {
                self_idx = Some(i as u16);
            }
        }
    }
    let mut spec = SummarySpec {
        tenv: fn_type_env(fd, fn_returns),
        self_fields: impl_ty.and_then(|ty| tables[fidx].get(ty)),
        merged,
        fn_returns,
        graph,
        cur,
        params,
        self_idx,
        out: FnSummary {
            has_self: cur[node].has_self,
            ..FnSummary::default()
        },
    };
    dataflow::run_fn(&mut spec, fd, env);
    spec.out
}

/// The [`TaintSpec`] that computes one function's [`FnSummary`]: params
/// seed `Label::Param`, `self.field` reads become `Label::Field`, and
/// call/method hooks substitute callee summaries from the previous
/// fixpoint round.
struct SummarySpec<'s> {
    tenv: TypeEnv,
    self_fields: Option<&'s BTreeMap<String, Vec<String>>>,
    merged: &'s StructTable,
    fn_returns: &'s BTreeMap<String, Vec<String>>,
    graph: &'s CallGraph,
    cur: &'s [FnSummary],
    /// Declared parameter names (incl. `self`).
    params: BTreeSet<String>,
    /// Index of the `self` parameter, when present.
    self_idx: Option<u16>,
    out: FnSummary,
}

impl<'s> SummarySpec<'s> {
    /// First receiver-type identifier usable for candidate narrowing.
    fn recv_type(&self, e: &Expr) -> Option<String> {
        expr_type_deep(
            e,
            &self.tenv,
            self.self_fields,
            self.fn_returns,
            self.merged,
        )
        .into_iter()
        .find(|i| i.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
    }

    fn record_sink(&mut self, kind: &'static str, labels: &Labels) {
        let inputs = inputs_of(labels);
        if !inputs.is_empty() {
            self.out.to_sinks.entry(kind).or_default().extend(inputs);
        }
    }

    /// Applies every candidate's summary at a call site: returns the
    /// labels flowing to the call's value, and folds callee-side state /
    /// branch / sink flows (mapped back through the argument binding)
    /// into this function's summary.
    fn apply_candidates(&mut self, cands: &[usize], is_method: bool, slots: &[Labels]) -> Labels {
        let mut ret = Labels::new();
        for &c in cands {
            let cs = &self.cur[c];
            let map = |inputs: &Inputs| -> Labels {
                let mut out = Labels::new();
                for input in inputs {
                    if let Some(slot) = slot_of_input(input, cs.has_self, is_method) {
                        if let Some(labels) = slots.get(slot) {
                            out.extend(labels.iter().cloned());
                        }
                    }
                }
                out
            };
            ret.extend(map(&cs.to_ret));
            let to_state = inputs_of(&map(&cs.to_state));
            let branched = inputs_of(&map(&cs.branched));
            let sink_flows: Vec<(&'static str, Inputs)> = cs
                .to_sinks
                .iter()
                .map(|(kind, inputs)| (*kind, inputs_of(&map(inputs))))
                .collect();
            self.out.to_state.extend(to_state);
            self.out.branched.extend(branched);
            for (kind, inputs) in sink_flows {
                if !inputs.is_empty() {
                    self.out.to_sinks.entry(kind).or_default().extend(inputs);
                }
            }
        }
        ret
    }

    /// True when `e` is a plain local variable (not a parameter).
    fn local_var<'e>(&self, e: &'e Expr) -> Option<&'e str> {
        let v = root_var(e)?;
        (!self.params.contains(v)).then_some(v)
    }
}

/// The base variable under a chain of field/index/ref projections.
fn root_var(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path { .. } => e.as_var(),
        Expr::Field { recv, .. } | Expr::Index { recv, .. } | Expr::Unary { expr: recv, .. } => {
            root_var(recv)
        }
        _ => None,
    }
}

impl TaintSpec for SummarySpec<'_> {
    fn field(&mut self, e: &Expr, recv: Labels, _env: &mut TaintEnv) -> Labels {
        if let Expr::Field { name, .. } = e {
            if let Some(si) = self.self_idx {
                if recv.contains(&Label::Param(si)) {
                    return [Label::Field(name.clone())].into();
                }
            }
        }
        recv
    }

    fn method(&mut self, e: &Expr, recv: Labels, args: &[Labels], env: &mut TaintEnv) -> Labels {
        let Expr::Method {
            recv: recv_e, name, ..
        } = e
        else {
            return args
                .iter()
                .fold(recv, |acc, a| dataflow::union(acc, a.clone()));
        };
        let mut slots = Vec::with_capacity(args.len() + 1);
        slots.push(recv.clone());
        slots.extend(args.iter().cloned());
        let all: Labels = slots.iter().cloned().fold(Labels::new(), dataflow::union);
        if TRACE_SINKS.contains(&name.as_str()) {
            self.record_sink(SINK_TRACE, &all);
            return Labels::new();
        }
        if name.contains("checksum") {
            self.record_sink(SINK_CHECKSUM, &all);
            return Labels::new();
        }
        let recv_ty = self.recv_type(recv_e);
        let cands = self.graph.candidates(name, recv_ty.as_deref());
        if !cands.is_empty() {
            return self.apply_candidates(&cands, true, &slots);
        }
        if MUTATORS.contains(&name.as_str()) {
            // Unresolved `recv.push(x)`: the arguments now live in the
            // receiver. A local accumulator absorbs them (they escape
            // only if it does); anything else is stored state.
            let arg_all: Labels = args.iter().cloned().fold(Labels::new(), dataflow::union);
            match self.local_var(recv_e) {
                Some(v) => env.add(v, &arg_all),
                None => self.out.to_state.extend(inputs_of(&arg_all)),
            }
            return Labels::new();
        }
        all
    }

    fn call(&mut self, e: &Expr, args: &[Labels], _env: &mut TaintEnv) -> Labels {
        let all: Labels = args.iter().cloned().fold(Labels::new(), dataflow::union);
        let Expr::Call { callee, .. } = e else {
            return all;
        };
        let Expr::Path { segs, .. } = callee.as_ref() else {
            return all;
        };
        let Some(name) = segs.last() else { return all };
        if TRACE_SINKS.contains(&name.as_str()) {
            self.record_sink(SINK_TRACE, &all);
            return Labels::new();
        }
        if name.contains("checksum") {
            self.record_sink(SINK_CHECKSUM, &all);
            return Labels::new();
        }
        let qual_ty = (segs.len() >= 2).then(|| segs[segs.len() - 2].clone());
        let cands = self.graph.candidates(name, qual_ty.as_deref());
        if !cands.is_empty() {
            return self.apply_candidates(&cands, false, args);
        }
        all
    }

    fn struct_lit(&mut self, e: &Expr, fields: &[(String, Labels)], _env: &mut TaintEnv) -> Labels {
        let all: Labels = fields
            .iter()
            .map(|(_, l)| l.clone())
            .fold(Labels::new(), dataflow::union);
        if let Expr::StructLit { segs, .. } = e {
            if segs.last().is_some_and(|s| s == "RunReport") {
                self.record_sink(SINK_REPORT, &all);
            }
        }
        all
    }

    fn on_branch(&mut self, _e: &Expr, labels: &Labels) {
        self.out.branched.extend(inputs_of(labels));
    }

    fn on_return(&mut self, _e: &Expr, labels: &Labels) {
        self.out.to_ret.extend(inputs_of(labels));
    }

    fn on_store(&mut self, lhs: &Expr, _rhs: &Expr, labels: &Labels, env: &mut TaintEnv) {
        // A store through a local projection (`local.field = v`,
        // `local[i] = v`) stays in the function; through `self`, a
        // parameter, or a temporary it escapes.
        match self.local_var(lhs) {
            Some(v) => {
                let v = v.to_string();
                env.add(&v, labels);
            }
            None => self.out.to_state.extend(inputs_of(labels)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Workspace;
    use crate::source::{FileKind, SourceFile};

    fn ws_of(src: &str) -> (Vec<SourceFile>, ()) {
        let files = vec![SourceFile::parse(
            "crates/gh-x/src/lib.rs",
            "gh-x",
            FileKind::Lib,
            src,
        )];
        (files, ())
    }

    fn summary_of<'w>(ws: &'w Workspace<'_>, name: &str) -> &'w FnSummary {
        let i = ws
            .graph
            .fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"));
        &ws.summaries.fns[i]
    }

    #[test]
    fn param_to_return_is_summarized() {
        let (files, ()) = ws_of("pub fn id(x: u64) -> u64 { x }");
        let ws = Workspace::build(&files);
        assert!(summary_of(&ws, "id").to_ret.contains(&Input::Param(0)));
    }

    #[test]
    fn self_field_to_return_is_summarized() {
        let src = "struct S { n: u64 }\nimpl S { pub fn get(&self) -> u64 { self.n } }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        assert!(summary_of(&ws, "get")
            .to_ret
            .contains(&Input::SelfField("n".into())));
    }

    #[test]
    fn flow_crosses_one_call() {
        let src = "pub fn inner(x: u64) -> u64 { x + 1 }\n\
                   pub fn outer(y: u64) -> u64 { inner(y) }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        assert!(summary_of(&ws, "outer").to_ret.contains(&Input::Param(0)));
    }

    #[test]
    fn flow_crosses_three_calls_via_fixpoint() {
        let src = "pub fn a(x: u64) -> u64 { x }\n\
                   pub fn b(x: u64) -> u64 { a(x) }\n\
                   pub fn c(x: u64) -> u64 { b(x) }\n\
                   pub fn d(x: u64) -> u64 { c(x) }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        assert!(summary_of(&ws, "d").to_ret.contains(&Input::Param(0)));
        assert!(ws.summaries.iterations >= 2, "chain needs multiple rounds");
    }

    #[test]
    fn branch_on_param_is_control_consumption() {
        let src = "pub fn f(flag: bool) -> u64 { if flag { 1 } else { 2 } }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        let s = summary_of(&ws, "f");
        assert!(s.branched.contains(&Input::Param(0)));
        assert!(!s.to_ret.contains(&Input::Param(0)), "no value flow");
    }

    #[test]
    fn match_scrutinee_binding_flows_to_ret() {
        let src = "pub fn f(o: Option<u64>) -> u64 { match o { Some(v) => v, None => 0 } }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        let s = summary_of(&ws, "f");
        assert!(s.to_ret.contains(&Input::Param(0)));
        assert!(s.branched.contains(&Input::Param(0)));
    }

    #[test]
    fn trace_sink_is_recorded_transitively() {
        let src = "pub fn log(bus: &Bus, v: u64) { bus.emit(v); }\n\
                   pub fn run(bus: &Bus, n: u64) { log(bus, n); }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        let run = summary_of(&ws, "run");
        assert!(run.to_sinks[SINK_TRACE].contains(&Input::Param(1)));
    }

    #[test]
    fn report_struct_lit_is_a_sink() {
        let src = "pub fn pack(total: u64) -> RunReport { RunReport { total } }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        let s = summary_of(&ws, "pack");
        assert!(s.to_sinks[SINK_REPORT].contains(&Input::Param(0)));
    }

    #[test]
    fn store_into_self_is_state() {
        let src = "struct S { n: u64 }\nimpl S { pub fn set(&mut self, v: u64) { self.n = v; } }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        assert!(summary_of(&ws, "set").to_state.contains(&Input::Param(1)));
    }

    #[test]
    fn local_accumulator_does_not_escape_by_itself() {
        let src = "pub fn f(x: u64) { let mut v = Vec::new(); v.push(x); }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        let s = summary_of(&ws, "f");
        assert!(s.consumed().is_empty(), "local vec never leaves: {s:?}");
    }

    #[test]
    fn local_accumulator_escapes_through_return() {
        let src = "pub fn f(x: u64) -> Vec<u64> { let mut v = Vec::new(); v.push(x); v }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        assert!(summary_of(&ws, "f").to_ret.contains(&Input::Param(0)));
    }

    #[test]
    fn consumed_slots_are_conservative_for_unknown_callees() {
        let (files, ()) = ws_of("pub fn f() {}");
        let ws = Workspace::build(&files);
        assert_eq!(
            ws.summaries
                .consumed_slots(&ws.graph, "no_such_fn", None, false, 2),
            vec![true, true]
        );
    }

    #[test]
    fn consumed_slots_track_candidate_summaries() {
        let src = "pub fn keep(x: u64) -> u64 { x }\npub fn ignore(_x: u64) -> u64 { 0 }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        assert_eq!(
            ws.summaries
                .consumed_slots(&ws.graph, "keep", None, false, 1),
            vec![true]
        );
        assert_eq!(
            ws.summaries
                .consumed_slots(&ws.graph, "ignore", None, false, 1),
            vec![false]
        );
    }

    #[test]
    fn method_receiver_maps_to_self() {
        let src = "struct S { n: u64 }\n\
                   impl S { pub fn total(&self) -> u64 { self.n } }\n\
                   pub fn read(s: &S) -> u64 { s.total() }";
        let (files, ()) = ws_of(src);
        let ws = Workspace::build(&files);
        assert!(summary_of(&ws, "read").to_ret.contains(&Input::Param(0)));
    }
}
