//! `gh-audit` CLI: scan the workspace, print findings, gate CI.
//!
//! ```text
//! gh-audit [--root <dir>] [--rule <name>[,<name>...]]...
//!          [--format text|json|sarif] [--deny]
//!          [--baseline <file>] [--write-baseline <file>] [--list-rules]
//! ```
//!
//! Findings go to stdout in the selected format; the `scanned N files`
//! stats line goes to stderr so machine formats stay parseable. Timing is
//! left to the caller (CI) — the audit binary itself reads no clocks, by
//! its own `wall-clock` rules.
//!
//! With `--baseline <file>`, findings recorded in the file are dropped
//! before reporting (and before the `--deny` gate), so CI fails only on
//! *new* findings; `--write-baseline <file>` records the current
//! findings and exits 0. See [`gh_audit::baseline`].
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 new findings
//! with `--deny`, 2 usage error.

use gh_audit::engine::audit_workspace_with_stats;
use gh_audit::{report, rules, AuditConfig, Baseline};
use std::process::ExitCode;

const USAGE: &str = "usage: gh-audit [--root <dir>] [--rule <name>[,<name>...]]... \
                     [--format text|json|sarif] [--deny] \
                     [--baseline <file>] [--write-baseline <file>] [--list-rules]";

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut cfg = AuditConfig::new(std::env::current_dir().unwrap_or_else(|_| ".".into()));
    let mut deny = false;
    let mut format = Format::Text;
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => cfg.root = dir.into(),
                None => return usage("--root needs a directory"),
            },
            "--rule" => match args.next() {
                // Comma-separated lists let CI request a rule subset in
                // one flag: `--rule lock-discipline,session-isolation`.
                Some(names) => {
                    for name in names.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                        if !rules::rule_names().contains(&name) {
                            return usage(&format!("unknown rule '{name}' (try --list-rules)"));
                        }
                        cfg.only_rules.insert(name.to_string());
                    }
                }
                None => return usage("--rule needs a rule name"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(p),
                None => return usage("--baseline needs a file path"),
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(p),
                None => return usage("--write-baseline needs a file path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    return usage(&format!("unknown format '{other}' (text, json, sarif)"))
                }
                None => return usage("--format needs one of: text, json, sarif"),
            },
            "--list-rules" => {
                for r in rules::all_rules() {
                    println!("{:<38} {}", r.name(), r.describe());
                }
                for r in rules::flow_rules() {
                    println!("{:<38} {}", r.name(), r.describe());
                }
                println!(
                    "{:<38} every emitted gh-trace event kind is named by an exporter",
                    rules::trace_coverage::NAME
                );
                println!(
                    "{:<38} allow directives are well-formed and carry a reason",
                    gh_audit::engine::ALLOW_SYNTAX
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let baseline = match &baseline_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => Some(Baseline::parse(&text)),
            Err(e) => {
                eprintln!("gh-audit: cannot read baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    match audit_workspace_with_stats(&cfg) {
        Ok((findings, stats)) => {
            if let Some(p) = &write_baseline {
                if let Err(e) = std::fs::write(p, Baseline::render(&findings)) {
                    eprintln!("gh-audit: cannot write baseline {p}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "gh-audit: wrote baseline with {} finding(s) to {p}",
                    findings.len()
                );
                return ExitCode::SUCCESS;
            }
            let (findings, baselined) = match &baseline {
                Some(b) => b.partition(findings),
                None => (findings, 0),
            };
            let rendered = match format {
                Format::Text => report::render(&findings),
                Format::Json => report::render_json(&findings),
                Format::Sarif => report::render_sarif(&findings),
            };
            print!("{rendered}");
            // CI greps `scanned N files` — keep that prefix stable.
            let suppressed = if baselined > 0 {
                format!(" ({baselined} baselined)")
            } else {
                String::new()
            };
            eprintln!(
                "gh-audit: scanned {} files, {} finding(s){suppressed}, summary fixpoint in {} iteration(s)",
                stats.files_scanned,
                findings.len(),
                stats.summary_iterations
            );
            if deny && !findings.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("gh-audit: {msg}\n{USAGE}");
    ExitCode::from(2)
}
