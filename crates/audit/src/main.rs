//! `gh-audit` CLI: scan the workspace, print findings, gate CI.
//!
//! ```text
//! gh-audit [--root <dir>] [--rule <name>]... [--format text|json|sarif]
//!          [--deny] [--list-rules]
//! ```
//!
//! Findings go to stdout in the selected format; the `scanned N files`
//! stats line goes to stderr so machine formats stay parseable. Timing is
//! left to the caller (CI) — the audit binary itself reads no clocks, by
//! its own `wall-clock` rules.
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings with
//! `--deny`, 2 usage error.

use gh_audit::engine::audit_workspace_with_stats;
use gh_audit::{report, rules, AuditConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: gh-audit [--root <dir>] [--rule <name>]... \
                     [--format text|json|sarif] [--deny] [--list-rules]";

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut cfg = AuditConfig::new(std::env::current_dir().unwrap_or_else(|_| ".".into()));
    let mut deny = false;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => cfg.root = dir.into(),
                None => return usage("--root needs a directory"),
            },
            "--rule" => match args.next() {
                Some(name) => {
                    if !rules::rule_names().contains(&name.as_str()) {
                        return usage(&format!("unknown rule '{name}' (try --list-rules)"));
                    }
                    cfg.only_rules.insert(name);
                }
                None => return usage("--rule needs a rule name"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    return usage(&format!("unknown format '{other}' (text, json, sarif)"))
                }
                None => return usage("--format needs one of: text, json, sarif"),
            },
            "--list-rules" => {
                for r in rules::all_rules() {
                    println!("{:<38} {}", r.name(), r.describe());
                }
                for r in rules::flow_rules() {
                    println!("{:<38} {}", r.name(), r.describe());
                }
                println!(
                    "{:<38} every emitted gh-trace event kind is named by an exporter",
                    rules::trace_coverage::NAME
                );
                println!(
                    "{:<38} allow directives are well-formed and carry a reason",
                    gh_audit::engine::ALLOW_SYNTAX
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    match audit_workspace_with_stats(&cfg) {
        Ok((findings, stats)) => {
            let rendered = match format {
                Format::Text => report::render(&findings),
                Format::Json => report::render_json(&findings),
                Format::Sarif => report::render_sarif(&findings),
            };
            print!("{rendered}");
            eprintln!(
                "gh-audit: scanned {} files, {} finding(s)",
                stats.files_scanned,
                findings.len()
            );
            if deny && !findings.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("gh-audit: {msg}\n{USAGE}");
    ExitCode::from(2)
}
