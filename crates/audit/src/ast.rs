//! A small Rust AST, built by recursive descent over the [`crate::lexer`]
//! token stream.
//!
//! This is the v2 engine's middle layer: where the v1 rules pattern-matched
//! raw tokens, the flow rules (`epoch-coherence`, `unit-launder-flow`,
//! `wall-clock-taint`, `unordered-iter-flow`) need *structure* — which
//! expression is an argument of which call, what a `let` binds, where a
//! function body ends. The parser is deliberately partial: it understands
//! items (fns, impls, mods, structs), statements, and the expression forms
//! the dataflow pass interprets, and degrades everything else to
//! [`Expr::Opaque`] without ever failing. Like the lexer, it must accept
//! any input the compiler might later reject — an auditor that panics on a
//! syntax error is worse than one that under-reports.

use crate::lexer::{Tok, TokKind};

/// A parsed source file: its top-level items.
#[derive(Debug, Default)]
pub struct File {
    /// Items in source order.
    pub items: Vec<Item>,
}

/// A top-level or nested item the rules care about.
#[derive(Debug)]
pub enum Item {
    /// A function definition (free or associated — see [`ImplDef`]).
    Fn(FnDef),
    /// An `impl` (or `trait`) block and the items inside it.
    Impl(ImplDef),
    /// A `mod name { ... }` block.
    Mod(ModDef),
    /// A struct definition with named fields.
    Struct(StructDef),
}

/// An `impl Type`, `impl Trait for Type`, or `trait Name` block.
#[derive(Debug)]
pub struct ImplDef {
    /// The implementing type's final path segment (`PageTable` for
    /// `impl<K> mem::PageTable<K>`); the trait name for `trait` items.
    pub type_name: String,
    /// Items inside the block.
    pub items: Vec<Item>,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// A `mod name { ... }` item (inline only; `mod name;` has no body).
#[derive(Debug)]
pub struct ModDef {
    /// Module name.
    pub name: String,
    /// Items inside the module.
    pub items: Vec<Item>,
    /// 1-based line of the `mod` keyword.
    pub line: u32,
}

/// A struct with named fields (tuple and unit structs parse to an empty
/// field list).
#[derive(Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// `(field_name, identifiers appearing in the field's type)`.
    pub fields: Vec<(String, Vec<String>)>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Whether the declaration carries `pub` (any visibility form).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Identifiers appearing in the return type (empty when none).
    pub ret: Vec<String>,
    /// The body; `None` for trait-method declarations.
    pub body: Option<Block>,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// Binding identifiers in the pattern (`self` for self params;
    /// several for destructuring patterns).
    pub pats: Vec<String>,
    /// Identifiers appearing in the type annotation.
    pub ty: Vec<String>,
}

/// A `{ ... }` block: statements plus an optional trailing expression
/// (the block's value).
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Trailing expression without a semicolon, if any (boxed to break
    /// the `Block`/`Expr` layout cycle).
    pub tail: Option<Box<Expr>>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pats>[: ty] = init;`
    Let {
        /// Binding identifiers in the pattern.
        pats: Vec<String>,
        /// Identifiers in the type annotation (empty when inferred).
        ty: Vec<String>,
        /// Initializer, if present.
        init: Option<Expr>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement (with or without `;`).
    Expr(Expr),
    /// A nested item (fn/struct/mod/impl inside a body).
    Item(Box<Item>),
}

/// One `match` arm.
#[derive(Debug)]
pub struct Arm {
    /// Binding identifiers in the arm's pattern(s).
    pub pats: Vec<String>,
    /// The arm body.
    pub body: Expr,
}

/// An expression. Every variant carries the 1-based line it starts on.
#[derive(Debug)]
pub enum Expr {
    /// A (possibly multi-segment) path: `x`, `self`, `Bytes::new`.
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// Any literal (int/float/string/char).
    Lit {
        /// Source line.
        line: u32,
    },
    /// Prefix `&`/`&mut`/`*`/`-`/`!`.
    Unary {
        /// Operand.
        expr: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Infix binary operation (including `..`/`..=` ranges).
    Binary {
        /// Operator text.
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `lhs = rhs` or compound `lhs op= rhs`.
    Assign {
        /// `=`, `+=`, `-=`, ...
        op: String,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `expr as Type`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Identifiers in the target type.
        ty: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// `callee(args)` where callee is an arbitrary expression (usually a
    /// path).
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `recv.name::<T>(args)`.
    Method {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Identifiers in the turbofish, when present.
        turbofish: Vec<String>,
        /// Arguments (receiver excluded).
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `recv.name` (also tuple fields: name is `"0"`, `"1"`, ...).
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `recv[idx]`.
    Index {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Index expression.
        idx: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `Path { field: expr, .. }`.
    StructLit {
        /// Path segments of the struct name.
        segs: Vec<String>,
        /// `(field_name, value)`; the functional-update base uses the
        /// field name `".."`.
        fields: Vec<(String, Expr)>,
        /// Source line.
        line: u32,
    },
    /// `name!(args)` — arguments are parsed best-effort as expressions.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Parsed arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `(a, b, ...)`.
    Tuple {
        /// Elements.
        items: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `[a, b, ...]` or `[x; n]`.
    Array {
        /// Elements (both forms).
        items: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// A bare `{ ... }` block in expression position (incl. `unsafe`).
    BlockExpr {
        /// The block.
        block: Block,
        /// Source line.
        line: u32,
    },
    /// `if [let pat =] cond { then } [else ...]`.
    If {
        /// Binding identifiers when this is `if let`.
        pat: Vec<String>,
        /// Condition (the `let` scrutinee for `if let`).
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// `else` expression (a block or another `if`).
        else_: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms in order.
        arms: Vec<Arm>,
        /// Source line.
        line: u32,
    },
    /// `for pats in iter { body }`.
    For {
        /// Binding identifiers in the loop pattern.
        pats: Vec<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// `while [let pat =] cond { body }`.
    While {
        /// Binding identifiers when this is `while let`.
        pat: Vec<String>,
        /// Condition.
        cond: Box<Expr>,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// `loop { body }`.
    Loop {
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Parameter binding identifiers.
        params: Vec<String>,
        /// Closure body.
        body: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `return [expr]`.
    Ret {
        /// Returned value, if any.
        expr: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// `break [expr]` (not a function-level escape — kept distinct from
    /// [`Expr::Ret`] so return-sinks don't fire on loop breaks).
    Break {
        /// Break value, if any.
        expr: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// Anything the parser does not model.
    Opaque {
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// The 1-based line the expression starts on.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Call { line, .. }
            | Expr::Method { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::BlockExpr { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::For { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Ret { line, .. }
            | Expr::Break { line, .. }
            | Expr::Opaque { line } => *line,
        }
    }

    /// When this is a plain single-segment path, its identifier.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].as_str()),
            _ => None,
        }
    }
}

/// Parses a token stream (comments are skipped internally) into a [`File`].
pub fn parse(tokens: &[Tok]) -> File {
    let code: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut p = Parser { t: code, pos: 0 };
    File {
        items: p.parse_items(true),
    }
}

/// Item-starting keywords recognized inside blocks.
const ITEM_KEYWORDS: [&str; 10] = [
    "fn",
    "struct",
    "enum",
    "impl",
    "mod",
    "trait",
    "use",
    "static",
    "type",
    "macro_rules",
];

/// Keywords that can never be pattern bindings.
const NON_BINDING: [&str; 10] = [
    "mut", "ref", "box", "_", "true", "false", "if", "in", "as", "dyn",
];

struct Parser<'a> {
    t: Vec<&'a Tok>,
    pos: usize,
}

impl<'a> Parser<'a> {
    // ------------------------------------------------------- primitives --

    fn peek(&self) -> Option<&'a Tok> {
        self.t.get(self.pos).copied()
    }

    fn peek_at(&self, n: usize) -> Option<&'a Tok> {
        self.t.get(self.pos + n).copied()
    }

    fn line(&self) -> u32 {
        self.peek().map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.t.get(self.pos).copied();
        self.pos += 1;
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    fn at_ident(&self, id: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(id))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, id: &str) -> bool {
        if self.at_ident(id) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Skips one balanced `open ... close` group, assuming the cursor is on
    /// `open`. Tolerates EOF.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        if !self.eat_punct(open) {
            return;
        }
        let mut depth = 1i32;
        while depth > 0 {
            match self.bump() {
                None => return,
                Some(t) if t.is_punct(open) => depth += 1,
                Some(t) if t.is_punct(close) => depth -= 1,
                _ => {}
            }
        }
    }

    /// Skips a `<...>` generic group (cursor on `<`), counting angles only
    /// at bracket depth 0 and treating `>=` as closing.
    fn skip_angles(&mut self) {
        if !self.eat_punct("<") {
            return;
        }
        let mut angle = 1i32;
        let mut brack = 0i32;
        while angle > 0 {
            let Some(t) = self.bump() else { return };
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "(" | "[" | "{" => brack += 1,
                ")" | "]" | "}" => brack -= 1,
                "<" if brack == 0 => angle += 1,
                ">" | ">=" if brack == 0 => angle -= 1,
                _ => {}
            }
        }
    }

    /// Skips an attribute `#[...]` / `#![...]`, returning true when it
    /// mentions `cfg(test)`-style contents (unused today; the engine's
    /// line-range test detection is authoritative).
    fn skip_attr(&mut self) {
        if !self.eat_punct("#") {
            return;
        }
        self.eat_punct("!");
        self.skip_balanced("[", "]");
    }

    /// Consumes to the `;` ending a skipped item, respecting nesting.
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            return; // stray closer: let the caller see it
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    // ------------------------------------------------------------ items --

    /// Parses items until EOF (`top` true) or a closing `}`.
    fn parse_items(&mut self, top: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            while self.at_punct("#") {
                self.skip_attr();
            }
            let Some(t) = self.peek() else { break };
            if t.is_punct("}") && !top {
                break;
            }
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
        }
        items
    }

    /// Parses one item, or consumes one token on unrecognized input.
    fn parse_item(&mut self) -> Option<Item> {
        let mut is_pub = false;
        loop {
            if self.eat_ident("pub") {
                is_pub = true;
                if self.at_punct("(") {
                    self.skip_balanced("(", ")");
                }
                continue;
            }
            if self.at_ident("unsafe") || self.at_ident("async") || self.at_ident("default") {
                self.pos += 1;
                continue;
            }
            if self.at_ident("extern") {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.kind == TokKind::Str) {
                    self.pos += 1; // extern "C"
                }
                if self.at_punct("{") {
                    self.skip_balanced("{", "}");
                    return None;
                }
                if self.at_ident("crate") {
                    self.skip_to_semi();
                    return None;
                }
                continue;
            }
            if self.at_ident("const") {
                // `const fn` is a modifier; `const NAME: ...` is an item.
                if self.peek_at(1).is_some_and(|t| t.is_ident("fn")) {
                    self.pos += 1;
                    continue;
                }
                self.skip_to_semi();
                return None;
            }
            break;
        }
        let t = self.peek()?;
        if t.is_ident("fn") {
            return Some(Item::Fn(self.parse_fn(is_pub)));
        }
        if t.is_ident("struct") {
            return self.parse_struct().map(Item::Struct);
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            return Some(Item::Impl(self.parse_impl()));
        }
        if t.is_ident("mod") {
            return self.parse_mod().map(Item::Mod);
        }
        if t.is_ident("enum") || t.is_ident("union") {
            self.pos += 1;
            self.bump(); // name
            if self.at_punct("<") {
                self.skip_angles();
            }
            while !(self.at_punct("{") || self.at_punct(";")) && self.peek().is_some() {
                self.pos += 1;
            }
            if self.at_punct("{") {
                self.skip_balanced("{", "}");
            } else {
                self.eat_punct(";");
            }
            return None;
        }
        if t.is_ident("use") || t.is_ident("static") || t.is_ident("type") {
            self.skip_to_semi();
            return None;
        }
        if t.is_ident("macro_rules") {
            self.pos += 1;
            self.eat_punct("!");
            self.bump(); // name
            self.skip_balanced("{", "}");
            return None;
        }
        // Unrecognized: consume one token and keep going.
        self.pos += 1;
        None
    }

    fn parse_fn(&mut self, is_pub: bool) -> FnDef {
        let line = self.line();
        self.eat_ident("fn");
        let name = self
            .peek()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if !name.is_empty() {
            self.pos += 1;
        }
        if self.at_punct("<") {
            self.skip_angles();
        }
        let params = self.parse_params();
        let mut ret = Vec::new();
        if self.eat_punct("->") {
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" | ";" if depth == 0 => break,
                        _ => {}
                    }
                } else if t.is_ident("where") && depth == 0 {
                    break;
                } else if t.kind == TokKind::Ident {
                    ret.push(t.text.clone());
                }
                self.pos += 1;
            }
        }
        if self.at_ident("where") {
            while !(self.at_punct("{") || self.at_punct(";")) && self.peek().is_some() {
                self.pos += 1;
            }
        }
        let body = if self.at_punct("{") {
            Some(self.parse_block())
        } else {
            self.eat_punct(";");
            None
        };
        FnDef {
            name,
            is_pub,
            line,
            params,
            ret,
            body,
        }
    }

    fn parse_params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        if !self.eat_punct("(") {
            return params;
        }
        let mut cur: Vec<&Tok> = Vec::new();
        let mut depth = 1i32;
        let mut angle = 0i32;
        while let Some(t) = self.bump() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "<" => angle += 1,
                    ">" | ">=" => angle -= 1,
                    "," if depth == 1 && angle == 0 => {
                        if let Some(p) = param_from_tokens(&cur) {
                            params.push(p);
                        }
                        cur.clear();
                        continue;
                    }
                    _ => {}
                }
            }
            cur.push(t);
        }
        if let Some(p) = param_from_tokens(&cur) {
            params.push(p);
        }
        params
    }

    fn parse_struct(&mut self) -> Option<StructDef> {
        let line = self.line();
        self.eat_ident("struct");
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        if self.at_punct("<") {
            self.skip_angles();
        }
        if self.at_ident("where") {
            while !(self.at_punct("{") || self.at_punct(";")) && self.peek().is_some() {
                self.pos += 1;
            }
        }
        let mut fields = Vec::new();
        if self.at_punct("(") {
            self.skip_balanced("(", ")");
            self.eat_punct(";");
        } else if self.eat_punct("{") {
            loop {
                while self.at_punct("#") {
                    self.skip_attr();
                }
                if self.eat_punct("}") || self.peek().is_none() {
                    break;
                }
                if self.eat_ident("pub") && self.at_punct("(") {
                    self.skip_balanced("(", ")");
                }
                let Some(fname) = self.peek().filter(|t| t.kind == TokKind::Ident) else {
                    self.pos += 1;
                    continue;
                };
                let fname = fname.text.clone();
                self.pos += 1;
                if !self.eat_punct(":") {
                    continue;
                }
                let mut ty = Vec::new();
                let mut depth = 0i32;
                let mut angle = 0i32;
                while let Some(t) = self.peek() {
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "<" => angle += 1,
                            ">" | ">=" => angle -= 1,
                            "," if depth == 0 && angle <= 0 => {
                                self.pos += 1;
                                break;
                            }
                            "}" if depth == 0 => break,
                            _ => {}
                        }
                    } else if t.kind == TokKind::Ident {
                        ty.push(t.text.clone());
                    }
                    self.pos += 1;
                }
                fields.push((fname, ty));
            }
        } else {
            self.eat_punct(";");
        }
        Some(StructDef { name, fields, line })
    }

    fn parse_impl(&mut self) -> ImplDef {
        let line = self.line();
        let _ = self.eat_ident("impl") || self.eat_ident("trait");
        if self.at_punct("<") {
            self.skip_angles();
        }
        // Collect path segments up to `{` / `where`; an intervening `for`
        // restarts the collection (`impl Trait for Type`).
        let mut segs: Vec<String> = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_punct("{") || t.is_ident("where") {
                break;
            }
            if t.is_ident("for") {
                segs.clear();
                self.pos += 1;
                continue;
            }
            if t.is_punct("<") {
                self.skip_angles();
                continue;
            }
            if t.kind == TokKind::Ident {
                segs.push(t.text.clone());
            }
            self.pos += 1;
        }
        if self.at_ident("where") {
            while !self.at_punct("{") && self.peek().is_some() {
                self.pos += 1;
            }
        }
        let type_name = segs.last().cloned().unwrap_or_default();
        let items = if self.eat_punct("{") {
            let items = self.parse_items(false);
            self.eat_punct("}");
            items
        } else {
            Vec::new()
        };
        ImplDef {
            type_name,
            items,
            line,
        }
    }

    fn parse_mod(&mut self) -> Option<ModDef> {
        let line = self.line();
        self.eat_ident("mod");
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        if self.eat_punct(";") {
            return None;
        }
        if !self.eat_punct("{") {
            return None;
        }
        let items = self.parse_items(false);
        self.eat_punct("}");
        Some(ModDef { name, items, line })
    }

    // ------------------------------------------------------- statements --

    /// Parses a `{ ... }` block (cursor on `{`).
    fn parse_block(&mut self) -> Block {
        let mut block = Block::default();
        if !self.eat_punct("{") {
            return block;
        }
        loop {
            while self.at_punct("#") {
                self.skip_attr();
            }
            let Some(t) = self.peek() else { break };
            if t.is_punct("}") {
                self.pos += 1;
                break;
            }
            if t.is_punct(";") {
                self.pos += 1;
                continue;
            }
            if t.is_ident("let") {
                block.stmts.push(self.parse_let());
                continue;
            }
            if t.is_ident("const") && !self.peek_at(1).is_some_and(|n| n.is_ident("fn")) {
                self.skip_to_semi();
                continue;
            }
            let item_start = ITEM_KEYWORDS.iter().any(|k| t.is_ident(k))
                || (t.is_ident("pub") && self.peek_at(1).is_some_and(|n| n.kind == TokKind::Ident));
            if item_start {
                if let Some(item) = self.parse_item() {
                    block.stmts.push(Stmt::Item(Box::new(item)));
                }
                continue;
            }
            let before = self.pos;
            let e = self.parse_expr(false);
            if self.pos == before {
                self.pos += 1; // safety: always make progress
                continue;
            }
            if self.eat_punct(";") {
                block.stmts.push(Stmt::Expr(e));
            } else if self.at_punct("}") || self.peek().is_none() {
                block.tail = Some(Box::new(e));
            } else {
                block.stmts.push(Stmt::Expr(e));
            }
        }
        block
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.eat_ident("let");
        let pats = self.parse_pattern(&[":", "=", ";"]);
        let mut ty = Vec::new();
        if self.eat_punct(":") {
            let mut depth = 0i32;
            let mut angle = 0i32;
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "<" => angle += 1,
                        ">" | ">=" => angle -= 1,
                        "=" | ";" if depth == 0 && angle <= 0 => break,
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident {
                    ty.push(t.text.clone());
                }
                self.pos += 1;
            }
        }
        let init = if self.eat_punct("=") {
            Some(self.parse_expr(false))
        } else {
            None
        };
        // let-else diverging tail.
        if self.eat_ident("else") && self.at_punct("{") {
            self.skip_balanced("{", "}");
        }
        self.eat_punct(";");
        Stmt::Let {
            pats,
            ty,
            init,
            line,
        }
    }

    /// Collects binding identifiers of a pattern, consuming tokens until
    /// one of `stops` appears at bracket depth 0 (the stop token is not
    /// consumed). Heuristic: an identifier binds unless it is a keyword,
    /// starts a path (`seg::`), names a call (`Tuple(`), is a struct
    /// field key (`name:`), or is capitalized (an enum/struct name).
    fn parse_pattern(&mut self, stops: &[&str]) -> Vec<String> {
        let mut pats = Vec::new();
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    s if depth == 0 && stops.contains(&s) => break,
                    _ => {}
                }
            } else if t.kind == TokKind::Ident {
                if depth == 0 && stops.contains(&t.text.as_str()) {
                    break;
                }
                let next = self.peek_at(1);
                let starts_path = next.is_some_and(|n| n.is_punct("::") || n.is_punct("("));
                let field_key = next.is_some_and(|n| n.is_punct(":")) && depth > 0;
                let capitalized = t
                    .text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase());
                let keyword = NON_BINDING.contains(&t.text.as_str());
                if !starts_path && !field_key && !capitalized && !keyword {
                    pats.push(t.text.clone());
                }
            }
            self.pos += 1;
        }
        pats
    }

    // ------------------------------------------------------ expressions --

    /// Parses one expression. `ns` ("no struct") forbids struct literals,
    /// as Rust does in `if`/`while`/`match`/`for` head positions.
    fn parse_expr(&mut self, ns: bool) -> Expr {
        let line = self.line();
        let lhs = self.parse_range(ns);
        const ASSIGN_OPS: [&str; 8] = ["=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>="];
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Punct && ASSIGN_OPS.contains(&t.text.as_str()) {
                let op = t.text.clone();
                self.pos += 1;
                let rhs = self.parse_expr(ns);
                return Expr::Assign {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
            }
        }
        lhs
    }

    fn expr_can_start(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => match t.kind {
                TokKind::Punct => {
                    matches!(
                        t.text.as_str(),
                        "(" | "[" | "{" | "&" | "*" | "-" | "!" | "|" | "||"
                    )
                }
                TokKind::Ident => !matches!(t.text.as_str(), "in" | "else" | "where"),
                _ => true,
            },
        }
    }

    fn parse_range(&mut self, ns: bool) -> Expr {
        let line = self.line();
        if self.at_punct("..") || self.at_punct("..=") {
            let op = self.bump().map(|t| t.text.clone()).unwrap_or_default();
            let rhs = if self.expr_can_start() {
                self.parse_binary(0, ns)
            } else {
                Expr::Opaque { line }
            };
            return Expr::Binary {
                op,
                lhs: Box::new(Expr::Opaque { line }),
                rhs: Box::new(rhs),
                line,
            };
        }
        let lhs = self.parse_binary(0, ns);
        if self.at_punct("..") || self.at_punct("..=") {
            let op = self.bump().map(|t| t.text.clone()).unwrap_or_default();
            let rhs = if self.expr_can_start() {
                self.parse_binary(0, ns)
            } else {
                Expr::Opaque { line }
            };
            return Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    /// Precedence-climbing binary parser. Levels, loosest first:
    /// `||`, `&&`, comparisons, `|`, `^`, `&`, `+ -`, `* / %`.
    fn parse_binary(&mut self, min_level: usize, ns: bool) -> Expr {
        const LEVELS: [&[&str]; 8] = [
            &["||"],
            &["&&"],
            &["==", "!=", "<", ">", "<=", ">="],
            &["|"],
            &["^"],
            &["&"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if min_level >= LEVELS.len() {
            return self.parse_cast(ns);
        }
        let mut lhs = self.parse_binary(min_level + 1, ns);
        while let Some(t) = self.peek() {
            if t.kind != TokKind::Punct || !LEVELS[min_level].contains(&t.text.as_str()) {
                break;
            }
            let op = t.text.clone();
            let line = t.line;
            self.pos += 1;
            let rhs = self.parse_binary(min_level + 1, ns);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_cast(&mut self, ns: bool) -> Expr {
        let mut e = self.parse_unary(ns);
        while self.at_ident("as") {
            let line = self.line();
            self.pos += 1;
            let mut ty = Vec::new();
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Ident
                    && !NON_BINDING.contains(&t.text.as_str())
                    && t.text != "as"
                {
                    ty.push(t.text.clone());
                    self.pos += 1;
                } else if t.is_punct("::") || t.is_ident("dyn") {
                    self.pos += 1;
                } else if t.is_punct("<") {
                    self.skip_angles();
                } else if t.is_punct("*") || t.is_ident("const") || t.is_ident("mut") {
                    // raw pointer types
                    self.pos += 1;
                } else {
                    break;
                }
            }
            e = Expr::Cast {
                expr: Box::new(e),
                ty,
                line,
            };
        }
        e
    }

    fn parse_unary(&mut self, ns: bool) -> Expr {
        let line = self.line();
        if self.at_punct("&") || self.at_punct("*") || self.at_punct("-") || self.at_punct("!") {
            self.pos += 1;
            self.eat_ident("mut");
            let inner = self.parse_unary(ns);
            return Expr::Unary {
                expr: Box::new(inner),
                line,
            };
        }
        self.parse_postfix(ns)
    }

    fn parse_postfix(&mut self, ns: bool) -> Expr {
        let mut e = self.parse_primary(ns);
        loop {
            if self.at_punct(".") {
                let line = self.line();
                self.pos += 1;
                let Some(t) = self.peek() else { break };
                if t.is_ident("await") {
                    self.pos += 1;
                    continue;
                }
                if t.kind == TokKind::Int {
                    let name = t.text.clone();
                    self.pos += 1;
                    e = Expr::Field {
                        recv: Box::new(e),
                        name,
                        line,
                    };
                    continue;
                }
                if t.kind == TokKind::Ident {
                    let name = t.text.clone();
                    self.pos += 1;
                    let mut turbofish = Vec::new();
                    if self.at_punct("::") && self.peek_at(1).is_some_and(|n| n.is_punct("<")) {
                        self.pos += 1;
                        turbofish = self.collect_angles_idents();
                    }
                    if self.at_punct("(") {
                        let args = self.parse_args();
                        e = Expr::Method {
                            recv: Box::new(e),
                            name,
                            turbofish,
                            args,
                            line,
                        };
                    } else {
                        e = Expr::Field {
                            recv: Box::new(e),
                            name,
                            line,
                        };
                    }
                    continue;
                }
                break;
            }
            if self.at_punct("(") {
                let line = self.line();
                let args = self.parse_args();
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                    line,
                };
                continue;
            }
            if self.at_punct("[") {
                let line = self.line();
                self.pos += 1;
                let idx = self.parse_expr(false);
                // consume to the matching `]`
                let mut depth = 1i32;
                while depth > 0 {
                    match self.bump() {
                        None => break,
                        Some(t) if t.is_punct("[") => depth += 1,
                        Some(t) if t.is_punct("]") => depth -= 1,
                        _ => {}
                    }
                }
                e = Expr::Index {
                    recv: Box::new(e),
                    idx: Box::new(idx),
                    line,
                };
                continue;
            }
            if self.at_punct("?") {
                self.pos += 1;
                continue;
            }
            break;
        }
        e
    }

    /// Parses a `( ... )` argument list (cursor on `(`).
    fn parse_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct("(") {
            return args;
        }
        loop {
            if self.eat_punct(")") || self.peek().is_none() {
                break;
            }
            let before = self.pos;
            args.push(self.parse_expr(false));
            if self.pos == before {
                self.pos += 1;
            }
            if !self.eat_punct(",") && !self.at_punct(")") {
                // Unparsable argument remainder: sync to `,` or `)`.
                let mut depth = 0i32;
                while let Some(t) = self.peek() {
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" if depth == 0 => break,
                            ")" | "]" | "}" => depth -= 1,
                            "," if depth == 0 => break,
                            _ => {}
                        }
                    }
                    self.pos += 1;
                }
                self.eat_punct(",");
            }
        }
        args
    }

    /// Skips `<...>` collecting the identifiers inside (cursor on `<`).
    fn collect_angles_idents(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.eat_punct("<") {
            return out;
        }
        let mut angle = 1i32;
        let mut brack = 0i32;
        while angle > 0 {
            let Some(t) = self.bump() else { break };
            match t.kind {
                TokKind::Ident => out.push(t.text.clone()),
                TokKind::Punct => match t.text.as_str() {
                    "(" | "[" | "{" => brack += 1,
                    ")" | "]" | "}" => brack -= 1,
                    "<" if brack == 0 => angle += 1,
                    ">" | ">=" if brack == 0 => angle -= 1,
                    _ => {}
                },
                _ => {}
            }
        }
        out
    }

    fn parse_primary(&mut self, ns: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.peek() else {
            return Expr::Opaque { line };
        };
        match t.kind {
            TokKind::Int | TokKind::Float | TokKind::Str => {
                self.pos += 1;
                Expr::Lit { line }
            }
            TokKind::Lifetime => {
                // Loop label `'a: loop { ... }` — consume and retry.
                self.pos += 1;
                if self.eat_punct(":") {
                    return self.parse_primary(ns);
                }
                Expr::Opaque { line }
            }
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    let mut trailing_comma = false;
                    loop {
                        if self.eat_punct(")") || self.peek().is_none() {
                            break;
                        }
                        let before = self.pos;
                        items.push(self.parse_expr(false));
                        if self.pos == before {
                            self.pos += 1;
                        }
                        trailing_comma = self.eat_punct(",");
                    }
                    if items.len() == 1 && !trailing_comma {
                        items.pop().unwrap_or(Expr::Opaque { line })
                    } else {
                        Expr::Tuple { items, line }
                    }
                }
                "[" => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    loop {
                        if self.eat_punct("]") || self.peek().is_none() {
                            break;
                        }
                        let before = self.pos;
                        items.push(self.parse_expr(false));
                        if self.pos == before {
                            self.pos += 1;
                        }
                        if !self.eat_punct(",") {
                            self.eat_punct(";"); // [x; n] repeat form
                        }
                    }
                    Expr::Array { items, line }
                }
                "{" => {
                    let block = self.parse_block();
                    Expr::BlockExpr { block, line }
                }
                "|" | "||" => self.parse_closure(),
                "#" => {
                    self.skip_attr();
                    self.parse_primary(ns)
                }
                _ => {
                    self.pos += 1;
                    Expr::Opaque { line }
                }
            },
            TokKind::Ident => self.parse_ident_expr(ns),
            // Comments are filtered out before parsing; defensive arm.
            TokKind::LineComment | TokKind::BlockComment => {
                self.pos += 1;
                Expr::Opaque { line }
            }
        }
    }

    fn parse_closure(&mut self) -> Expr {
        let line = self.line();
        let mut params = Vec::new();
        if self.eat_punct("||") {
            // zero-parameter closure
        } else if self.eat_punct("|") {
            // Parameters up to the closing `|`: patterns with optional
            // type annotations (annotation idents are skipped).
            while let Some(t) = self.peek() {
                if t.is_punct("|") {
                    self.pos += 1;
                    break;
                }
                let mut pats = self.parse_pattern(&[":", ",", "|"]);
                params.append(&mut pats);
                if self.eat_punct(":") {
                    let mut depth = 0i32;
                    while let Some(t) = self.peek() {
                        if t.kind == TokKind::Punct {
                            match t.text.as_str() {
                                "(" | "[" | "<" => depth += 1,
                                ")" | "]" | ">" | ">=" => depth -= 1,
                                "," | "|" if depth <= 0 => break,
                                _ => {}
                            }
                        }
                        self.pos += 1;
                    }
                }
                self.eat_punct(",");
            }
        }
        if self.eat_punct("->") {
            while !(self.at_punct("{") || self.peek().is_none()) {
                self.pos += 1;
            }
        }
        let body = self.parse_expr(false);
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }

    fn parse_ident_expr(&mut self, ns: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.peek() else {
            return Expr::Opaque { line };
        };
        match t.text.as_str() {
            "if" => {
                self.pos += 1;
                let pat = if self.eat_ident("let") {
                    let p = self.parse_pattern(&["="]);
                    self.eat_punct("=");
                    p
                } else {
                    Vec::new()
                };
                let cond = self.parse_expr(true);
                let then = self.parse_block();
                let else_ = if self.eat_ident("else") {
                    if self.at_ident("if") {
                        Some(Box::new(self.parse_ident_expr(ns)))
                    } else {
                        let b = self.parse_block();
                        Some(Box::new(Expr::BlockExpr { block: b, line }))
                    }
                } else {
                    None
                };
                Expr::If {
                    pat,
                    cond: Box::new(cond),
                    then,
                    else_,
                    line,
                }
            }
            "match" => {
                self.pos += 1;
                let scrutinee = self.parse_expr(true);
                let mut arms = Vec::new();
                if self.eat_punct("{") {
                    loop {
                        while self.at_punct("#") {
                            self.skip_attr();
                        }
                        if self.eat_punct("}") || self.peek().is_none() {
                            break;
                        }
                        let pats = self.parse_pattern(&["=>"]);
                        // Arm guard: `pat if guard => ...` — the pattern
                        // parser stops at `if` only via `=>`; handle by
                        // consuming a guard expression when present.
                        if self.eat_ident("if") {
                            let _ = self.parse_expr(true);
                        }
                        if !self.eat_punct("=>") {
                            // Cannot find the arrow: resync to `}`.
                            while !(self.at_punct("}") || self.peek().is_none()) {
                                self.pos += 1;
                            }
                            continue;
                        }
                        let body = self.parse_expr(false);
                        arms.push(Arm { pats, body });
                        self.eat_punct(",");
                    }
                }
                Expr::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                    line,
                }
            }
            "for" => {
                self.pos += 1;
                let pats = self.parse_pattern(&["in"]);
                self.eat_ident("in");
                let iter = self.parse_expr(true);
                let body = self.parse_block();
                Expr::For {
                    pats,
                    iter: Box::new(iter),
                    body,
                    line,
                }
            }
            "while" => {
                self.pos += 1;
                let pat = if self.eat_ident("let") {
                    let p = self.parse_pattern(&["="]);
                    self.eat_punct("=");
                    p
                } else {
                    Vec::new()
                };
                let cond = self.parse_expr(true);
                let body = self.parse_block();
                Expr::While {
                    pat,
                    cond: Box::new(cond),
                    body,
                    line,
                }
            }
            "loop" => {
                self.pos += 1;
                let body = self.parse_block();
                Expr::Loop { body, line }
            }
            "unsafe" | "async" => {
                self.pos += 1;
                if self.at_punct("{") {
                    let block = self.parse_block();
                    Expr::BlockExpr { block, line }
                } else {
                    Expr::Opaque { line }
                }
            }
            "return" => {
                self.pos += 1;
                let expr = if self.expr_can_start() && !self.at_punct("{") {
                    Some(Box::new(self.parse_expr(ns)))
                } else {
                    None
                };
                Expr::Ret { expr, line }
            }
            "break" => {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.pos += 1;
                }
                let expr = if self.expr_can_start() && !self.at_punct("{") {
                    Some(Box::new(self.parse_expr(ns)))
                } else {
                    None
                };
                Expr::Break { expr, line }
            }
            "continue" => {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.pos += 1;
                }
                Expr::Opaque { line }
            }
            "move" => {
                self.pos += 1;
                if self.at_punct("|") || self.at_punct("||") {
                    self.parse_closure()
                } else {
                    Expr::Opaque { line }
                }
            }
            _ => {
                // Path expression: segments joined by `::`, with optional
                // turbofish groups skipped in place.
                let mut segs = vec![t.text.clone()];
                self.pos += 1;
                loop {
                    if self.at_punct("::") {
                        if self.peek_at(1).is_some_and(|n| n.is_punct("<")) {
                            self.pos += 1;
                            self.skip_angles();
                            continue;
                        }
                        if self.peek_at(1).is_some_and(|n| n.kind == TokKind::Ident) {
                            self.pos += 1;
                            if let Some(seg) = self.bump() {
                                segs.push(seg.text.clone());
                            }
                            continue;
                        }
                    }
                    break;
                }
                if self.at_punct("!") {
                    // Macro invocation.
                    self.pos += 1;
                    let name = segs.last().cloned().unwrap_or_default();
                    let args = if self.at_punct("(") {
                        self.parse_args()
                    } else if self.at_punct("[") {
                        self.pos += 1;
                        let mut args = Vec::new();
                        loop {
                            if self.eat_punct("]") || self.peek().is_none() {
                                break;
                            }
                            let before = self.pos;
                            args.push(self.parse_expr(false));
                            if self.pos == before {
                                self.pos += 1;
                            }
                            self.eat_punct(",");
                        }
                        args
                    } else {
                        self.skip_balanced("{", "}");
                        Vec::new()
                    };
                    return Expr::Macro { name, args, line };
                }
                if !ns && self.at_punct("{") && self.looks_like_struct_lit() {
                    return self.parse_struct_lit(segs, line);
                }
                Expr::Path { segs, line }
            }
        }
    }

    /// Lookahead after a path at `{`: does this read as a struct literal?
    fn looks_like_struct_lit(&self) -> bool {
        let Some(n1) = self.peek_at(1) else {
            return false;
        };
        if n1.is_punct("}") || n1.is_punct("..") {
            return true;
        }
        if n1.kind == TokKind::Ident {
            return self
                .peek_at(2)
                .is_some_and(|n2| n2.is_punct(":") || n2.is_punct(",") || n2.is_punct("}"));
        }
        false
    }

    fn parse_struct_lit(&mut self, segs: Vec<String>, line: u32) -> Expr {
        let mut fields = Vec::new();
        self.eat_punct("{");
        loop {
            if self.eat_punct("}") || self.peek().is_none() {
                break;
            }
            if self.eat_punct("..") {
                let base = self.parse_expr(false);
                fields.push(("..".to_string(), base));
                continue;
            }
            let Some(t) = self.peek() else { break };
            if t.kind != TokKind::Ident {
                self.pos += 1;
                continue;
            }
            let fname = t.text.clone();
            let fline = t.line;
            self.pos += 1;
            if self.eat_punct(":") {
                let val = self.parse_expr(false);
                fields.push((fname, val));
            } else {
                // Shorthand `Foo { name }`.
                fields.push((
                    fname.clone(),
                    Expr::Path {
                        segs: vec![fname],
                        line: fline,
                    },
                ));
            }
            self.eat_punct(",");
        }
        Expr::StructLit { segs, fields, line }
    }
}

/// Builds a [`Param`] from the raw tokens of one parameter.
fn param_from_tokens(toks: &[&Tok]) -> Option<Param> {
    if toks.is_empty() {
        return None;
    }
    if let Some(colon) = split_colon(toks) {
        let mut pats = Vec::new();
        for (i, t) in toks[..colon].iter().enumerate() {
            if t.kind == TokKind::Ident
                && !NON_BINDING.contains(&t.text.as_str())
                && !toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct("::") || n.is_punct("("))
            {
                pats.push(t.text.clone());
            }
        }
        let ty = toks[colon + 1..]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        Some(Param { pats, ty })
    } else if toks.iter().any(|t| t.is_ident("self")) {
        Some(Param {
            pats: vec!["self".to_string()],
            ty: Vec::new(),
        })
    } else {
        None
    }
}

/// Index of the pattern/type `:` separator at bracket depth 0.
fn split_colon(toks: &[&Tok]) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                ":" if depth == 0 => return Some(i),
                _ => {}
            }
        }
    }
    None
}

// ------------------------------------------------------------- visitors --

/// Calls `f` on `expr` and every sub-expression, pre-order.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(expr);
    match expr {
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => walk_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Method { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { recv, .. } => walk_expr(recv, f),
        Expr::Index { recv, idx, .. } => {
            walk_expr(recv, f);
            walk_expr(idx, f);
        }
        Expr::StructLit { fields, .. } => {
            for (_, e) in fields {
                walk_expr(e, f);
            }
        }
        Expr::Macro { args, .. }
        | Expr::Tuple { items: args, .. }
        | Expr::Array { items: args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::BlockExpr { block, .. } | Expr::Loop { body: block, .. } => walk_block(block, f),
        Expr::If {
            cond, then, else_, ..
        } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = else_ {
                walk_expr(e, f);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_expr(scrutinee, f);
            for a in arms {
                walk_expr(&a.body, f);
            }
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Expr::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::Ret { expr, .. } | Expr::Break { expr, .. } => {
            if let Some(e) = expr {
                walk_expr(e, f);
            }
        }
    }
}

/// Calls `f` on every expression in `block`, pre-order.
pub fn walk_block<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for s in &block.stmts {
        match s {
            Stmt::Let { init: Some(e), .. } => walk_expr(e, f),
            Stmt::Let { .. } => {}
            Stmt::Expr(e) => walk_expr(e, f),
            Stmt::Item(item) => walk_item(item, f),
        }
    }
    if let Some(t) = block.tail.as_deref() {
        walk_expr(t, f);
    }
}

/// Calls `f` on `block` and every block nested inside it (branch bodies,
/// loop bodies, bare block expressions), pre-order.
pub fn walk_blocks<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Block)) {
    f(block);
    walk_block(block, &mut |e| match e {
        Expr::BlockExpr { block, .. } => f(block),
        Expr::Loop { body, .. } => f(body),
        Expr::If { then, .. } => f(then),
        Expr::For { body, .. } | Expr::While { body, .. } => f(body),
        _ => {}
    });
}

/// Calls `f` on every expression under `item`, pre-order.
pub fn walk_item<'a>(item: &'a Item, f: &mut dyn FnMut(&'a Expr)) {
    match item {
        Item::Fn(fd) => {
            if let Some(b) = &fd.body {
                walk_block(b, f);
            }
        }
        Item::Impl(i) => {
            for it in &i.items {
                walk_item(it, f);
            }
        }
        Item::Mod(m) => {
            for it in &m.items {
                walk_item(it, f);
            }
        }
        Item::Struct(_) => {}
    }
}

/// Iterates every function in `file` with its enclosing impl type (if
/// any), including functions nested in mods and impls.
pub fn for_each_fn<'a>(file: &'a File, f: &mut dyn FnMut(Option<&'a str>, &'a FnDef)) {
    fn rec<'a>(
        items: &'a [Item],
        impl_ty: Option<&'a str>,
        f: &mut dyn FnMut(Option<&'a str>, &'a FnDef),
    ) {
        for item in items {
            match item {
                Item::Fn(fd) => f(impl_ty, fd),
                Item::Impl(i) => rec(&i.items, Some(i.type_name.as_str()), f),
                Item::Mod(m) => rec(&m.items, impl_ty, f),
                Item::Struct(_) => {}
            }
        }
    }
    rec(&file.items, None, f);
}

/// Iterates every struct definition in `file`, including nested ones.
pub fn for_each_struct<'a>(file: &'a File, f: &mut dyn FnMut(&'a StructDef)) {
    fn rec<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a StructDef)) {
        for item in items {
            match item {
                Item::Struct(s) => f(s),
                Item::Impl(i) => rec(&i.items, f),
                Item::Mod(m) => rec(&m.items, f),
                Item::Fn(_) => {}
            }
        }
    }
    rec(&file.items, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(src: &str) -> File {
        parse(&lex(src))
    }

    fn first_fn(f: &File) -> &FnDef {
        fn rec(items: &[Item]) -> Option<&FnDef> {
            for item in items {
                match item {
                    Item::Fn(fd) => return Some(fd),
                    Item::Impl(i) => {
                        if let Some(fd) = rec(&i.items) {
                            return Some(fd);
                        }
                    }
                    Item::Mod(m) => {
                        if let Some(fd) = rec(&m.items) {
                            return Some(fd);
                        }
                    }
                    Item::Struct(_) => {}
                }
            }
            None
        }
        rec(&f.items).expect("a fn")
    }

    #[test]
    fn parses_fn_with_params_and_ret() {
        let f = file("pub fn alloc(&mut self, bytes: Bytes, n: u64) -> Option<Pages> { None }");
        let fd = first_fn(&f);
        assert_eq!(fd.name, "alloc");
        assert!(fd.is_pub);
        assert_eq!(fd.params.len(), 3);
        assert_eq!(fd.params[0].pats, vec!["self"]);
        assert_eq!(fd.params[1].pats, vec!["bytes"]);
        assert_eq!(fd.params[1].ty, vec!["Bytes"]);
        assert!(fd.ret.contains(&"Pages".to_string()));
        assert!(fd.body.is_some());
    }

    #[test]
    fn impl_blocks_attach_type_names() {
        let f = file("impl PageTable { fn unmap(&mut self) {} }\nimpl Rule for WallClock { fn name(&self) {} }");
        let mut seen = Vec::new();
        for_each_fn(&f, &mut |ty, fd| {
            seen.push((ty.map(str::to_string), fd.name.clone()))
        });
        assert_eq!(
            seen,
            vec![
                (Some("PageTable".into()), "unmap".into()),
                (Some("WallClock".into()), "name".into())
            ]
        );
    }

    #[test]
    fn struct_fields_carry_type_idents() {
        let f = file("pub struct T { pub entries: RadixTable<Pte>, epoch: u64 }");
        let mut names = Vec::new();
        for_each_struct(&f, &mut |s| {
            names = s.fields.clone();
        });
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].0, "entries");
        assert!(names[0].1.contains(&"RadixTable".to_string()));
        assert_eq!(names[1].0, "epoch");
    }

    #[test]
    fn let_and_method_chain() {
        let f = file("fn f(m: M) { let x = m.iter().map(|v| v).collect(); }");
        let fd = first_fn(&f);
        let body = fd.body.as_ref().unwrap();
        let Stmt::Let { pats, init, .. } = &body.stmts[0] else {
            panic!("let");
        };
        assert_eq!(pats, &vec!["x".to_string()]);
        let Some(Expr::Method { name, recv, .. }) = init.as_ref() else {
            panic!("method chain");
        };
        assert_eq!(name, "collect");
        let Expr::Method { name: m2, .. } = recv.as_ref() else {
            panic!("map");
        };
        assert_eq!(m2, "map");
    }

    #[test]
    fn for_loop_and_push() {
        let f = file("fn f(m: M) { for (k, v) in m.iter() { out.push(v); } }");
        let fd = first_fn(&f);
        let body = fd.body.as_ref().unwrap();
        let Some(Expr::For { pats, body: b, .. }) = body.tail.as_deref() else {
            panic!("for");
        };
        assert_eq!(pats, &vec!["k".to_string(), "v".to_string()]);
        let Stmt::Expr(Expr::Method { name, args, .. }) = &b.stmts[0] else {
            panic!("push");
        };
        assert_eq!(name, "push");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn assignment_to_field() {
        let f = file("fn f(&mut self) { self.epoch = self.epoch.saturating_add(1); }");
        let fd = first_fn(&f);
        let body = fd.body.as_ref().unwrap();
        let Stmt::Expr(Expr::Assign { op, lhs, .. }) = &body.stmts[0] else {
            panic!("assign");
        };
        assert_eq!(op, "=");
        let Expr::Field { name, .. } = lhs.as_ref() else {
            panic!("field lhs");
        };
        assert_eq!(name, "epoch");
    }

    #[test]
    fn struct_literal_and_if_cond_restriction() {
        let f = file("fn f() -> P { if x { P { a: 1 } } else { P { a: 2 } } }");
        let fd = first_fn(&f);
        let tail = fd.body.as_ref().unwrap().tail.as_deref().unwrap();
        let Expr::If { cond, then, .. } = tail else {
            panic!("if, got {tail:?}");
        };
        assert!(matches!(cond.as_ref(), Expr::Path { .. }));
        assert!(matches!(then.tail.as_deref(), Some(Expr::StructLit { .. })));
    }

    #[test]
    fn tuple_field_access_and_call() {
        let f = file("fn f(p: (u64, u64)) -> u64 { g(p.0) }");
        let fd = first_fn(&f);
        let tail = fd.body.as_ref().unwrap().tail.as_deref().unwrap();
        let Expr::Call { args, .. } = tail else {
            panic!("call");
        };
        let Expr::Field { name, .. } = &args[0] else {
            panic!("tuple field");
        };
        assert_eq!(name, "0");
    }

    #[test]
    fn turbofish_collect_records_type() {
        let f = file("fn f(m: M) { let v = m.keys().collect::<Vec<u64>>(); }");
        let fd = first_fn(&f);
        let Stmt::Let { init, .. } = &fd.body.as_ref().unwrap().stmts[0] else {
            panic!("let");
        };
        let Some(Expr::Method {
            name, turbofish, ..
        }) = init.as_ref()
        else {
            panic!("collect");
        };
        assert_eq!(name, "collect");
        assert!(turbofish.contains(&"Vec".to_string()));
    }

    #[test]
    fn macros_parse_args() {
        let f = file(r#"fn f() { writeln!(out, "x {}", v).ok(); }"#);
        let fd = first_fn(&f);
        let mut macro_args = 0;
        walk_block(fd.body.as_ref().unwrap(), &mut |e| {
            if let Expr::Macro { name, args, .. } = e {
                assert_eq!(name, "writeln");
                macro_args = args.len();
            }
        });
        assert_eq!(macro_args, 3);
    }

    #[test]
    fn match_arms_bind_patterns() {
        let f = file("fn f(x: Option<u64>) -> u64 { match x { Some(v) => v, None => 0 } }");
        let fd = first_fn(&f);
        let Some(Expr::Match { arms, .. }) = fd.body.as_ref().unwrap().tail.as_deref() else {
            panic!("match");
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].pats, vec!["v".to_string()]);
        assert!(arms[1].pats.is_empty());
    }

    #[test]
    fn if_let_binds() {
        let f = file("fn f(x: Option<u64>) { if let Some(v) = x { g(v); } }");
        let fd = first_fn(&f);
        let Some(Expr::If { pat, .. }) = fd.body.as_ref().unwrap().tail.as_deref() else {
            panic!("if let");
        };
        assert_eq!(pat, &vec!["v".to_string()]);
    }

    #[test]
    fn mods_nest_and_breaks_are_not_returns() {
        let f = file("mod inner { pub fn g() { loop { break 1; } } }");
        let mut names = Vec::new();
        for_each_fn(&f, &mut |_, fd| names.push(fd.name.clone()));
        assert_eq!(names, vec!["g".to_string()]);
        let mut saw_break = false;
        for item in &f.items {
            walk_item(item, &mut |e| {
                if matches!(e, Expr::Break { .. }) {
                    saw_break = true;
                }
            });
        }
        assert!(saw_break);
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn f( {",
            "impl {",
            "fn",
            "struct S { x: }",
            "fn f() { let = ; }",
            "fn f() { a.b.( }",
            "match {",
            "fn f() { x + }",
        ] {
            let _ = file(src);
        }
    }

    #[test]
    fn ranges_and_casts() {
        let f = file("fn f(n: u64) { for i in 0..n { g(i as usize); } }");
        let fd = first_fn(&f);
        let Some(Expr::For { iter, body, .. }) = fd.body.as_ref().unwrap().tail.as_deref() else {
            panic!("for");
        };
        assert!(matches!(iter.as_ref(), Expr::Binary { op, .. } if op == ".."));
        let mut saw_cast = false;
        walk_block(body, &mut |e| {
            if let Expr::Cast { ty, .. } = e {
                assert_eq!(ty, &vec!["usize".to_string()]);
                saw_cast = true;
            }
        });
        assert!(saw_cast);
    }
}
