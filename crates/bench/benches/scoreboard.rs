//! `cargo bench -p gh-bench --bench scoreboard` — re-verifies every
//! paper claim in one run.

fn main() {
    let claims = gh_bench::scoreboard::run();
    let csv = gh_bench::scoreboard::render(&claims);
    gh_bench::emit("Reproduction scoreboard", &csv, &[]);
    let failed = claims.iter().filter(|c| !c.holds).count();
    println!("{} / {} claims hold", claims.len() - failed, claims.len());
    if failed > 0 {
        std::process::exit(1);
    }
}
