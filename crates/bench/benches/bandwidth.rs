//! `cargo bench -p gh-bench --bench bandwidth` — §2.1 STREAM + Comm|Scope.

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::bandwidth::run(fast);
    gh_bench::emit(
        "Section 2.1: memory and interconnect bandwidths",
        &csv,
        &["paper: HBM 3.4 TB/s, LPDDR 486 GB/s, C2C 375/297 GB/s"],
    );
    gh_bench::bandwidth::validate(&csv).expect("bandwidths within 15% of the calibration targets");
}
