//! `cargo bench -p gh-bench --bench fig13_qv_oversub_breakdown` — regenerates Figure 13: init/compute breakdown under oversubscription (paper 30q simulated, 34q natural).

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::fig13_qv_oversub_breakdown::run(fast);
    gh_bench::emit("Figure 13: init/compute breakdown under oversubscription (paper 30q simulated, 34q natural)", &csv, &["paper: prefetch restores performance at 34q; page size matters for managed under pressure"]);
}
