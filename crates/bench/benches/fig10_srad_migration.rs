//! `cargo bench -p gh-bench --bench fig10_srad_migration` — regenerates Figure 10: SRAD per-iteration time and read traffic (system vs managed).

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::fig10_srad_migration::run(fast);
    gh_bench::emit("Figure 10: SRAD per-iteration time and read traffic (system vs managed)", &csv, &["paper: managed pays iteration 1; system migrates over iterations 1-4 then wins from iteration ~5"]);
}
