//! `cargo bench -p gh-bench --bench fig06_alloc_dealloc` — regenerates Figure 6: alloc/dealloc time, 4 KB vs 64 KB system pages (system version).

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::fig06_alloc_dealloc::run(fast);
    gh_bench::emit(
        "Figure 6: alloc/dealloc time, 4 KB vs 64 KB system pages (system version)",
        &csv,
        &["paper: dealloc improves 4.6x-38x (avg 15.9x) with 64 KB pages"],
    );
}
