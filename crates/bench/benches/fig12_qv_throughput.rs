//! `cargo bench -p gh-bench --bench fig12_qv_throughput` — regenerates Figure 12: memory-tier throughput, paper-34q QV at 130% oversubscription.

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::fig12_qv_throughput::run(fast);
    gh_bench::emit(
        "Figure 12: memory-tier throughput, paper-34q QV at 130% oversubscription",
        &csv,
        &["paper: un-prefetched managed is throttled by C2C; prefetching makes traffic HBM-local"],
    );
}
