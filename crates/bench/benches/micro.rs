//! Micro-benchmarks of the simulator's hot primitives: page table
//! operations, TLB lookups, the radix map, kernel span metering,
//! statevector gate application and the parallel substrate.
//!
//! Self-timed (the offline dependency set has no criterion): each case
//! runs a few warmup iterations, then reports min/median wall time over a
//! fixed iteration count. `GH_FAST=1` cuts iteration counts for CI.

use std::hint::black_box;
use std::time::Instant;

use gh_mem::pagetable::PageTable;
use gh_mem::phys::{Node, PhysMem};
use gh_mem::radix::RadixTable;
use gh_mem::tlb::Tlb;
use gh_qsim::{Gate2, StateVector};
use gh_sim::{platform, MemMode};
use gh_units::{Bytes, Vpn};

fn iters() -> usize {
    if gh_bench::fast_requested() {
        3
    } else {
        15
    }
}

/// Runs `f` with per-iteration setup from `setup`, printing min/median ns.
fn bench<S, T, F, R>(name: &str, setup: S, mut f: F)
where
    S: Fn() -> T,
    F: FnMut(T) -> R,
{
    let n = iters();
    // Warmup.
    for _ in 0..2.min(n) {
        black_box(f(setup()));
    }
    let mut times: Vec<u128> = Vec::with_capacity(n);
    for _ in 0..n {
        let input = setup();
        let t0 = Instant::now();
        black_box(f(input));
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    println!("{name:<40} min {:>12} ns   median {:>12} ns", min, median);
}

fn bench_radix() {
    bench("radix_insert_get_4k", RadixTable::new, |mut t| {
        for k in 0..4096u64 {
            t.insert(k, k);
        }
        let mut acc = 0;
        for k in 0..4096u64 {
            acc += *t.get(k).unwrap();
        }
        acc
    });
}

fn bench_pagetable() {
    bench(
        "pagetable_populate_translate_4k_pages",
        || PageTable::new(4096),
        |mut pt| {
            for v in 0..2048 {
                pt.populate(Vpn::new(v), Node::Cpu, v + 1);
            }
            let mut hits = 0;
            for v in 0..2048 {
                if pt.translate(Vpn::new(v)).is_some() {
                    hits += 1;
                }
            }
            hits
        },
    );
}

fn bench_tlb() {
    bench(
        "tlb_streaming_miss_fill",
        || Tlb::new(3072),
        |mut tlb| {
            let mut misses = 0;
            for v in 0..10_000u64 {
                if !tlb.lookup(Vpn::new(v)) {
                    tlb.fill(Vpn::new(v));
                    misses += 1;
                }
            }
            misses
        },
    );
}

fn bench_physmem() {
    bench(
        "physmem_alloc_release",
        || PhysMem::new(Bytes::new(1 << 30), Bytes::new(1 << 27), Bytes::ZERO),
        |mut pm| {
            for _ in 0..1000 {
                let f = pm.alloc(Node::Gpu, Bytes::new(65536)).unwrap();
                black_box(f);
                pm.release(Node::Gpu, Bytes::new(65536));
            }
        },
    );
}

fn bench_kernel_span() {
    bench(
        "kernel_dense_span_64MiB_system",
        || {
            let mut m = platform::gh200().machine();
            let buf = m.rt.malloc_system(Bytes::new(64 << 20), "x");
            m.rt.cpu_write(&buf, 0, 64 << 20);
            (m, buf)
        },
        |(mut m, buf)| {
            let mut k = m.rt.launch("bench");
            k.read(&buf, 0, 64 << 20);
            k.finish().time
        },
    );
}

fn bench_gate_apply() {
    let g = Gate2::random_su4(1);
    bench(
        "statevector_gate2_apply_16q",
        || StateVector::zero_state(16),
        |mut s| {
            s.apply_gate2(&g, 3, 11);
            s.amp(0)
        },
    );
}

fn bench_setcache() {
    bench(
        "setcache_stream_64k_lines",
        || gh_mem::SetCache::new(Bytes::new(40 << 20), Bytes::new(128), 16),
        |mut l2| {
            let mut misses = 0;
            for i in 0..65_536u64 {
                if !l2.access(i * 128) {
                    misses += 1;
                }
            }
            misses
        },
    );
}

fn bench_par_sort() {
    bench(
        "par_sort_unstable_1M_u64",
        || {
            (0..1_000_000u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect::<Vec<_>>()
        },
        |mut v| {
            gh_par::par_sort_unstable(&mut v);
            v[0]
        },
    );
}

fn bench_fusion() {
    let circuit = gh_qsim::QvCircuit::generate(20, 3);
    bench(
        "gate_fusion_qv_200",
        || (),
        |_| gh_qsim::fuse(&circuit).len(),
    );
}

fn bench_replay_parse() {
    // 50 uniquely-named alloc/init/kernel/free blocks.
    let trace: String = (0..50)
        .map(|i| {
            format!(
                "alloc b{i} system 1m
cpu_write b{i} 0 1m
kernel k{i}
  read b{i} 0 1m
end
free b{i}
"
            )
        })
        .collect();
    bench(
        "replay_50_blocks",
        || (),
        |_| {
            let r = gh_sim::replay(gh_sim::platform::gh200().machine(), &trace, None).unwrap();
            r.reported_total()
        },
    );
}

fn bench_par() {
    bench(
        "par_map_reduce_1M",
        || (),
        |_| gh_par::par_map_reduce(0..1_000_000, 0u64, |i| i as u64, |a, x| a.wrapping_add(x)),
    );
}

fn bench_app_end_to_end() {
    for mode in MemMode::ALL {
        bench(
            &format!("hotspot_small_{mode}"),
            || (),
            |_| {
                let p = gh_apps::hotspot::HotspotParams {
                    size: 128,
                    iterations: 5,
                    seed: 1,
                };
                gh_apps::hotspot::run(platform::gh200().machine(), mode, &p).checksum
            },
        );
    }
}

fn main() {
    bench_radix();
    bench_pagetable();
    bench_tlb();
    bench_physmem();
    bench_kernel_span();
    bench_gate_apply();
    bench_setcache();
    bench_par_sort();
    bench_fusion();
    bench_replay_parse();
    bench_par();
    bench_app_end_to_end();
}
