//! Criterion micro-benchmarks of the simulator's hot primitives: page
//! table operations, TLB lookups, the radix map, kernel span metering,
//! statevector gate application and the parallel substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use gh_mem::pagetable::PageTable;
use gh_mem::phys::{Node, PhysMem};
use gh_mem::radix::RadixTable;
use gh_mem::tlb::Tlb;
use gh_qsim::{Gate2, StateVector};
use gh_sim::{Machine, MemMode};

fn bench_radix(c: &mut Criterion) {
    c.bench_function("radix_insert_get_4k", |b| {
        b.iter_batched(
            RadixTable::new,
            |mut t| {
                for k in 0..4096u64 {
                    t.insert(k, k);
                }
                let mut acc = 0;
                for k in 0..4096u64 {
                    acc += *t.get(k).unwrap();
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pagetable(c: &mut Criterion) {
    c.bench_function("pagetable_populate_translate_4k_pages", |b| {
        b.iter_batched(
            || PageTable::new(4096),
            |mut pt| {
                for v in 0..2048 {
                    pt.populate(v, Node::Cpu, v + 1);
                }
                let mut hits = 0;
                for v in 0..2048 {
                    if pt.translate(v).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("tlb_streaming_miss_fill", |b| {
        b.iter_batched(
            || Tlb::new(3072),
            |mut tlb| {
                let mut misses = 0;
                for v in 0..10_000u64 {
                    if !tlb.lookup(v) {
                        tlb.fill(v);
                        misses += 1;
                    }
                }
                black_box(misses)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_physmem(c: &mut Criterion) {
    c.bench_function("physmem_alloc_release", |b| {
        b.iter_batched(
            || PhysMem::new(1 << 30, 1 << 27, 0),
            |mut pm| {
                for _ in 0..1000 {
                    let f = pm.alloc(Node::Gpu, 65536).unwrap();
                    black_box(f);
                    pm.release(Node::Gpu, 65536);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_kernel_span(c: &mut Criterion) {
    c.bench_function("kernel_dense_span_64MiB_system", |b| {
        b.iter_batched(
            || {
                let mut m = Machine::default_gh200();
                let buf = m.rt.malloc_system(64 << 20, "x");
                m.rt.cpu_write(&buf, 0, 64 << 20);
                (m, buf)
            },
            |(mut m, buf)| {
                let mut k = m.rt.launch("bench");
                k.read(&buf, 0, 64 << 20);
                black_box(k.finish().time)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_gate_apply(c: &mut Criterion) {
    c.bench_function("statevector_gate2_apply_16q", |b| {
        let g = Gate2::random_su4(1);
        b.iter_batched(
            || StateVector::zero_state(16),
            |mut s| {
                s.apply_gate2(&g, 3, 11);
                black_box(s.amp(0))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_setcache(c: &mut Criterion) {
    c.bench_function("setcache_stream_64k_lines", |b| {
        b.iter_batched(
            || gh_mem::SetCache::new(40 << 20, 128, 16),
            |mut l2| {
                let mut misses = 0;
                for i in 0..65_536u64 {
                    if !l2.access(i * 128) {
                        misses += 1;
                    }
                }
                black_box(misses)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_par_sort(c: &mut Criterion) {
    c.bench_function("par_sort_unstable_1M_u64", |b| {
        b.iter_batched(
            || {
                (0..1_000_000u64)
                    .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .collect::<Vec<_>>()
            },
            |mut v| {
                gh_par::par_sort_unstable(&mut v);
                black_box(v[0])
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_fusion(c: &mut Criterion) {
    c.bench_function("gate_fusion_qv_200", |b| {
        let circuit = gh_qsim::QvCircuit::generate(20, 3);
        b.iter(|| black_box(gh_qsim::fuse(&circuit).len()))
    });
}

fn bench_replay_parse(c: &mut Criterion) {
    // 50 uniquely-named alloc/init/kernel/free blocks.
    let trace: String = (0..50)
        .map(|i| {
            format!(
                "alloc b{i} system 1m
cpu_write b{i} 0 1m
kernel k{i}
  read b{i} 0 1m
end
free b{i}
"
            )
        })
        .collect();
    c.bench_function("replay_50_blocks", |b| {
        b.iter(|| {
            let r = gh_sim::replay(gh_sim::Machine::default_gh200(), &trace, None).unwrap();
            black_box(r.reported_total())
        })
    });
}

fn bench_par(c: &mut Criterion) {
    c.bench_function("par_map_reduce_1M", |b| {
        b.iter(|| {
            black_box(gh_par::par_map_reduce(
                0..1_000_000,
                0u64,
                |i| i as u64,
                |a, x| a.wrapping_add(x),
            ))
        })
    });
}

fn bench_app_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps_small");
    g.sample_size(10);
    for mode in MemMode::ALL {
        g.bench_function(format!("hotspot_small_{mode}"), |b| {
            b.iter(|| {
                let p = gh_apps::hotspot::HotspotParams {
                    size: 128,
                    iterations: 5,
                    seed: 1,
                };
                black_box(gh_apps::hotspot::run(Machine::default_gh200(), mode, &p).checksum)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_radix,
    bench_pagetable,
    bench_tlb,
    bench_physmem,
    bench_kernel_span,
    bench_gate_apply,
    bench_setcache,
    bench_par_sort,
    bench_fusion,
    bench_replay_parse,
    bench_par,
    bench_app_end_to_end
);
criterion_main!(benches);
