//! `cargo bench -p gh-bench --bench ablations` — design-choice sweeps
//! beyond the paper's figures.

fn main() {
    let fast = gh_bench::fast_requested();
    gh_bench::emit(
        "Ablation: access-counter notification threshold (SRAD, system)",
        &gh_bench::ablations::threshold_sweep(fast),
        &["paper default 256; higher thresholds delay or suppress migration"],
    );
    gh_bench::emit(
        "Ablation: driver migration budget per kernel (SRAD, system)",
        &gh_bench::ablations::budget_sweep(fast),
        &["bounds how fast the hot working set migrates (Fig 10 pace)"],
    );
    gh_bench::emit(
        "Ablation: UVM fault-batch service cost (SRAD, managed)",
        &gh_bench::ablations::fault_batch_sweep(fast),
        &["literature range 20-50 us"],
    );
    gh_bench::emit(
        "Ablation: cudaHostRegister pre-population (SRAD, system; paper 5.1.2)",
        &gh_bench::ablations::host_register(fast),
        &["pre-populating PTEs trades a bulk registration cost against ATS faults"],
    );
    gh_bench::emit(
        "Ablation: NUMA placement policies (hotspot, system, migration off)",
        &gh_bench::ablations::numa_placement(fast),
        &["binding CPU-initialized data to the GPU node trades init time for HBM-local compute"],
    );
    gh_bench::emit(
        "Ablation: Aer-style gate fusion (Quantum Volume)",
        &gh_bench::ablations::fusion_sweep(fast),
        &["QV circuits rarely repeat qubit pairs, so fusion is a mild win here; it never hurts"],
    );
}
