//! `cargo bench -p gh-bench --bench fig09_qv_breakdown` — regenerates Figure 9: init/compute breakdown, paper-33q QV.

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::fig09_qv_breakdown::run(fast);
    gh_bench::emit(
        "Figure 9: init/compute breakdown, paper-33q QV",
        &csv,
        &["paper: system init improves ~5x at 64 KB; total ~2.9x; managed ~10%"],
    );
}
