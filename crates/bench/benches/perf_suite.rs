//! The perf-trajectory suite: runs every app × mode × platform under
//! `gh-perf`, writes `BENCH_<date>.json` + `.folded` at the repo root
//! (`GH_BENCH_OUT` overrides), and diffs against `BENCH_baseline.json`.
//!
//! Exit status: nonzero only when simulated checksums drift from the
//! baseline — wall-time movement is reported but advisory.

use gh_bench::perf_suite;

fn main() {
    let fast = gh_bench::fast_requested();
    let suite = perf_suite::run(fast);
    gh_bench::emit(
        "perf suite (sim-speed trajectory)",
        &suite.csv(),
        &[
            "wall_ms is host time; sim_ms is virtual time; sim_ns_per_host_ms is the headline ratio.",
            "Set GH_FAST=1 for shrunk inputs, GH_BENCH_OUT=<dir> to redirect output files.",
        ],
    );
    match suite.write() {
        Ok((json, folded)) => {
            println!("# wrote {} and {}", json.display(), folded.display());
        }
        Err(e) => {
            eprintln!("perf_suite: failed to write BENCH files: {e}");
            std::process::exit(1);
        }
    }
    match perf_suite::compare_to_baseline(&suite) {
        Ok(None) => println!("# no BENCH_baseline.json at repo root; comparison skipped"),
        Ok(Some(cmp)) => {
            for w in &cmp.warnings {
                println!("# WARN {w}");
            }
            for e in &cmp.errors {
                eprintln!("# FAIL {e}");
            }
            if cmp.is_clean() {
                println!("# baseline comparison clean (tolerance ±10%)");
            }
            if !cmp.errors.is_empty() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("perf_suite: baseline unreadable: {e}");
            std::process::exit(1);
        }
    }
}
