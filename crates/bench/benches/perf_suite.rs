//! The perf-trajectory suite: runs every app × mode × platform under
//! `gh-perf`, writes `BENCH_<date>.json` + `.folded` at the repo root
//! (`GH_BENCH_OUT` overrides), and diffs against `BENCH_baseline.json`.
//!
//! Exit status: nonzero only when simulated checksums drift from the
//! baseline — wall-time movement is reported but advisory.

use gh_bench::perf_suite;

fn main() {
    let fast = gh_bench::fast_requested();
    let suite = perf_suite::run(fast);
    gh_bench::emit(
        "perf suite (sim-speed trajectory)",
        &suite.csv(),
        &[
            "wall_ms is host time; sim_ms is virtual time; sim_ns_per_host_ms is the headline ratio.",
            "Set GH_FAST=1 for shrunk inputs, GH_BENCH_OUT=<dir> to redirect output files.",
        ],
    );
    match suite.write() {
        Ok((json, folded)) => {
            println!("# wrote {} and {}", json.display(), folded.display());
        }
        Err(e) => {
            eprintln!("perf_suite: failed to write BENCH files: {e}");
            std::process::exit(1);
        }
    }
    let baseline = std::fs::read_to_string(perf_suite::repo_root().join("BENCH_baseline.json"));
    let Ok(baseline) = baseline else {
        println!("# no BENCH_baseline.json at repo root; comparison skipped");
        return;
    };
    let geomean = match perf_suite::geomean_wall_ratio(&baseline, &suite) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("perf_suite: baseline unreadable: {e}");
            std::process::exit(1);
        }
    };
    let geomean_line = match geomean {
        Some(g) => {
            format!("geomean wall-time ratio vs baseline: {g:.3}x (current/baseline; <1 is faster)")
        }
        None => "geomean wall-time ratio vs baseline: n/a (no overlapping rows)".to_string(),
    };
    println!("# {geomean_line}");
    match perf_suite::compare(&baseline, &suite, perf_suite::TOLERANCE) {
        Ok(cmp) => {
            for w in &cmp.warnings {
                println!("# WARN {w}");
            }
            for e in &cmp.errors {
                eprintln!("# FAIL {e}");
            }
            if cmp.is_clean() {
                println!("# baseline comparison clean (tolerance ±10%)");
            }
            write_step_summary(&geomean_line, &cmp);
            if !cmp.errors.is_empty() {
                // Checksum (bit) drift fails the build: host-side
                // profiling and access-path changes must never change
                // simulated results.
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("perf_suite: baseline unreadable: {e}");
            std::process::exit(1);
        }
    }
}

/// Appends a markdown section to the CI job summary when GitHub Actions
/// exposes one (`$GITHUB_STEP_SUMMARY`); silently a no-op elsewhere.
fn write_step_summary(geomean_line: &str, cmp: &perf_suite::Comparison) {
    let Some(path) = std::env::var_os("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let mut md = String::new();
    md.push_str("## Perf trajectory\n\n");
    md.push_str(&format!("**{geomean_line}**\n\n"));
    if cmp.errors.is_empty() && cmp.warnings.is_empty() {
        md.push_str("Baseline comparison clean (tolerance ±10%).\n");
    }
    for w in &cmp.warnings {
        md.push_str(&format!("- WARN: {w}\n"));
    }
    for e in &cmp.errors {
        md.push_str(&format!("- **FAIL**: {e}\n"));
    }
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, md.as_bytes()))
    {
        eprintln!("perf_suite: could not append job summary: {e}");
    }
}
