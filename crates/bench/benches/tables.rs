//! `cargo bench -p gh-bench --bench tables` — Tables 1 and 2.

fn main() {
    let fast = gh_bench::fast_requested();
    gh_bench::emit(
        "Table 1: memory management types (behaviour probed on the simulator)",
        &gh_bench::tables::table1(),
        &[],
    );
    gh_bench::emit(
        "Table 2: application suite with measured peak GPU footprints",
        &gh_bench::tables::table2(fast),
        &[],
    );
}
