//! `cargo bench -p gh-bench --bench grand_matrix` — every workload ×
//! mode × page size, one table.

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::grand_matrix::run(fast);
    gh_bench::emit(
        "Grand matrix: workload x memory mode x page size (migration on)",
        &csv,
        &["the summary view the paper's figures slice; see EXPERIMENTS.md for the per-figure analysis"],
    );
}
