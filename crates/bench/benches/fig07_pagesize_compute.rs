//! `cargo bench -p gh-bench --bench fig07_pagesize_compute` — regenerates Figure 7: compute time, 4 KB vs 64 KB system pages (system version, migration on).

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::fig07_pagesize_compute::run(fast);
    gh_bench::emit("Figure 7: compute time, 4 KB vs 64 KB system pages (system version, migration on)", &csv, &["paper: 4 KB pages are 1.1x-2.1x faster in compute for all apps except srad (migration amplification)"]);
}
