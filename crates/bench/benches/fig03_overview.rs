//! `cargo bench -p gh-bench --bench fig03_overview` — regenerates Figure 3: unified-memory speedup vs explicit copies (in-memory, migration off).

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::fig03_overview::run(fast);
    gh_bench::emit("Figure 3: unified-memory speedup vs explicit copies (in-memory, migration off)", &csv, &["speedup > 1 means the unified version beats the explicit-copy original", "paper: system wins for needle/pathfinder/hotspot/bfs; managed wins for srad and 21-23 qubit QV"]);
}
