//! `cargo bench -p gh-bench --bench future_work` — the paper's §9 future
//! work: access-counter migration across diverse workloads.

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::future_work::run(fast);
    gh_bench::emit(
        "Future work (paper 9): access-counter migration across diverse workloads",
        &csv,
        &[
            "stream/kmeans/srad: dense or iterative -> working set migrates, remote traffic drains",
            "pointer_chase: only the hot subset migrates",
            "gups_sparse: uniform sparse traffic never crosses the threshold (with counter aging)",
        ],
    );
}
