//! `cargo bench -p gh-bench --bench fig08_qv_pagesize` — regenerates Figure 8: QV speedup of 64 KB over 4 KB system pages.

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::fig08_qv_pagesize::run(fast);
    gh_bench::emit("Figure 8: QV speedup of 64 KB over 4 KB system pages", &csv, &["paper: system-version speedup grows with qubits (to ~4x); managed flattens past 25 qubits"]);
}
