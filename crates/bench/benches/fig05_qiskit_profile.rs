//! `cargo bench -p gh-bench --bench fig05_qiskit_profile` — regenerates Figure 5: Quantum Volume memory usage over time (system vs managed).

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::fig05_qiskit_profile::run(fast);
    // ASCII rendering of the two memory profiles.
    for mode in ["system", "managed"] {
        let text = csv.render();
        let rows: Vec<(f64, f64, f64)> = text
            .lines()
            .skip(1)
            .filter(|l| l.starts_with(mode))
            .map(|l| {
                let c: Vec<&str> = l.split(',').collect();
                (
                    c[1].parse().unwrap(),
                    c[2].parse().unwrap(),
                    c[3].parse().unwrap(),
                )
            })
            .collect();
        let t: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let rss: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let gpu: Vec<f64> = rows.iter().map(|r| r.2).collect();
        println!(
            "{}",
            gh_profiler::ascii_chart(
                &format!("quantum volume memory profile ({mode})"),
                &t,
                &[("RSS MiB", '*', rss), ("GPU MiB", 'o', gpu)],
                72,
                12,
            )
        );
    }
    gh_bench::emit("Figure 5: Quantum Volume memory usage over time (system vs managed)", &csv, &["paper: GPU usage ramps slowly in system version (CPU-serviced ATS faults), jumps in managed"]);
}
