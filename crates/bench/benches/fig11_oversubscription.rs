//! `cargo bench -p gh-bench --bench fig11_oversubscription` — regenerates Figure 11: system-over-managed speedup vs oversubscription ratio.

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::fig11_oversubscription::run(fast);
    gh_bench::emit(
        "Figure 11: system-over-managed speedup vs oversubscription ratio",
        &csv,
        &["paper: speedup grows with oversubscription; srad is the strongest outlier"],
    );
}
