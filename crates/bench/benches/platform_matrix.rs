//! `cargo bench -p gh-bench --bench platform_matrix` — every application
//! on every registered platform backend (GH200 vs MI300A).

fn main() {
    let fast = gh_bench::fast_requested();
    let csv = gh_bench::platform_matrix::run(fast);
    gh_bench::emit(
        "Platform matrix: GH200 (two tiers, migration) vs MI300A (one unified pool)",
        &csv,
        &[
            "gh200: first touch places pages per tier; managed memory migrates on fault",
            "mi300a: CPU and GPU share one HBM3 pool — no migration, no tier choice",
            "ratio < 1 means the unified pool wins (no migration transient to amortize)",
        ],
    );
}
