//! Figure 13: initialization/computation breakdown of Quantum Volume
//! under oversubscription — paper-30q with a simulated-oversubscription
//! balloon (left) and paper-34q natural oversubscription (right), across
//! memory modes, page sizes, and the prefetch optimization.

use gh_apps::MemMode;
use gh_profiler::Csv;
use gh_qsim::{run_qv, statevector_bytes, QsimParams};

use crate::util::machine;

/// Rows: (case, config, init_ms, compute_ms).
pub fn run(fast: bool) -> Csv {
    let mut csv = Csv::new(["case", "config", "init_ms", "compute_ms"]);
    let (q30, q34) = if fast { (14u32, 21u32) } else { (20u32, 24u32) };

    // Left panel: paper-30q with a balloon forcing ~130% oversubscription.
    for (config, mode, page4k, prefetch) in cases() {
        let p = QsimParams {
            sim_qubits: q30,
            compute_amplitudes: false,
            prefetch,
            ..Default::default()
        };
        let mut m = machine(page4k, true);
        m.oversubscribe(statevector_bytes(q30), 1.3);
        let r = run_qv(m, mode, &p);
        push(&mut csv, "30q_simulated", config, &r);
    }

    // Right panel: paper-34q — the statevector naturally exceeds GPU
    // memory (128 MiB vs 96 MiB; in fast mode a shrunken GPU stands in).
    for (config, mode, page4k, prefetch) in cases() {
        let p = QsimParams {
            sim_qubits: q34,
            compute_amplitudes: false,
            prefetch,
            ..Default::default()
        };
        let m = if fast {
            let cfg = gh_sim::MachineConfig::with_page_size(if page4k {
                4 * gh_sim::KIB
            } else {
                64 * gh_sim::KIB
            });
            gh_sim::platform::gh200()
                .machine_tweaked(&cfg, &|c| {
                    c.gpu_mem_bytes = 13 << 20; // 16 MiB statevector → ~130%
                    c.gpu_driver_baseline = 512 << 10;
                })
                .expect("shrunken GPU keeps parameters valid")
        } else {
            machine(page4k, true)
        };
        let r = run_qv(m, mode, &p);
        push(&mut csv, "34q_natural", config, &r);
    }
    csv
}

fn cases() -> [(&'static str, MemMode, bool, bool); 6] {
    [
        ("managed_4k", MemMode::Managed, true, false),
        ("managed_64k", MemMode::Managed, false, false),
        ("managed_4k_prefetch", MemMode::Managed, true, true),
        ("managed_64k_prefetch", MemMode::Managed, false, true),
        ("system_4k", MemMode::System, true, false),
        ("system_64k", MemMode::System, false, false),
    ]
}

fn push(csv: &mut Csv, case: &str, config: &str, r: &gh_sim::RunReport) {
    let init = r.kernel_time_named("qv_init");
    let compute = r.kernel_time_named("qv_gate") + r.kernel_time_named("qv_norm");
    csv.row([
        case.to_string(),
        config.to_string(),
        format!("{:.3}", init as f64 / 1e6),
        format!("{:.3}", compute as f64 / 1e6),
    ]);
}

/// Total (init + compute) ms for one (case, config).
pub fn total_ms(csv: &Csv, case: &str, config: &str) -> f64 {
    csv.render()
        .lines()
        .find(|l| l.starts_with(&format!("{case},{config},")))
        .map(|l| {
            let c: Vec<&str> = l.split(',').collect();
            c[2].parse::<f64>().unwrap() + c[3].parse::<f64>().unwrap()
        })
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_improves_natural_oversubscription() {
        // Paper §7: with explicit prefetching, data is migrated back into
        // GPU memory, which results in higher performance.
        let csv = run(true);
        let plain = total_ms(&csv, "34q_natural", "managed_4k");
        let pref = total_ms(&csv, "34q_natural", "managed_4k_prefetch");
        assert!(
            pref < plain,
            "prefetch must help at 34q: {plain} vs {pref}\n{}",
            csv.render()
        );
    }

    #[test]
    fn managed_64k_helps_at_34q() {
        // Paper: switching 4 KB → 64 KB shortens init and accelerates
        // migration in the 34-qubit managed run (~58%).
        let csv = run(true);
        let t4 = total_ms(&csv, "34q_natural", "managed_4k");
        let t64 = total_ms(&csv, "34q_natural", "managed_64k");
        assert!(
            t64 <= t4 * 1.05,
            "64 KB must not be slower at 34q: {t4} vs {t64}\n{}",
            csv.render()
        );
    }

    #[test]
    fn all_twelve_bars_present() {
        let csv = run(true);
        assert_eq!(csv.len(), 12);
    }
}
