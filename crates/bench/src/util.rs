//! Shared harness utilities.

use gh_apps::{AppId, MemMode};
use gh_mem::clock::Ns;
use gh_sim::{CostParams, Machine, RunReport, RuntimeOptions};

/// Builds a machine with the given page size and migration switch.
pub fn machine(page_4k: bool, auto_migration: bool) -> Machine {
    let params = if page_4k {
        CostParams::with_4k_pages()
    } else {
        CostParams::with_64k_pages()
    };
    Machine::new(
        params,
        RuntimeOptions {
            auto_migration,
            ..Default::default()
        },
    )
}

/// Builds a machine with fully custom parameters/options.
pub fn machine_with(params: CostParams, opts: RuntimeOptions) -> Machine {
    Machine::new(params, opts)
}

/// Runs one application (default or shrunk input) on a fresh machine.
pub fn run_app(
    app: AppId,
    mode: MemMode,
    page_4k: bool,
    auto_migration: bool,
    fast: bool,
) -> RunReport {
    let m = machine(page_4k, auto_migration);
    if fast {
        app.run_small(m, mode)
    } else {
        app.run(m, mode)
    }
}

/// Measures an application's peak GPU usage (above the driver baseline)
/// in a non-oversubscribed managed run — the §3.2 recipe for computing
/// simulated-oversubscription ratios.
pub fn peak_gpu_usage(app: AppId, fast: bool) -> u64 {
    let r = run_app(app, MemMode::Managed, false, true, fast);
    r.peak_gpu
        .saturating_sub(CostParams::default().gpu_driver_baseline)
}

/// Formats a virtual duration in milliseconds with three decimals.
pub fn ms(t: Ns) -> String {
    format!("{:.3}", t as f64 / 1e6)
}

/// Ratio `a/b` with three decimals; `inf` when `b` is 0.
pub fn ratio(a: Ns, b: Ns) -> String {
    if b == 0 {
        "inf".into()
    } else {
        format!("{:.3}", a as f64 / b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_page_sizes() {
        assert_eq!(machine(true, true).rt.params().system_page_size, 4096);
        assert_eq!(machine(false, true).rt.params().system_page_size, 65536);
    }

    #[test]
    fn run_app_smoke() {
        let r = run_app(AppId::Hotspot, MemMode::System, false, true, true);
        assert!(r.checksum != 0.0);
    }

    #[test]
    fn peak_usage_is_positive() {
        assert!(peak_gpu_usage(AppId::Hotspot, true) > 0);
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(1_500_000), "1.500");
        assert_eq!(ratio(3, 2), "1.500");
        assert_eq!(ratio(1, 0), "inf");
    }
}
