//! Shared harness utilities.

use gh_apps::{AppId, MemMode};
use gh_mem::clock::Ns;
use gh_sim::{platform, Machine, MachineConfig, RunReport, KIB};

/// Builds a GH200 machine with the given page size and migration switch.
pub fn machine(page_4k: bool, auto_migration: bool) -> Machine {
    let cfg = MachineConfig {
        page_size: Some(if page_4k { 4 * KIB } else { 64 * KIB }),
        auto_migration,
        ..Default::default()
    };
    platform::gh200()
        .machine_cfg(&cfg)
        .expect("GH200 supports both paper page sizes")
}

/// Runs one application (default or shrunk input) on a fresh machine.
/// With `GH_TRACE=1` the run is traced on the observability bus and the
/// trace artifacts are exported (see [`traced`]).
pub fn run_app(
    app: AppId,
    mode: MemMode,
    page_4k: bool,
    auto_migration: bool,
    fast: bool,
) -> RunReport {
    let label = format!(
        "{}-{}-{}",
        app.name(),
        mode.label(),
        if page_4k { "4k" } else { "64k" }
    );
    traced(&label, || {
        let m = machine(page_4k, auto_migration);
        if fast {
            app.run_small(m, mode)
        } else {
            app.run(m, mode)
        }
    })
}

/// True when the `GH_TRACE` environment variable asks for bus tracing.
pub fn trace_requested() -> bool {
    std::env::var("GH_TRACE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Runs `f` with the observability bus enabled when `GH_TRACE=1`; the
/// drained trace is exported via [`export_trace`] under `label`. When
/// tracing is off, `f` runs untouched — recording is no-op-gated, so
/// virtual-time results are identical either way.
pub fn traced(label: &str, f: impl FnOnce() -> RunReport) -> RunReport {
    if !trace_requested() {
        return f();
    }
    gh_trace::enable();
    let mut r = f();
    gh_trace::disable();
    // Machine::finish drains the bus into the report; drain here as a
    // fallback for workloads that bypass finish.
    if r.trace.is_none() {
        r.trace = Some(gh_trace::take());
    }
    export_trace(label, &r);
    r
}

/// Writes `<prefix>-<label>.trace.json` (Chrome trace, Perfetto-loadable)
/// and `<prefix>-<label>.metrics.csv` next to the working directory and
/// prints the explain table to stderr. The prefix defaults to `gh-trace`
/// and is overridden with `GH_TRACE_OUT`.
pub fn export_trace(label: &str, r: &RunReport) {
    let Some(t) = &r.trace else { return };
    let prefix = std::env::var("GH_TRACE_OUT").unwrap_or_else(|_| "gh-trace".into());
    let slug: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let trace_path = format!("{prefix}-{slug}.trace.json");
    let metrics_path = format!("{prefix}-{slug}.metrics.csv");
    if let Err(e) = std::fs::write(&trace_path, gh_trace::export::chrome_trace(t)) {
        eprintln!("cannot write {trace_path}: {e}");
        return;
    }
    if let Err(e) = std::fs::write(&metrics_path, gh_trace::export::metrics_csv(t)) {
        eprintln!("cannot write {metrics_path}: {e}");
        return;
    }
    eprintln!("{}", gh_trace::export::explain(t));
    eprintln!("trace: {trace_path}  metrics: {metrics_path}");
}

/// Measures an application's peak GPU usage (above the driver baseline)
/// in a non-oversubscribed managed run — the §3.2 recipe for computing
/// simulated-oversubscription ratios.
pub fn peak_gpu_usage(app: AppId, fast: bool) -> u64 {
    let r = run_app(app, MemMode::Managed, false, true, fast);
    r.peak_gpu
        .saturating_sub(platform::gh200().gpu_driver_baseline())
}

/// Formats a virtual duration in milliseconds with three decimals.
pub fn ms(t: Ns) -> String {
    format!("{:.3}", t as f64 / 1e6)
}

/// Ratio `a/b` with three decimals; `inf` when `b` is 0.
pub fn ratio(a: Ns, b: Ns) -> String {
    if b == 0 {
        "inf".into()
    } else {
        format!("{:.3}", a as f64 / b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_page_sizes() {
        assert_eq!(machine(true, true).rt.params().system_page_size, 4096);
        assert_eq!(machine(false, true).rt.params().system_page_size, 65536);
    }

    #[test]
    fn run_app_smoke() {
        let r = run_app(AppId::Hotspot, MemMode::System, false, true, true);
        assert!(r.checksum != 0.0);
    }

    #[test]
    fn peak_usage_is_positive() {
        assert!(peak_gpu_usage(AppId::Hotspot, true) > 0);
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(1_500_000), "1.500");
        assert_eq!(ratio(3, 2), "1.500");
        assert_eq!(ratio(1, 0), "inf");
    }
}
