//! Shared harness utilities.
//!
//! Benches are a *boundary*: this module is where `GH_TRACE`/`GH_JOBS`
//! env vars are read and folded into per-run
//! [`SessionOptions`](gh_cuda::SessionOptions). Library code below this
//! layer never touches the environment (audit rule `no-ambient-state`).

use gh_apps::{AppId, MemMode};
use gh_cuda::SessionOptions;
use gh_mem::clock::Ns;
use gh_sim::{platform, Machine, MachineConfig, RunReport, KIB};

/// Builds a GH200 machine with the given page size and migration switch
/// and a quiet session.
pub fn machine(page_4k: bool, auto_migration: bool) -> Machine {
    machine_session(page_4k, auto_migration, &SessionOptions::default())
}

/// Builds a GH200 machine under explicit session options.
pub fn machine_session(page_4k: bool, auto_migration: bool, so: &SessionOptions) -> Machine {
    let cfg = MachineConfig {
        page_size: Some(if page_4k { 4 * KIB } else { 64 * KIB }),
        auto_migration,
        ..Default::default()
    };
    platform::gh200()
        .machine_session(&cfg, so)
        .expect("GH200 supports both paper page sizes")
}

/// Runs one application (default or shrunk input) on a fresh machine.
/// With `GH_TRACE=1` the run is traced on its session bus and the trace
/// artifacts are exported (see [`traced`]).
pub fn run_app(
    app: AppId,
    mode: MemMode,
    page_4k: bool,
    auto_migration: bool,
    fast: bool,
) -> RunReport {
    let label = format!(
        "{}-{}-{}",
        app.name(),
        mode.label(),
        if page_4k { "4k" } else { "64k" }
    );
    traced(&label, |so| {
        let m = machine_session(page_4k, auto_migration, so);
        if fast {
            app.run_small(m, mode)
        } else {
            app.run(m, mode)
        }
    })
}

/// True when the `GH_TRACE` environment variable asks for bus tracing.
pub fn trace_requested() -> bool {
    std::env::var("GH_TRACE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Worker count for concurrent harnesses: `GH_JOBS=<n>` wins, otherwise
/// `default` (pass 1 for serial-by-default suites).
pub fn jobs_requested(default: usize) -> usize {
    std::env::var("GH_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// Session options for one harness run: tracing per `GH_TRACE`,
/// everything else default.
pub fn session_opts() -> SessionOptions {
    SessionOptions {
        trace: trace_requested(),
        ..Default::default()
    }
}

/// Runs `f` under session options seeded from the environment
/// (`GH_TRACE=1` arms the bus); the report's embedded trace is exported
/// via [`export_trace`] under `label`. When tracing is off, the bus
/// no-ops — virtual-time results are identical either way.
pub fn traced(label: &str, f: impl FnOnce(&SessionOptions) -> RunReport) -> RunReport {
    let so = session_opts();
    let r = f(&so);
    if so.trace {
        export_trace(label, &r);
    }
    r
}

/// Writes `<prefix>-<label>.trace.json` (Chrome trace, Perfetto-loadable)
/// and `<prefix>-<label>.metrics.csv` next to the working directory and
/// prints the explain table to stderr. The prefix defaults to `gh-trace`
/// and is overridden with `GH_TRACE_OUT`.
pub fn export_trace(label: &str, r: &RunReport) {
    let Some(t) = &r.trace else { return };
    let prefix = std::env::var("GH_TRACE_OUT").unwrap_or_else(|_| "gh-trace".into());
    let slug: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let trace_path = format!("{prefix}-{slug}.trace.json");
    let metrics_path = format!("{prefix}-{slug}.metrics.csv");
    if let Err(e) = std::fs::write(&trace_path, gh_trace::export::chrome_trace(t)) {
        eprintln!("cannot write {trace_path}: {e}");
        return;
    }
    if let Err(e) = std::fs::write(&metrics_path, gh_trace::export::metrics_csv(t)) {
        eprintln!("cannot write {metrics_path}: {e}");
        return;
    }
    eprintln!("{}", gh_trace::export::explain(t));
    eprintln!("trace: {trace_path}  metrics: {metrics_path}");
}

/// Measures an application's peak GPU usage (above the driver baseline)
/// in a non-oversubscribed managed run — the §3.2 recipe for computing
/// simulated-oversubscription ratios.
pub fn peak_gpu_usage(app: AppId, fast: bool) -> u64 {
    let r = run_app(app, MemMode::Managed, false, true, fast);
    r.peak_gpu
        .saturating_sub(platform::gh200().gpu_driver_baseline())
}

/// Formats a virtual duration in milliseconds with three decimals.
pub fn ms(t: Ns) -> String {
    format!("{:.3}", t as f64 / 1e6)
}

/// Ratio `a/b` with three decimals; `inf` when `b` is 0.
pub fn ratio(a: Ns, b: Ns) -> String {
    if b == 0 {
        "inf".into()
    } else {
        format!("{:.3}", a as f64 / b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_page_sizes() {
        assert_eq!(machine(true, true).rt.params().system_page_size, 4096);
        assert_eq!(machine(false, true).rt.params().system_page_size, 65536);
    }

    #[test]
    fn run_app_smoke() {
        let r = run_app(AppId::Hotspot, MemMode::System, false, true, true);
        assert!(r.checksum != 0.0);
    }

    #[test]
    fn peak_usage_is_positive() {
        assert!(peak_gpu_usage(AppId::Hotspot, true) > 0);
    }

    #[test]
    fn jobs_default_applies_without_env() {
        // GH_JOBS is not set under `cargo test`; the default wins.
        if std::env::var("GH_JOBS").is_err() {
            assert_eq!(jobs_requested(1), 1);
            assert_eq!(jobs_requested(8), 8);
        }
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(1_500_000), "1.500");
        assert_eq!(ratio(3, 2), "1.500");
        assert_eq!(ratio(1, 0), "inf");
    }
}
