//! Figure 3: relative performance of system-allocated and managed memory
//! versus the original explicit-copy version, six applications,
//! in-memory, automatic migration disabled.

use gh_apps::{AppId, MemMode};
use gh_profiler::Csv;
use gh_qsim::{run_qv, QsimParams};

use crate::util::{machine, ms, run_app};

/// Qubit counts for the Quantum Volume series. These are the paper's own
/// counts: at 17–23 qubits the statevector is 1–64 MB in *absolute*
/// terms, fitting both the real and the scaled GPU, so no remapping is
/// needed (DESIGN.md §3).
pub const QV_QUBITS: [u32; 3] = [17, 20, 23];

/// Runs the full overview; rows are (app, mode, reported_ms, speedup).
pub fn run(fast: bool) -> Csv {
    let mut csv = Csv::new(["app", "mode", "reported_ms", "speedup_vs_explicit"]);

    for app in AppId::ALL {
        let mut explicit_time = 0;
        for mode in MemMode::ALL {
            let r = run_app(app, mode, false, false, fast);
            let t = r.reported_total();
            if mode == MemMode::Explicit {
                explicit_time = t;
            }
            csv.row([
                app.name().to_string(),
                mode.label().to_string(),
                ms(t),
                format!("{:.3}", explicit_time as f64 / t as f64),
            ]);
        }
    }

    let qubits: &[u32] = if fast { &[14] } else { &QV_QUBITS };
    for &q in qubits {
        let p = QsimParams {
            sim_qubits: q,
            compute_amplitudes: false,
            ..Default::default()
        };
        let mut explicit_time = 0;
        for mode in MemMode::ALL {
            let r = run_qv(machine(false, false), mode, &p);
            let t = r.reported_total();
            if mode == MemMode::Explicit {
                explicit_time = t;
            }
            csv.row([
                format!("qv_{q}q"),
                mode.label().to_string(),
                ms(t),
                format!("{:.3}", explicit_time as f64 / t as f64),
            ]);
        }
    }
    csv
}

/// Extracts the speedup for (app, mode) from the CSV.
pub fn speedup(csv: &Csv, app: &str, mode: &str) -> f64 {
    csv.render()
        .lines()
        .find(|l| l.starts_with(&format!("{app},{mode},")))
        .and_then(|l| l.split(',').nth(3))
        .and_then(|s| s.parse().ok())
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overview_rows_cover_apps_and_modes() {
        let csv = run(true);
        assert_eq!(csv.len(), 6 * 3);
        assert_eq!(speedup(&csv, "hotspot", "explicit"), 1.0);
    }

    #[test]
    fn system_beats_managed_for_cpu_init_apps() {
        // Paper Fig 3: needle, pathfinder, hotspot, bfs — the system
        // version outperforms the managed version.
        let csv = run(true);
        for app in ["needle", "pathfinder", "hotspot", "bfs"] {
            let s = speedup(&csv, app, "system");
            let m = speedup(&csv, app, "managed");
            assert!(
                s > m,
                "{app}: system speedup {s} must exceed managed {m}\n{}",
                csv.render()
            );
        }
    }

    #[test]
    fn full_scale_overview_matches_paper_shapes() {
        // The complete Fig 3 picture at full (scaled) inputs:
        // * system > managed for needle/pathfinder/hotspot/bfs;
        // * the system version of pathfinder and bfs even beats the
        //   explicit original (paper: needle and pathfinder do);
        // * managed > system for srad (GPU-initialized derivatives);
        // * the original explicit QV pipeline is the fastest QV variant,
        //   and system-vs-managed crosses over between 17 and 20-23
        //   qubits.
        let csv = run(false);
        for app in ["needle", "pathfinder", "hotspot", "bfs"] {
            assert!(
                speedup(&csv, app, "system") > speedup(&csv, app, "managed"),
                "{app}\n{}",
                csv.render()
            );
        }
        assert!(speedup(&csv, "pathfinder", "system") > 1.0);
        assert!(speedup(&csv, "bfs", "system") > 1.0);
        assert!(speedup(&csv, "srad", "managed") > speedup(&csv, "srad", "system"));
        // QV: explicit fastest at scale; crossover.
        assert!(speedup(&csv, "qv_23q", "system") < 1.0);
        assert!(speedup(&csv, "qv_23q", "managed") < 1.0);
        assert!(
            speedup(&csv, "qv_17q", "system") > speedup(&csv, "qv_17q", "managed"),
            "17q must favour system\n{}",
            csv.render()
        );
        assert!(
            speedup(&csv, "qv_23q", "managed") > speedup(&csv, "qv_23q", "system"),
            "23q must favour managed\n{}",
            csv.render()
        );
    }
}
