//! Figure 7: computation time of the system-memory version, 4 KB vs
//! 64 KB system pages, automatic migration enabled.

use gh_apps::{AppId, MemMode};
use gh_profiler::Csv;

use crate::util::{ms, run_app};

/// Rows: (app, page, compute_ms, migrated_mib).
pub fn run(fast: bool) -> Csv {
    let mut csv = Csv::new(["app", "page", "compute_ms", "migrated_mib"]);
    for app in AppId::ALL {
        for (page, label) in [(true, "4k"), (false, "64k")] {
            let r = run_app(app, MemMode::System, page, true, fast);
            csv.row([
                app.name().to_string(),
                label.to_string(),
                ms(r.phases.compute),
                format!(
                    "{:.2}",
                    r.traffic.bytes_migrated_in as f64 / (1 << 20) as f64
                ),
            ]);
        }
    }
    csv
}

/// Compute-time ratio 64k/4k for one app (> 1 means 4 KB pages are
/// faster, the paper's Fig 7 finding for all apps except SRAD).
pub fn compute_ratio(csv: &Csv, app: &str) -> f64 {
    let get = |page: &str, col: usize| -> f64 {
        csv.render()
            .lines()
            .find(|l| l.starts_with(&format!("{app},{page},")))
            .and_then(|l| l.split(',').nth(col))
            .and_then(|s| s.parse().ok())
            .unwrap()
    };
    get("64k", 2) / get("4k", 2)
}

/// Migration amplification: migrated bytes at 64k / migrated at 4k.
pub fn amplification(csv: &Csv, app: &str) -> f64 {
    let get = |page: &str| -> f64 {
        csv.render()
            .lines()
            .find(|l| l.starts_with(&format!("{app},{page},")))
            .and_then(|l| l.split(',').nth(3))
            .and_then(|s| s.parse().ok())
            .unwrap()
    };
    let four = get("4k");
    // gh-audit: allow(no-float-eq) -- exact-zero guard before division
    if four == 0.0 {
        1.0
    } else {
        get("64k") / four
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shapes_hold_at_full_scale() {
        // Paper Fig 7 (full inputs required): 4 KB pages give lower
        // compute time than 64 KB for the Rodinia apps (1.1×–2.1×) —
        // except SRAD, whose iterative reuse profits from the faster
        // 64 KB migration. BFS's sparse gathers also show migration
        // amplification (more bytes migrated with large pages).
        let csv = run(false);
        for app in ["needle", "pathfinder", "bfs"] {
            let r = compute_ratio(&csv, app);
            assert!(
                (1.05..=3.0).contains(&r),
                "{app}: 64k/4k compute ratio {r} outside the paper band\n{}",
                csv.render()
            );
        }
        let hotspot = compute_ratio(&csv, "hotspot");
        assert!(
            (0.7..=2.1).contains(&hotspot),
            "hotspot must stay inside the paper band, got {hotspot}"
        );
        let srad = compute_ratio(&csv, "srad");
        assert!(
            srad < 1.0,
            "srad must profit from 64 KB pages, got ratio {srad}"
        );
        let amp = amplification(&csv, "bfs");
        assert!(
            amp > 1.5,
            "bfs 64k migration amplification {amp}\n{}",
            csv.render()
        );
    }

    #[test]
    fn compute_rows_exist_for_all_apps() {
        let csv = run(true);
        assert_eq!(csv.len(), AppId::ALL.len() * 2);
    }
}
