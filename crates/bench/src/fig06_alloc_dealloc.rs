//! Figure 6: allocation and de-allocation time of the system-memory
//! version, 4 KB vs 64 KB system pages.

use gh_apps::{AppId, MemMode};
use gh_profiler::Csv;

use crate::util::{ms, run_app};

/// Rows: (app, page, alloc_ms, dealloc_ms).
pub fn run(fast: bool) -> Csv {
    let mut csv = Csv::new(["app", "page", "alloc_ms", "dealloc_ms"]);
    for app in AppId::ALL {
        for (page, label) in [(true, "4k"), (false, "64k")] {
            let r = run_app(app, MemMode::System, page, true, fast);
            csv.row([
                app.name().to_string(),
                label.to_string(),
                ms(r.phases.alloc),
                ms(r.phases.dealloc),
            ]);
        }
    }
    csv
}

/// Dealloc-time ratio 4k/64k for one app.
pub fn dealloc_ratio(csv: &Csv, app: &str) -> f64 {
    let get = |page: &str| -> f64 {
        csv.render()
            .lines()
            .find(|l| l.starts_with(&format!("{app},{page},")))
            .and_then(|l| l.split(',').nth(3))
            .and_then(|s| s.parse().ok())
            .unwrap()
    };
    get("4k") / get("64k")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dealloc_much_cheaper_with_64k_pages() {
        // Paper Fig 6: 4.6×–38× improvement, average 15.9×. Requires the
        // full (scaled) inputs: at toy sizes the fixed cudaFree cost
        // floors the ratio.
        let csv = run(false);
        let mut ratios = Vec::new();
        for app in AppId::ALL {
            let r = dealloc_ratio(&csv, app.name());
            assert!(
                r > 4.0,
                "{}: dealloc 4k/64k ratio {r} below the paper's band\n{}",
                app.name(),
                csv.render()
            );
            ratios.push(r);
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            (8.0..=40.0).contains(&avg),
            "average ratio {avg} out of band"
        );
    }

    #[test]
    fn alloc_time_is_small_for_most_apps() {
        // Paper: four out of five applications have nearly negligible
        // allocation time (lazy VMAs; only fixed CUDA API costs remain).
        let csv = run(true);
        let negligible = csv
            .render()
            .lines()
            .skip(1)
            .filter(|l| {
                let alloc: f64 = l.split(',').nth(2).unwrap().parse().unwrap();
                alloc < 0.5
            })
            .count();
        assert!(
            negligible >= 8,
            "most rows must have negligible alloc\n{}",
            csv.render()
        );
    }
}
