//! Figure 12: memory throughput of the three memory-hierarchy tiers in
//! the 34-paper-qubit (130% oversubscribed) Quantum Volume run. The
//! L1↔L2 traffic rate indicates how fast data is fed to the SMs; the
//! prefetch optimization converts slow C2C streams into local HBM reads.

use gh_apps::MemMode;
use gh_profiler::Csv;
use gh_qsim::{run_qv, QsimParams};

use crate::util::machine;

/// Rows: (config, l1l2_gbps, hbm_read_gbps, c2c_read_gbps).
pub fn run(fast: bool) -> Csv {
    let sim_qubits = if fast { 21 } else { 24 }; // 24 = paper 34q, natural oversub
    let mut csv = Csv::new(["config", "l1l2_gbps", "hbm_read_gbps", "c2c_read_gbps"]);
    let configs: [(&str, bool, bool); 4] = [
        ("managed_4k", true, false),
        ("managed_64k", false, false),
        ("managed_4k_prefetch", true, true),
        ("managed_64k_prefetch", false, true),
    ];
    for (name, page4k, prefetch) in configs {
        let p = QsimParams {
            sim_qubits,
            compute_amplitudes: false,
            prefetch,
            ..Default::default()
        };
        let m = if fast {
            // Shrink the GPU so 21 sim-qubits (16 MiB) oversubscribes at
            // the paper's ~130%.
            let cfg = gh_sim::MachineConfig::with_page_size(if page4k {
                4 * gh_sim::KIB
            } else {
                64 * gh_sim::KIB
            });
            gh_sim::platform::gh200()
                .machine_tweaked(&cfg, &|c| {
                    c.gpu_mem_bytes = 13 << 20;
                    c.gpu_driver_baseline = 512 << 10;
                })
                .expect("shrunken GPU keeps parameters valid")
        } else {
            machine(page4k, true)
        };
        let r = run_qv(m, MemMode::Managed, &p);
        let gate_time: u64 = r
            .kernel_times
            .iter()
            .filter(|(n, _)| n.starts_with("qv_gate"))
            .map(|(_, t)| t)
            .sum();
        let gates = r.kernel_traffic_named("qv_gate");
        let sum = |f: fn(&gh_mem::traffic::KernelTraffic) -> u64| -> u64 {
            gates.iter().map(|t| f(t)).sum()
        };
        let gbps = |bytes: u64| format!("{:.1}", bytes as f64 / gate_time as f64);
        csv.row([
            name.to_string(),
            gbps(sum(|t| t.l1l2)),
            gbps(sum(|t| t.hbm_read)),
            gbps(sum(|t| t.c2c_read)),
        ]);
    }
    csv
}

/// Reads one throughput column for a config.
pub fn col(csv: &Csv, config: &str, idx: usize) -> f64 {
    csv.render()
        .lines()
        .find(|l| l.starts_with(&format!("{config},")))
        .and_then(|l| l.split(',').nth(idx))
        .and_then(|s| s.parse().ok())
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_raises_l1l2_throughput() {
        // Paper Fig 12: without prefetching the computation is throttled
        // by slow C2C traffic; prefetching makes most traffic local and
        // greatly improves the L1↔L2 rate.
        let csv = run(true);
        let plain = col(&csv, "managed_4k", 1);
        let pref = col(&csv, "managed_4k_prefetch", 1);
        assert!(
            pref > plain * 2.0,
            "prefetch must raise L1L2 throughput: {plain} → {pref}\n{}",
            csv.render()
        );
    }

    #[test]
    fn prefetch_shifts_traffic_from_c2c_to_hbm() {
        let csv = run(true);
        let c2c_plain = col(&csv, "managed_4k", 3);
        let hbm_plain = col(&csv, "managed_4k", 2);
        let c2c_pref = col(&csv, "managed_4k_prefetch", 3);
        let hbm_pref = col(&csv, "managed_4k_prefetch", 2);
        assert!(
            c2c_plain > hbm_plain,
            "un-prefetched run must be C2C-dominated"
        );
        assert!(hbm_pref > c2c_pref, "prefetched run must be HBM-dominated");
    }
}
