//! `gh-bench` — experiment harnesses that regenerate every table and
//! figure of the paper's evaluation, plus ablation studies.
//!
//! Each `figNN_*` module exposes `run(fast) -> Csv`; the corresponding
//! bench target (`cargo bench -p gh-bench --bench figNN_...`) prints the
//! table together with a short interpretation. `fast = true` shrinks
//! inputs for smoke tests; published numbers use `fast = false`.
//!
//! Qubit-count conventions (see DESIGN.md §3):
//! * experiments whose footprint crosses GPU capacity use the capacity
//!   mapping `paper_qubits = sim_qubits + 10` (Figs 8, 9, 12, 13);
//! * the Fig 3 overview uses the paper's qubit counts *directly*, because
//!   those footprints (1–64 MB) are absolute-scale and fit both the real
//!   and the scaled GPU.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod ablations;
pub mod bandwidth;
pub mod fig03_overview;
pub mod fig04_hotspot_profile;
pub mod fig05_qiskit_profile;
pub mod fig06_alloc_dealloc;
pub mod fig07_pagesize_compute;
pub mod fig08_qv_pagesize;
pub mod fig09_qv_breakdown;
pub mod fig10_srad_migration;
pub mod fig11_oversubscription;
pub mod fig12_qv_throughput;
pub mod fig13_qv_oversub_breakdown;
pub mod future_work;
pub mod grand_matrix;
pub mod perf_suite;
pub mod platform_matrix;
pub mod scoreboard;
pub mod tables;
pub mod util;

pub use gh_profiler::Csv;

/// Prints a figure harness result in the standard format: a title line,
/// the CSV block, and trailing notes.
pub fn emit(title: &str, csv: &Csv, notes: &[&str]) {
    println!("==== {title} ====");
    print!("{}", csv.render());
    for n in notes {
        println!("# {n}");
    }
    println!();
}

/// True when the `GH_FAST` environment variable asks for shrunk inputs.
pub fn fast_requested() -> bool {
    std::env::var("GH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}
