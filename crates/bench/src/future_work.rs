//! The paper's future work, executed: "a deep understanding of the
//! access counter-based migration on diverse workloads" (§9).
//!
//! Five access patterns × {migration on/off} × {4 KiB, 64 KiB} pages,
//! reporting what migrated, how remote traffic evolved, and what it cost.

use gh_apps::micro::{self, MicroParams};
use gh_apps::{kmeans, lud, srad, MemMode};
use gh_profiler::Csv;
use gh_sim::{Machine, RunReport};

use crate::util::machine;

fn run_workload(name: &str, m: Machine, fast: bool) -> RunReport {
    let mp = if fast {
        MicroParams {
            bytes: 16 << 20,
            iterations: 6,
            touches: 20_000,
            seed: 9,
        }
    } else {
        MicroParams {
            bytes: 48 << 20,
            iterations: 12,
            touches: 120_000,
            seed: 9,
        }
    };
    match name {
        "stream" => micro::stream(m, MemMode::System, &mp),
        "gups_sparse" => micro::gups(
            m,
            MemMode::System,
            &MicroParams {
                // Keep the per-region expected count (reads + writes)
                // well below the 256 threshold: this is the
                // *never-gets-hot* reference point of the sweep.
                touches: mp.touches / 80,
                ..mp
            },
        ),
        "pointer_chase" => micro::pointer_chase(m, MemMode::System, &mp),
        "kmeans" => kmeans::run(
            m,
            MemMode::System,
            &kmeans::KmeansParams {
                points: if fast { 100_000 } else { 400_000 },
                dims: 16,
                k: 8,
                iterations: if fast { 6 } else { 10 },
                seed: 9,
            },
        ),
        "lud" => lud::run(
            m,
            MemMode::System,
            &lud::LudParams {
                n: if fast { 512 } else { 2048 },
                seed: 9,
            },
        ),
        "srad" => srad::run(
            m,
            MemMode::System,
            &srad::SradParams {
                size: if fast { 512 } else { 1800 },
                iterations: 12,
                ..Default::default()
            },
        ),
        other => panic!("unknown workload {other}"),
    }
}

/// All five workloads: one row per (workload, page, migration) with
/// compute time, migrated bytes and first/last-kernel remote traffic.
pub const WORKLOADS: [&str; 6] = [
    "stream",
    "gups_sparse",
    "pointer_chase",
    "kmeans",
    "lud",
    "srad",
];

/// Runs the sweep.
pub fn run(fast: bool) -> Csv {
    let mut csv = Csv::new([
        "workload",
        "page",
        "migration",
        "compute_ms",
        "migrated_mib",
        "first_c2c_mib",
        "last_c2c_mib",
    ]);
    for name in WORKLOADS {
        for (page_4k, plabel) in [(true, "4k"), (false, "64k")] {
            for migration in [false, true] {
                let r = run_workload(name, machine(page_4k, migration), fast);
                let kernels: Vec<u64> = r
                    .kernel_history
                    .iter()
                    .filter(|(n, _)| !n.starts_with("hotspot"))
                    .map(|(_, t)| t.c2c_read)
                    .collect();
                csv.row([
                    name.to_string(),
                    plabel.to_string(),
                    if migration { "on" } else { "off" }.to_string(),
                    format!("{:.3}", r.phases.compute as f64 / 1e6),
                    format!(
                        "{:.2}",
                        r.traffic.bytes_migrated_in as f64 / (1 << 20) as f64
                    ),
                    format!(
                        "{:.2}",
                        kernels.first().copied().unwrap_or(0) as f64 / (1 << 20) as f64
                    ),
                    format!(
                        "{:.2}",
                        kernels.last().copied().unwrap_or(0) as f64 / (1 << 20) as f64
                    ),
                ]);
            }
        }
    }
    csv
}

/// Looks up a cell for (workload, page, migration).
pub fn cell(csv: &Csv, workload: &str, page: &str, migration: &str, col: usize) -> f64 {
    csv.render()
        .lines()
        .find(|l| l.starts_with(&format!("{workload},{page},{migration},")))
        .and_then(|l| l.split(',').nth(col))
        .and_then(|s| s.parse().ok())
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_selectivity_matches_pattern_class() {
        let csv = run(true);
        // Dense/sequential and skewed patterns migrate; sparse uniform
        // does not.
        assert!(cell(&csv, "stream", "64k", "on", 4) > 0.0);
        assert!(cell(&csv, "pointer_chase", "64k", "on", 4) > 0.0);
        assert_eq!(
            cell(&csv, "gups_sparse", "64k", "on", 4),
            0.0,
            "\n{}",
            csv.render()
        );
    }

    #[test]
    fn iterative_workloads_drain_remote_traffic() {
        let csv = run(true);
        for w in ["kmeans", "srad"] {
            let first = cell(&csv, w, "64k", "on", 5);
            let last = cell(&csv, w, "64k", "on", 6);
            assert!(
                last < first,
                "{w}: remote traffic must decay with migration on\n{}",
                csv.render()
            );
        }
    }

    #[test]
    fn sweep_covers_all_cells() {
        let csv = run(true);
        assert_eq!(csv.len(), WORKLOADS.len() * 4);
    }
}
