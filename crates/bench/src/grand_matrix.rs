//! The grand matrix: every application × memory mode × page size in one
//! table — the summary view the paper's individual figures slice.

use gh_apps::{AppId, MemMode};
use gh_profiler::Csv;
use gh_qsim::{run_qv, QsimParams};

use crate::util::{machine, run_app};

/// Rows: (workload, mode, page, reported_ms, c2c_mib, migrated_mib,
/// faults). Auto-migration on (the machine's default configuration).
pub fn run(fast: bool) -> Csv {
    let mut csv = Csv::new([
        "workload",
        "mode",
        "page",
        "reported_ms",
        "c2c_mib",
        "migrated_mib",
        "faults",
    ]);
    for app in AppId::ALL {
        for mode in MemMode::ALL {
            for (page_4k, page) in [(false, "64k"), (true, "4k")] {
                let r = run_app(app, mode, page_4k, true, fast);
                push(&mut csv, app.name(), mode, page, &r);
            }
        }
    }
    let q = if fast { 14 } else { 20 };
    for mode in MemMode::ALL {
        for (page_4k, page) in [(false, "64k"), (true, "4k")] {
            let p = QsimParams {
                sim_qubits: q,
                compute_amplitudes: false,
                ..Default::default()
            };
            let r = run_qv(machine(page_4k, true), mode, &p);
            push(&mut csv, "qiskit-qv", mode, page, &r);
        }
    }
    csv
}

fn push(csv: &mut Csv, name: &str, mode: MemMode, page: &str, r: &gh_sim::RunReport) {
    csv.row([
        name.to_string(),
        mode.label().to_string(),
        page.to_string(),
        format!("{:.3}", r.reported_total() as f64 / 1e6),
        format!("{}", (r.traffic.c2c_read + r.traffic.c2c_write) >> 20),
        format!("{}", r.traffic.bytes_migrated_in >> 20),
        format!("{}", r.traffic.gpu_faults + r.traffic.ats_faults),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_cells() {
        let csv = run(true);
        assert_eq!(csv.len(), (AppId::ALL.len() + 1) * 3 * 2);
        let text = csv.render();
        // Spot-check the structural signals: explicit rows never fault,
        // managed rows never read over C2C in-memory for CPU-init apps.
        for line in text.lines().skip(1) {
            let c: Vec<&str> = line.split(',').collect();
            if c[1] == "explicit" {
                assert_eq!(c[6], "0", "explicit never faults: {line}");
            }
        }
    }
}
