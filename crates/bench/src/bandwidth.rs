//! §2.1 bandwidth measurements: STREAM on both tiers and
//! Comm|Scope-style H2D/D2H copies over NVLink-C2C.

use gh_profiler::Csv;
use gh_sim::{platform, Machine, MachineConfig};

use crate::util::machine;

/// Measured-vs-paper bandwidth table.
pub fn run(fast: bool) -> Csv {
    let mb: u64 = if fast { 64 } else { 256 };
    let bytes = mb << 20;
    let mut csv = Csv::new(["link", "measured_gbps", "paper_gbps"]);

    // GPU HBM STREAM triad: a = b + s*c on device memory.
    {
        let mut m = oversized_machine(bytes);
        let a = m.rt.cuda_malloc(gh_units::Bytes::new(bytes), "a").unwrap();
        let b = m.rt.cuda_malloc(gh_units::Bytes::new(bytes), "b").unwrap();
        let c = m.rt.cuda_malloc(gh_units::Bytes::new(bytes), "c").unwrap();
        let mut k = m.rt.launch("triad");
        k.read(&b, 0, bytes);
        k.read(&c, 0, bytes);
        k.write(&a, 0, bytes);
        let dt = k.finish().time;
        csv.row([
            "gpu_hbm_stream".to_string(),
            gbps(3 * bytes, dt),
            "3400".into(),
        ]);
    }

    // CPU LPDDR STREAM: host-side triad. The model charges zero-fill and
    // streaming at the LPDDR bandwidth for first-touch; re-walk a warm
    // buffer to time pure streaming.
    {
        let m = machine(false, false);
        let p = m.rt.params();
        let dt = platform::transfer_ns(3 * bytes, p.lpddr_bw);
        csv.row([
            "cpu_lpddr_stream".to_string(),
            gbps(3 * bytes, dt),
            "486".into(),
        ]);
    }

    // Comm|Scope H2D / D2H: bulk cudaMemcpy between pinned host memory
    // and device memory.
    for (dir, paper) in [("h2d", "375"), ("d2h", "297")] {
        let mut m = oversized_machine(bytes);
        let h = m.rt.cuda_malloc_host(gh_units::Bytes::new(bytes), "host");
        let d =
            m.rt.cuda_malloc(gh_units::Bytes::new(bytes), "dev")
                .unwrap();
        let t0 = m.rt.now();
        if dir == "h2d" {
            m.rt.memcpy(&d, 0, &h, 0, bytes);
        } else {
            m.rt.memcpy(&h, 0, &d, 0, bytes);
        }
        let dt = m.rt.now() - t0;
        csv.row([format!("nvlink_c2c_{dir}"), gbps(bytes, dt), paper.into()]);
    }
    csv
}

/// A machine with enough GPU memory for the 3-buffer STREAM kernel.
fn oversized_machine(bytes: u64) -> Machine {
    platform::gh200()
        .machine_tweaked(&MachineConfig::default(), &|p| {
            p.gpu_mem_bytes = p.gpu_mem_bytes.max(4 * bytes);
            p.cpu_mem_bytes = p.cpu_mem_bytes.max(8 * bytes);
        })
        .expect("growing both memories keeps parameters valid")
}

fn gbps(bytes: u64, dt: u64) -> String {
    // bytes/ns == GB/s.
    format!("{:.0}", bytes as f64 / dt as f64)
}

/// Checks the measured values stay close to the calibration targets.
pub fn validate(csv: &Csv) -> Result<(), String> {
    let text = csv.render();
    for line in text.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        let measured: f64 = cols[1].parse().map_err(|e| format!("{e}"))?;
        let paper: f64 = cols[2].parse().map_err(|e| format!("{e}"))?;
        let rel = (measured - paper).abs() / paper;
        if rel > 0.15 {
            return Err(format!("{}: measured {measured} vs paper {paper}", cols[0]));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidths_match_paper_within_15_percent() {
        let csv = run(true);
        assert_eq!(csv.len(), 4);
        validate(&csv).unwrap();
    }

    #[test]
    fn d2h_slower_than_h2d() {
        let csv = run(true);
        let text = csv.render();
        let get = |name: &str| -> f64 {
            text.lines()
                .find(|l| l.starts_with(name))
                .unwrap()
                .split(',')
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(get("nvlink_c2c_d2h") < get("nvlink_c2c_h2d"));
    }
}
