//! Reproduction scoreboard: every paper claim checked in one run.
//!
//! Each entry re-derives one of the paper's qualitative claims from a
//! fresh (fast-scale) experiment and reports pass/fail. This is the
//! one-command answer to "does this reproduction still hold?" — the same
//! claims are enforced as unit tests at full scale.

use gh_profiler::Csv;

/// One verified claim.
#[derive(Debug)]
pub struct Claim {
    /// Paper reference (figure/section).
    pub source: &'static str,
    /// The claim, in one sentence.
    pub claim: &'static str,
    /// Whether the fresh measurement supports it.
    pub holds: bool,
    /// The measured evidence, formatted.
    pub evidence: String,
}

/// Runs the full scoreboard (fast-scale experiments).
pub fn run() -> Vec<Claim> {
    let mut claims = Vec::new();

    // §2.1 bandwidths.
    {
        let csv = crate::bandwidth::run(true);
        let ok = crate::bandwidth::validate(&csv).is_ok();
        claims.push(Claim {
            source: "§2.1",
            claim: "STREAM and Comm|Scope bandwidths match the measured hardware",
            holds: ok,
            evidence: csv.render().lines().skip(1).collect::<Vec<_>>().join("; "),
        });
    }

    // Fig 3: system vs managed for CPU-init apps.
    {
        let csv = crate::fig03_overview::run(true);
        let mut ok = true;
        let mut ev = Vec::new();
        for app in ["needle", "pathfinder", "hotspot", "bfs"] {
            let s = crate::fig03_overview::speedup(&csv, app, "system");
            let m = crate::fig03_overview::speedup(&csv, app, "managed");
            ok &= s > m;
            ev.push(format!("{app}: sys {s:.2} vs man {m:.2}"));
        }
        claims.push(Claim {
            source: "Fig 3",
            claim: "system memory beats managed for CPU-initialized applications",
            holds: ok,
            evidence: ev.join("; "),
        });
    }

    // Fig 4: managed RSS collapse.
    {
        let csv = crate::fig04_hotspot_profile::run(true);
        let (peak, late, gpu) = crate::fig04_hotspot_profile::shape(&csv, "managed");
        let (s_peak, s_late, _) = crate::fig04_hotspot_profile::shape(&csv, "system");
        let ok = late < peak / 2.0 && gpu > peak / 2.0 && s_late > s_peak * 0.6;
        claims.push(Claim {
            source: "Fig 4",
            claim: "managed memory migrates at compute start (RSS collapses); system stays CPU-resident",
            holds: ok,
            evidence: format!(
                "managed rss {peak:.1}→{late:.1} MiB, gpu peak {gpu:.1}; system rss stays {s_late:.1}/{s_peak:.1}"
            ),
        });
    }

    // Fig 5: init ramps.
    {
        let csv = crate::fig05_qiskit_profile::run(true);
        let sys = crate::fig05_qiskit_profile::ramp_time(&csv, "system", 0.9);
        let man = crate::fig05_qiskit_profile::ramp_time(&csv, "managed", 0.9);
        claims.push(Claim {
            source: "Fig 5",
            claim: "GPU-side init ramps slowly for system memory, instantly for managed",
            holds: sys > man * 2.0,
            evidence: format!("ramp: system {sys:.3} ms vs managed {man:.3} ms"),
        });
    }

    // Fig 6: dealloc page-count effect.
    {
        let csv = crate::fig06_alloc_dealloc::run(true);
        let r = crate::fig06_alloc_dealloc::dealloc_ratio(&csv, "srad");
        claims.push(Claim {
            source: "Fig 6",
            claim: "de-allocation is far cheaper with 64 KiB pages (page-count bound)",
            holds: r > 4.0,
            evidence: format!("srad dealloc 4k/64k ratio {r:.1}x"),
        });
    }

    // Fig 8: system page-size speedup grows with size.
    {
        let csv = crate::fig08_qv_pagesize::run(true);
        let small = crate::fig08_qv_pagesize::speedup(&csv, 24, "system");
        let large = crate::fig08_qv_pagesize::speedup(&csv, 27, "system");
        claims.push(Claim {
            source: "Fig 8",
            claim: "the system version's 64 KiB speedup grows with the qubit count",
            holds: large > small && large > 1.5,
            evidence: format!("24q: {small:.2}x → 27q: {large:.2}x"),
        });
    }

    // Fig 9: init improvement at 64 KiB.
    {
        let csv = crate::fig09_qv_breakdown::run(true);
        let ratio = crate::fig09_qv_breakdown::init_ms(&csv, "system", "4k")
            / crate::fig09_qv_breakdown::init_ms(&csv, "system", "64k");
        claims.push(Claim {
            source: "Fig 9",
            claim: "system-memory GPU init improves ~5x from 4 KiB to 64 KiB pages",
            holds: (3.0..=30.0).contains(&ratio),
            evidence: format!("init ratio {ratio:.1}x"),
        });
    }

    // Fig 10: delayed migration pacing.
    {
        let csv = crate::fig10_srad_migration::run(true);
        let c2c = crate::fig10_srad_migration::series(&csv, "system", 4);
        let ok = c2c[0] > 0.0 && c2c[1] > 0.0 && *c2c.last().unwrap() < c2c[0] * 0.2;
        claims.push(Claim {
            source: "Fig 10",
            claim: "access-counter migration drains SRAD's remote reads over iterations 1-4",
            holds: ok,
            evidence: format!(
                "C2C per iteration (MiB): {}",
                c2c.iter()
                    .map(|v| format!("{v:.1}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    }

    // Fig 12: prefetch restores throughput.
    {
        let csv = crate::fig12_qv_throughput::run(true);
        let plain = crate::fig12_qv_throughput::col(&csv, "managed_4k", 1);
        let pref = crate::fig12_qv_throughput::col(&csv, "managed_4k_prefetch", 1);
        claims.push(Claim {
            source: "Fig 12",
            claim: "explicit prefetching converts C2C-throttled managed access into HBM-local",
            holds: pref > plain * 2.0,
            evidence: format!("L1-L2 rate: {plain:.0} → {pref:.0} GB/s"),
        });
    }

    // §9 future work: counter selectivity.
    {
        let csv = crate::future_work::run(true);
        let chase = crate::future_work::cell(&csv, "pointer_chase", "64k", "on", 4);
        let gups = crate::future_work::cell(&csv, "gups_sparse", "64k", "on", 4);
        claims.push(Claim {
            source: "§9",
            claim: "the counter engine migrates hot sets but ignores uniformly sparse traffic",
            // gh-audit: allow(no-float-eq) -- exact sentinel: zero bytes migrated
            holds: chase > 0.0 && gups == 0.0,
            evidence: format!("pointer_chase migrated {chase:.1} MiB, gups {gups:.1} MiB"),
        });
    }

    claims
}

/// Formats the scoreboard as a table.
pub fn render(claims: &[Claim]) -> Csv {
    let mut csv = Csv::new(["source", "holds", "claim", "evidence"]);
    for c in claims {
        csv.row([
            c.source.to_string(),
            if c.holds { "PASS" } else { "FAIL" }.to_string(),
            c.claim.to_string(),
            c.evidence.clone(),
        ]);
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_holds() {
        let claims = run();
        assert!(claims.len() >= 9);
        for c in &claims {
            assert!(c.holds, "{} — {}: {}", c.source, c.claim, c.evidence);
        }
    }
}
