//! Figure 10: SRAD per-iteration execution time (top) and memory read
//! traffic (bottom) through the computation phase — access-counter
//! migration (system) vs on-demand migration (managed). 64 KB pages.

use gh_apps::{srad, MemMode};
use gh_profiler::Csv;

use crate::util::machine;

/// Rows: (mode, iteration, time_ms, gpu_read_mib, c2c_read_mib).
pub fn run(fast: bool) -> Csv {
    // SRAD's delayed-migration pace depends on the image spanning several
    // 2 MiB counter regions, so even the fast path keeps the real input
    // (the run costs well under a second).
    let _ = fast;
    let p = srad::SradParams::default();
    let mut csv = Csv::new([
        "mode",
        "iteration",
        "time_ms",
        "gpu_read_mib",
        "c2c_read_mib",
    ]);
    for mode in [MemMode::System, MemMode::Managed] {
        // §6 experiments: automatic migration enabled, 64 KB pages.
        let r = srad::run(machine(false, true), mode, &p);
        // Each iteration = one srad1 + one srad2 kernel, in order.
        let times: Vec<_> = r
            .kernel_times
            .iter()
            .filter(|(n, _)| n.starts_with("srad"))
            .collect();
        let traffic: Vec<_> = r
            .kernel_history
            .iter()
            .filter(|(n, _)| n.starts_with("srad"))
            .collect();
        assert_eq!(times.len(), p.iterations * 2);
        for it in 0..p.iterations {
            let t = times[2 * it].1 + times[2 * it + 1].1;
            let tr1 = traffic[2 * it].1;
            let tr2 = traffic[2 * it + 1].1;
            let gpu_read = tr1.hbm_read + tr2.hbm_read;
            let c2c_read = tr1.c2c_read + tr2.c2c_read;
            csv.row([
                mode.label().to_string(),
                (it + 1).to_string(),
                format!("{:.3}", t as f64 / 1e6),
                format!("{:.2}", gpu_read as f64 / (1 << 20) as f64),
                format!("{:.2}", c2c_read as f64 / (1 << 20) as f64),
            ]);
        }
    }
    csv
}

/// Per-iteration series of one column for a mode.
pub fn series(csv: &Csv, mode: &str, col: usize) -> Vec<f64> {
    csv.render()
        .lines()
        .skip(1)
        .filter(|l| l.starts_with(&format!("{mode},")))
        .map(|l| l.split(',').nth(col).unwrap().parse().unwrap())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn managed_first_iteration_is_slowest() {
        // Paper: the managed version pays on-demand migration in
        // iteration 1; later iterations run from HBM.
        let csv = run(true);
        let t = series(&csv, "managed", 2);
        let later_max = t[2..].iter().cloned().fold(0.0f64, f64::max);
        assert!(
            t[0] > later_max * 2.0,
            "managed iter 1 ({}) must dominate later iterations ({later_max})",
            t[0]
        );
    }

    #[test]
    fn system_c2c_reads_decay_as_migration_progresses() {
        // Paper: C2C reads decrease over iterations 1-4 while GPU reads
        // grow; after the working set migrated, C2C reads are ~0.
        let csv = run(true);
        let c2c = series(&csv, "system", 4);
        let gpu = series(&csv, "system", 3);
        assert!(c2c[0] > 0.0, "iteration 1 must read remotely");
        let last = *c2c.last().unwrap();
        assert!(
            last < c2c[0] * 0.2,
            "C2C reads must decay: first {} last {last}",
            c2c[0]
        );
        assert!(
            gpu.last().unwrap() > &gpu[0],
            "GPU reads must grow as pages migrate"
        );
    }

    #[test]
    fn system_late_iterations_beat_managed_late_iterations() {
        // Paper: from iteration ~5 the system version stabilizes and
        // outperforms managed.
        let csv = run(true);
        let ts = series(&csv, "system", 2);
        let tm = series(&csv, "managed", 2);
        let sys_late = ts[ts.len() - 3..].iter().sum::<f64>();
        let man_late = tm[tm.len() - 3..].iter().sum::<f64>();
        assert!(
            sys_late <= man_late * 1.05,
            "late system iterations {sys_late} vs managed {man_late}\n{}",
            csv.render()
        );
    }

    #[test]
    fn migration_spread_over_multiple_iterations() {
        // The access-counter driver is budget-bound: the working set must
        // not migrate entirely within iteration 1 (delayed migration).
        let csv = run(true);
        let c2c = series(&csv, "system", 4);
        assert!(
            c2c[1] > 0.0,
            "iteration 2 must still read remotely (delayed migration)\n{}",
            csv.render()
        );
    }
}
