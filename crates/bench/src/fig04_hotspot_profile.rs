//! Figure 4: hotspot memory usage over time, system vs managed.

use gh_apps::{hotspot, MemMode};
use gh_profiler::Csv;

/// Produces the (mode, t_ms, rss_mib, gpu_used_mib) series for both
/// unified-memory versions.
pub fn run(fast: bool) -> Csv {
    let p = if fast {
        hotspot::HotspotParams {
            size: 256,
            iterations: 10,
            ..Default::default()
        }
    } else {
        hotspot::HotspotParams::default()
    };
    let mut csv = Csv::new(["mode", "t_ms", "rss_mib", "gpu_used_mib"]);
    for mode in [MemMode::System, MemMode::Managed] {
        // Fig 3/4 context: in-memory, automatic migration disabled.
        // Fine-grained sampling so short fast-mode runs still resolve.
        let cfg = gh_sim::MachineConfig {
            auto_migration: false,
            profiler_period: Some(if fast { 2_000 } else { 50_000 }),
            ..Default::default()
        };
        let m = gh_sim::platform::gh200()
            .machine_cfg(&cfg)
            .expect("default page size is always supported");
        let r = hotspot::run(m, mode, &p);
        for s in &r.samples {
            csv.row([
                mode.label().to_string(),
                format!("{:.3}", s.t as f64 / 1e6),
                format!("{:.2}", s.rss as f64 / (1 << 20) as f64),
                format!("{:.2}", s.gpu_used as f64 / (1 << 20) as f64),
            ]);
        }
    }
    csv
}

/// Summary statistics used by the shape assertions: (peak RSS,
/// late-compute RSS, peak GPU) per mode. "Late" is the sample at 80% of
/// the timeline — i.e. still inside the compute phase, before the
/// de-allocation teardown zeroes everything.
pub fn shape(csv: &Csv, mode: &str) -> (f64, f64, f64) {
    let rows: Vec<(f64, f64)> = csv
        .render()
        .lines()
        .skip(1)
        .filter_map(|l| {
            let c: Vec<&str> = l.split(',').collect();
            (c[0] == mode).then(|| (c[2].parse().unwrap(), c[3].parse().unwrap()))
        })
        .collect();
    let peak_rss = rows.iter().map(|r| r.0).fold(0.0f64, f64::max);
    let peak_gpu = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let late = rows[rows.len() * 4 / 5].0;
    (peak_rss, late, peak_gpu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn managed_rss_drops_when_compute_migrates_pages() {
        // Paper Fig 4 (right): once the compute phase begins, managed
        // memory migrates the grids to the GPU — RSS falls sharply, GPU
        // usage rises.
        let csv = run(true);
        let (peak, fin, gpu) = shape(&csv, "managed");
        assert!(peak > 0.0);
        assert!(
            fin < peak / 2.0,
            "managed RSS must collapse during compute: peak {peak}, final {fin}"
        );
        assert!(gpu > peak / 2.0, "GPU usage must absorb the grids");
    }

    #[test]
    fn system_rss_stays_flat_without_migration() {
        // Paper Fig 4 (left): system memory keeps data CPU-resident; GPU
        // usage stays near the baseline the whole run.
        let csv = run(true);
        let (peak, fin, gpu) = shape(&csv, "system");
        assert!(
            fin > peak * 0.6,
            "system RSS must persist: peak {peak}, final {fin}"
        );
        // Only the cudaMalloc scratch buffer sits in GPU memory.
        let scratch_mib = 256.0 * 256.0 * 4.0 / (1 << 20) as f64;
        assert!(gpu < scratch_mib + 8.0, "gpu peak {gpu}");
    }

    #[test]
    fn both_series_present_and_timestamped() {
        let csv = run(true);
        let text = csv.render();
        assert!(text.lines().any(|l| l.starts_with("system,")));
        assert!(text.lines().any(|l| l.starts_with("managed,")));
    }
}
