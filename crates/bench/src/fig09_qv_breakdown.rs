//! Figure 9: initialization/computation time breakdown of the 33-qubit
//! (paper scale) Quantum Volume run, system and managed versions, 4 KB
//! and 64 KB system pages.

use gh_apps::MemMode;
use gh_profiler::Csv;
use gh_qsim::{run_qv, QsimParams};

use crate::util::machine;

/// Rows: (mode, page, init_ms, compute_ms, total_ms).
pub fn run(fast: bool) -> Csv {
    let p = QsimParams {
        sim_qubits: if fast { 17 } else { 23 }, // paper 33q
        compute_amplitudes: false,
        ..Default::default()
    };
    let mut csv = Csv::new(["mode", "page", "init_ms", "compute_ms", "total_ms"]);
    for mode in [MemMode::System, MemMode::Managed] {
        for (page4k, label) in [(true, "4k"), (false, "64k")] {
            let r = run_qv(machine(page4k, false), mode, &p);
            let init = r.kernel_time_named("qv_init");
            let gates = r.kernel_time_named("qv_gate") + r.kernel_time_named("qv_norm");
            csv.row([
                mode.label().to_string(),
                label.to_string(),
                format!("{:.3}", init as f64 / 1e6),
                format!("{:.3}", gates as f64 / 1e6),
                format!("{:.3}", (init + gates) as f64 / 1e6),
            ]);
        }
    }
    csv
}

fn cell(csv: &Csv, mode: &str, page: &str, col: usize) -> f64 {
    csv.render()
        .lines()
        .find(|l| l.starts_with(&format!("{mode},{page},")))
        .and_then(|l| l.split(',').nth(col))
        .and_then(|s| s.parse().ok())
        .unwrap()
}

/// Init-phase duration (ms).
pub fn init_ms(csv: &Csv, mode: &str, page: &str) -> f64 {
    cell(csv, mode, page, 2)
}

/// Total duration (ms).
pub fn total_ms(csv: &Csv, mode: &str, page: &str) -> f64 {
    cell(csv, mode, page, 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_init_improves_about_5x_with_64k_pages() {
        // Paper Fig 9: the system version's init shrinks ~5× at 64 KB;
        // overall runtime improves ~2.9×.
        let csv = run(true);
        let ratio = init_ms(&csv, "system", "4k") / init_ms(&csv, "system", "64k");
        assert!(
            (3.0..=30.0).contains(&ratio),
            "system init 4k/64k ratio {ratio}\n{}",
            csv.render()
        );
        let total = total_ms(&csv, "system", "4k") / total_ms(&csv, "system", "64k");
        assert!(total > 1.5, "overall 4k/64k ratio {total}");
    }

    #[test]
    fn managed_total_is_mildly_page_size_sensitive() {
        // Paper: managed 64 KB total is ~10% lower than 4 KB.
        let csv = run(true);
        let ratio = total_ms(&csv, "managed", "4k") / total_ms(&csv, "managed", "64k");
        assert!(
            (0.9..=1.6).contains(&ratio),
            "managed 4k/64k ratio {ratio}\n{}",
            csv.render()
        );
    }

    #[test]
    fn system_compute_is_stable_across_page_sizes() {
        // Paper: "the computation time remains stable between page sizes".
        let csv = run(true);
        let c4 = cell(&csv, "system", "4k", 3);
        let c64 = cell(&csv, "system", "64k", 3);
        let rel = (c4 - c64).abs() / c64;
        assert!(rel < 0.5, "system compute varies too much: {c4} vs {c64}");
    }
}
