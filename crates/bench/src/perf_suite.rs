//! The tracked perf trajectory (`BENCH_*.json`): how fast the simulator
//! itself runs, per app × platform × mode, measured by `gh-perf`.
//!
//! ROADMAP item 2 wants regressions in *simulator* speed to be visible
//! across PRs the same way paper numbers are. This suite runs the
//! application matrix on every registered platform with the self-profiler
//! armed and writes a dated JSON snapshot at the repo root:
//!
//! * `BENCH_<date>.json` — per-row host wall-time, virtual time, the
//!   sim-speed ratio (virtual ns advanced per host ms), checksum, and the
//!   per-phase host breakdown; plus suite-level peak RSS and (when the
//!   driver exports `GH_BENCH_TEST_SECS`) the tier-1 test-suite time.
//! * `BENCH_<date>.folded` — merged folded-stack text, one flamegraph
//!   root per row, for `flamegraph.pl`-style tooling.
//!
//! `BENCH_baseline.json` is the committed reference; [`compare`] diffs a
//! fresh run against it, *warning* on >10% wall-time movement (shared
//! runners are noisy — CI uploads, humans judge) and *failing* on
//! checksum bit drift, because host-side profiling must never perturb
//! simulated results.

use gh_apps::{AppId, MemMode};
use gh_profiler::Csv;
use gh_sim::platform;
use gh_trace::json::{f64_value, quote_into, Value};

use std::fmt::Write as _;

/// Default regression tolerance for wall-time comparisons (fraction).
pub const TOLERANCE: f64 = 0.10;

/// One measured (app, platform, mode) cell.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Application name (`needle`, `hotspot`, ...).
    pub app: String,
    /// Platform registry name (`gh200`, `mi300a`).
    pub platform: String,
    /// Memory mode label (`system`, `managed`).
    pub mode: String,
    /// Host wall-clock for the run, in milliseconds.
    pub wall_ms: f64,
    /// Virtual time the run simulated, in milliseconds.
    pub sim_ms: f64,
    /// Sim-speed ratio: virtual ns advanced per host ms (0 when either
    /// clock did not tick — never expected in practice).
    pub sim_ns_per_host_ms: f64,
    /// The application's correctness checksum (bit-compared across runs).
    pub checksum: f64,
    /// Per-phase `(label, host_ns, sim_ns)` host-time breakdown.
    pub phases: Vec<(String, u64, u64)>,
    /// Folded-stack text for this row (paths rooted at phase labels).
    pub folded: String,
}

/// A full suite snapshot, ready to serialize.
#[derive(Debug, Clone)]
pub struct PerfSuite {
    /// Civil date (`YYYY-MM-DD`) the suite ran, from the host clock.
    pub date: String,
    /// Whether shrunk (`GH_FAST`) inputs were used.
    pub fast: bool,
    /// Process-wide peak RSS after the suite, in bytes.
    pub peak_rss_bytes: u64,
    /// Tier-1 test-suite wall time in seconds, when the invoking driver
    /// exported `GH_BENCH_TEST_SECS`; `None` otherwise.
    pub test_suite_secs: Option<f64>,
    /// All measured cells, in app × mode × platform order.
    pub rows: Vec<PerfRow>,
}

/// Runs the suite: every paper app × {system, managed} × every platform,
/// each run under its own session with the self-profiler armed. Serial
/// by default — the wall-time columns are the tracked signal, and
/// co-scheduled runs would perturb them — but `GH_JOBS=<n>` fans the
/// matrix over the `gh-jobs` executor for a quick (untracked) pass.
pub fn run(fast: bool) -> PerfSuite {
    let so = gh_cuda::SessionOptions {
        perf: true,
        ..Default::default()
    };
    let workers = crate::util::jobs_requested(1);
    let mut specs = Vec::new();
    for app in AppId::ALL {
        for mode in [MemMode::System, MemMode::Managed] {
            for p in platform::all() {
                specs.push(gh_jobs::JobSpec {
                    app,
                    platform: p.caps().name.to_string(),
                    mode,
                    page_size: None,
                    small: fast,
                    session: so.clone(),
                });
            }
        }
    }
    let cache = std::sync::Arc::new(gh_jobs::JobCache::new());
    let outcomes = gh_jobs::run_suite(&specs, workers, &cache);
    let mut rows = Vec::new();
    for (spec, out) in specs.iter().zip(outcomes) {
        let out = out.expect("suite specs name registered platforms");
        let perf = out
            .perf
            .expect("fresh cache + perf session: every job simulates and profiles");
        let root = format!(
            "{}-{}-{}",
            spec.app.name(),
            spec.platform,
            spec.mode.label()
        );
        let mut folded = String::new();
        for line in gh_perf::export::folded(&perf).lines() {
            let _ = writeln!(folded, "{root};{line}");
        }
        rows.push(PerfRow {
            app: spec.app.name().to_string(),
            platform: spec.platform.clone(),
            mode: spec.mode.label().to_string(),
            wall_ms: perf.host_total_ns as f64 / 1e6,
            sim_ms: perf.sim_total_ns as f64 / 1e6,
            sim_ns_per_host_ms: perf.sim_speed().unwrap_or(0.0),
            checksum: out.report.checksum,
            phases: perf
                .phases
                .iter()
                .map(|ph| (ph.label.clone(), ph.host_ns, ph.sim_ns))
                .collect(),
            folded,
        });
    }
    PerfSuite {
        date: gh_perf::host_date(),
        fast,
        peak_rss_bytes: gh_perf::peak_rss_bytes(),
        test_suite_secs: std::env::var("GH_BENCH_TEST_SECS")
            .ok()
            .and_then(|s| s.parse().ok()),
        rows,
    }
}

impl PerfSuite {
    /// Serializes the snapshot (`schema: "gh-bench-perf/1"`).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\"schema\":\"gh-bench-perf/1\",\"date\":");
        quote_into(&mut o, &self.date);
        let _ = write!(
            o,
            ",\"fast\":{},\"peak_rss_bytes\":{}",
            self.fast, self.peak_rss_bytes,
        );
        // Canonical optional: the key is *omitted* when unmeasured, never
        // `null`, so two snapshots of the same suite are byte-identical
        // regardless of which serializer wrote them. The parser side
        // treats a missing key and `null` alike.
        if let Some(t) = self.test_suite_secs {
            let _ = write!(o, ",\"test_suite_secs\":{}", f64_value(t));
        }
        o.push_str(",\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n  {\"app\":");
            quote_into(&mut o, &r.app);
            o.push_str(",\"platform\":");
            quote_into(&mut o, &r.platform);
            o.push_str(",\"mode\":");
            quote_into(&mut o, &r.mode);
            let _ = write!(
                o,
                ",\"wall_ms\":{},\"sim_ms\":{},\"sim_ns_per_host_ms\":{},\"checksum\":{},\
                 \"checksum_bits\":\"0x{:016x}\"",
                f64_value(r.wall_ms),
                f64_value(r.sim_ms),
                f64_value(r.sim_ns_per_host_ms),
                f64_value(r.checksum),
                r.checksum.to_bits(),
            );
            o.push_str(",\"phases\":[");
            for (j, (label, host_ns, sim_ns)) in r.phases.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                o.push_str("{\"label\":");
                quote_into(&mut o, label);
                let _ = write!(o, ",\"host_ns\":{host_ns},\"sim_ns\":{sim_ns}}}");
            }
            o.push_str("]}");
        }
        o.push_str("\n]}");
        o
    }

    /// The merged folded-stack text across all rows.
    pub fn folded(&self) -> String {
        self.rows.iter().map(|r| r.folded.as_str()).collect()
    }

    /// Summary table for stdout.
    pub fn csv(&self) -> Csv {
        let mut csv = Csv::new([
            "app",
            "platform",
            "mode",
            "wall_ms",
            "sim_ms",
            "sim_ns_per_host_ms",
        ]);
        for r in &self.rows {
            csv.row(vec![
                r.app.clone(),
                r.platform.clone(),
                r.mode.clone(),
                format!("{:.3}", r.wall_ms),
                format!("{:.3}", r.sim_ms),
                format!("{:.0}", r.sim_ns_per_host_ms),
            ]);
        }
        csv
    }

    /// Writes `BENCH_<date>.json` + `BENCH_<date>.folded` at the repo
    /// root (`GH_BENCH_OUT=<dir>` overrides the directory) and returns
    /// the two paths.
    pub fn write(&self) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
        let dir = std::env::var("GH_BENCH_OUT")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| repo_root());
        let json_path = dir.join(format!("BENCH_{}.json", self.date));
        let folded_path = dir.join(format!("BENCH_{}.folded", self.date));
        std::fs::write(&json_path, self.to_json())?;
        std::fs::write(&folded_path, self.folded())?;
        Ok((json_path, folded_path))
    }
}

/// The workspace root, resolved from this crate's manifest directory.
pub fn repo_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Outcome of a baseline comparison: advisory warnings (wall-time noise)
/// and hard errors (simulated-output drift).
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// >tolerance wall-time movements and coverage gaps — advisory.
    pub warnings: Vec<String>,
    /// Checksum bit drift — profiling must never change simulated
    /// results, so these fail the suite.
    pub errors: Vec<String>,
}

impl Comparison {
    /// True when neither warnings nor errors were found.
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty() && self.errors.is_empty()
    }
}

fn row_key(app: &str, platform: &str, mode: &str) -> String {
    format!("{app}/{platform}/{mode}")
}

/// Parses a `"0x%016x"` checksum-bits field back to the raw pattern.
fn parse_checksum_bits(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

/// Diffs a fresh suite against a serialized baseline (`BENCH_*.json`
/// contents). Wall-time movement beyond `tolerance` (fractional, e.g.
/// 0.10) in *either* direction is a warning; checksum bit drift is an
/// error. Returns `Err` only when the baseline itself cannot be parsed.
pub fn compare(
    baseline_json: &str,
    current: &PerfSuite,
    tolerance: f64,
) -> Result<Comparison, String> {
    let base = Value::parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    if base.get("schema").and_then(Value::as_str) != Some("gh-bench-perf/1") {
        return Err("baseline: not a gh-bench-perf/1 document".to_string());
    }
    let mut cmp = Comparison::default();
    let empty = Vec::new();
    let base_rows = base.get("rows").and_then(Value::as_arr).unwrap_or(&empty);
    let find = |key: &str| {
        base_rows.iter().find(|r| {
            let (Some(a), Some(p), Some(m)) = (
                r.get("app").and_then(Value::as_str),
                r.get("platform").and_then(Value::as_str),
                r.get("mode").and_then(Value::as_str),
            ) else {
                return false;
            };
            row_key(a, p, m) == key
        })
    };
    for r in &current.rows {
        let key = row_key(&r.app, &r.platform, &r.mode);
        let Some(b) = find(&key) else {
            cmp.warnings.push(format!("{key}: no baseline row"));
            continue;
        };
        // Bit-level checksum comparison. `checksum_bits` (the exact
        // `f64::to_bits` pattern, hex) is authoritative: the numeric
        // `checksum` field roundtrips through shortest-float formatting,
        // which serializes NaN as `null` — a baseline that drifted to NaN
        // would silently *pass* a numeric-only diff. An unreadable
        // baseline checksum is therefore an error, never a skip.
        let base_bits = b
            .get("checksum_bits")
            .and_then(Value::as_str)
            .and_then(parse_checksum_bits)
            .or_else(|| b.get("checksum").and_then(Value::as_f64).map(f64::to_bits));
        match base_bits {
            None => cmp.errors.push(format!(
                "{key}: baseline checksum is unreadable (no parseable \
                 checksum_bits and checksum is not a finite number); \
                 bitwise stability cannot be verified"
            )),
            Some(bb) if bb != r.checksum.to_bits() => cmp.errors.push(format!(
                "{key}: checksum drifted from baseline \
                 (0x{bb:016x} -> 0x{:016x}, {}); \
                 simulated output must be bitwise stable",
                r.checksum.to_bits(),
                r.checksum
            )),
            Some(_) => {}
        }
        let Some(base_wall) = b.get("wall_ms").and_then(Value::as_f64) else {
            continue;
        };
        if base_wall > 0.0 {
            let delta = (r.wall_ms - base_wall) / base_wall;
            if delta > tolerance {
                cmp.warnings.push(format!(
                    "{key}: wall time {:.3} ms is {:+.1}% vs baseline {:.3} ms",
                    r.wall_ms,
                    delta * 100.0,
                    base_wall
                ));
            } else if delta < -tolerance {
                cmp.warnings.push(format!(
                    "{key}: wall time {:.3} ms improved {:+.1}% vs baseline {:.3} ms \
                     (consider refreshing BENCH_baseline.json)",
                    r.wall_ms,
                    delta * 100.0,
                    base_wall
                ));
            }
        }
    }
    Ok(cmp)
}

/// Geometric-mean ratio of current to baseline wall time over the rows
/// present in both suites (`current / baseline`, so < 1.0 means the
/// simulator got faster). `Ok(None)` when no row overlaps or no baseline
/// row has a positive wall time.
pub fn geomean_wall_ratio(baseline_json: &str, current: &PerfSuite) -> Result<Option<f64>, String> {
    let base = Value::parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    let empty = Vec::new();
    let base_rows = base.get("rows").and_then(Value::as_arr).unwrap_or(&empty);
    let mut ln_sum = 0.0_f64;
    let mut n = 0u32;
    for r in &current.rows {
        let key = row_key(&r.app, &r.platform, &r.mode);
        let base_wall = base_rows.iter().find_map(|b| {
            let (Some(a), Some(p), Some(m)) = (
                b.get("app").and_then(Value::as_str),
                b.get("platform").and_then(Value::as_str),
                b.get("mode").and_then(Value::as_str),
            ) else {
                return None;
            };
            (row_key(a, p, m) == key).then(|| b.get("wall_ms").and_then(Value::as_f64))?
        });
        if let Some(bw) = base_wall {
            if bw > 0.0 && r.wall_ms > 0.0 {
                ln_sum += (r.wall_ms / bw).ln();
                n += 1;
            }
        }
    }
    Ok((n > 0).then(|| (ln_sum / f64::from(n)).exp()))
}

/// Convenience: compare `current` against the committed
/// `BENCH_baseline.json`, if present.
pub fn compare_to_baseline(current: &PerfSuite) -> Result<Option<Comparison>, String> {
    let path = repo_root().join("BENCH_baseline.json");
    match std::fs::read_to_string(&path) {
        Ok(s) => compare(&s, current, TOLERANCE).map(Some),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> PerfSuite {
        PerfSuite {
            date: "2026-01-01".into(),
            fast: true,
            peak_rss_bytes: 1 << 20,
            test_suite_secs: Some(12.5),
            rows: vec![PerfRow {
                app: "hotspot".into(),
                platform: "gh200".into(),
                mode: "system".into(),
                wall_ms: 10.0,
                sim_ms: 40.0,
                sim_ns_per_host_ms: 4_000_000.0,
                checksum: 1.25,
                phases: vec![("compute".into(), 9_000_000, 36_000_000)],
                folded: "hotspot-gh200-system;compute 9000000\n".into(),
            }],
        }
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let s = tiny_suite();
        let v = Value::parse(&s.to_json()).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("gh-bench-perf/1")
        );
        assert_eq!(v.get("test_suite_secs").and_then(Value::as_f64), Some(12.5));
        let rows = v.get("rows").and_then(Value::as_arr).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("app").and_then(Value::as_str), Some("hotspot"));
        assert_eq!(
            rows[0].get("checksum_bits").and_then(Value::as_str),
            Some(format!("0x{:016x}", 1.25_f64.to_bits()).as_str())
        );
        assert_eq!(
            rows[0].get("sim_ns_per_host_ms").and_then(Value::as_f64),
            Some(4_000_000.0)
        );
        let phases = rows[0].get("phases").and_then(Value::as_arr).unwrap();
        assert_eq!(phases[0].get("host_ns").and_then(Value::as_f64), Some(9e6));
    }

    #[test]
    fn unmeasured_test_suite_secs_is_omitted_not_null() {
        let mut s = tiny_suite();
        s.test_suite_secs = None;
        let json = s.to_json();
        assert!(
            !json.contains("test_suite_secs"),
            "the canonical form omits the key entirely: {json}"
        );
        let v = Value::parse(&json).expect("valid JSON");
        // Missing key reads the same as the old `null` encoding did.
        assert_eq!(v.get("test_suite_secs").and_then(Value::as_f64), None);
    }

    #[test]
    fn checksum_diff_sees_through_lossy_float_roundtrip() {
        // A NaN checksum serializes as `null` under shortest-float
        // formatting; the numeric-only diff used to silently skip such
        // rows. The bit-pattern field must keep them comparable.
        let mut base = tiny_suite();
        base.rows[0].checksum = f64::NAN;
        let mut cur = tiny_suite();
        cur.rows[0].checksum = f64::NAN;
        let cmp = compare(&base.to_json(), &cur, TOLERANCE).unwrap();
        assert!(
            cmp.is_clean(),
            "identical NaN bits must compare clean: {cmp:?}"
        );

        // Same NaN-vs-finite drift must now *fail*, not skip.
        cur.rows[0].checksum = 1.25;
        let cmp = compare(&base.to_json(), &cur, TOLERANCE).unwrap();
        assert_eq!(cmp.errors.len(), 1, "{cmp:?}");
        assert!(cmp.errors[0].contains("checksum"), "{cmp:?}");

        // A legacy baseline with neither a parseable checksum_bits nor a
        // finite checksum is an error — never a silent pass.
        let legacy = base.to_json().replace(
            &format!("\"checksum_bits\":\"0x{:016x}\",", f64::NAN.to_bits()),
            "",
        );
        assert!(legacy.contains("\"checksum\":null"), "{legacy}");
        let cmp = compare(&legacy, &cur, TOLERANCE).unwrap();
        assert_eq!(cmp.errors.len(), 1, "{cmp:?}");
        assert!(cmp.errors[0].contains("unreadable"), "{cmp:?}");
    }

    #[test]
    fn geomean_wall_ratio_averages_overlapping_rows() {
        let base = tiny_suite();
        let mut cur = tiny_suite();
        cur.rows[0].wall_ms = 2.5; // 4x faster than the 10.0 baseline
        let g = geomean_wall_ratio(&base.to_json(), &cur).unwrap().unwrap();
        assert!((g - 0.25).abs() < 1e-12, "{g}");
        cur.rows[0].app = "srad".into(); // no overlap left
        assert_eq!(geomean_wall_ratio(&base.to_json(), &cur).unwrap(), None);
        assert!(geomean_wall_ratio("not json", &cur).is_err());
    }

    #[test]
    fn compare_is_clean_against_itself() {
        let s = tiny_suite();
        let cmp = compare(&s.to_json(), &s, TOLERANCE).unwrap();
        assert!(cmp.is_clean(), "{cmp:?}");
    }

    #[test]
    fn compare_warns_on_slowdown_and_errors_on_checksum_drift() {
        let base = tiny_suite();
        let mut cur = tiny_suite();
        cur.rows[0].wall_ms = 12.0; // +20% > 10% tolerance
        cur.rows[0].checksum = 1.26;
        let cmp = compare(&base.to_json(), &cur, TOLERANCE).unwrap();
        assert_eq!(cmp.warnings.len(), 1, "{cmp:?}");
        assert!(cmp.warnings[0].contains("+20.0%"), "{cmp:?}");
        assert_eq!(cmp.errors.len(), 1, "{cmp:?}");
        assert!(cmp.errors[0].contains("checksum"), "{cmp:?}");
    }

    #[test]
    fn compare_tolerates_noise_within_band() {
        let base = tiny_suite();
        let mut cur = tiny_suite();
        cur.rows[0].wall_ms = 10.9; // +9% < 10%
        let cmp = compare(&base.to_json(), &cur, TOLERANCE).unwrap();
        assert!(cmp.is_clean(), "{cmp:?}");
    }

    #[test]
    fn compare_flags_missing_rows_and_bad_baseline() {
        let base = tiny_suite();
        let mut cur = tiny_suite();
        cur.rows[0].app = "srad".into();
        let cmp = compare(&base.to_json(), &cur, TOLERANCE).unwrap();
        assert_eq!(cmp.warnings.len(), 1);
        assert!(cmp.warnings[0].contains("no baseline row"));
        assert!(compare("not json", &cur, TOLERANCE).is_err());
        assert!(compare("{\"schema\":\"other\"}", &cur, TOLERANCE).is_err());
    }

    #[test]
    fn fast_suite_measures_every_cell() {
        let s = run(true);
        let n_platforms = platform::all().len();
        assert_eq!(s.rows.len(), AppId::ALL.len() * 2 * n_platforms);
        for r in &s.rows {
            assert!(r.wall_ms > 0.0, "{}: host clock must tick", r.app);
            assert!(r.sim_ms > 0.0, "{}: virtual clock must tick", r.app);
            assert!(
                r.sim_ns_per_host_ms > 0.0,
                "{}/{}/{}: sim-speed ratio must be positive",
                r.app,
                r.platform,
                r.mode
            );
            assert!(!r.phases.is_empty(), "{}: phases recorded", r.app);
            assert!(
                r.phases.iter().any(|(_, host_ns, _)| *host_ns > 0),
                "{}: nonzero host-time phase spans",
                r.app
            );
            assert!(r.folded.contains(&r.app), "{}: folded stacks", r.app);
        }
        // Same app+mode must checksum identically across platforms.
        for r in &s.rows {
            let twin = s
                .rows
                .iter()
                .find(|t| t.app == r.app && t.mode == r.mode && t.platform != r.platform);
            if let Some(t) = twin {
                assert_eq!(
                    r.checksum.to_bits(),
                    t.checksum.to_bits(),
                    "{}/{}: checksum must be platform-independent",
                    r.app,
                    r.mode
                );
            }
        }
    }
}
