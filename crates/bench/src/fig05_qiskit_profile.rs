//! Figure 5: Qiskit Quantum Volume memory usage over time,
//! system vs managed (GPU-side initialization).

use gh_apps::MemMode;
use gh_profiler::Csv;
use gh_qsim::{run_qv, QsimParams};

/// Produces the (mode, t_ms, rss_mib, gpu_used_mib) series. Default is
/// the paper's 30-qubit run (20 simulated qubits, 8 MiB statevector).
pub fn run(fast: bool) -> Csv {
    let p = QsimParams {
        sim_qubits: if fast { 18 } else { 20 },
        compute_amplitudes: false,
        ..Default::default()
    };
    let mut csv = Csv::new(["mode", "t_ms", "rss_mib", "gpu_used_mib"]);
    for mode in [MemMode::System, MemMode::Managed] {
        // Fine-grained sampling (the scaled analogue of the paper's
        // 100 ms wall-clock period) so the init ramp resolves.
        let cfg = gh_sim::MachineConfig {
            auto_migration: false,
            profiler_period: Some(if fast { 2_000 } else { 20_000 }),
            ..Default::default()
        };
        let m = gh_sim::platform::gh200()
            .machine_cfg(&cfg)
            .expect("default page size is always supported");
        let r = run_qv(m, mode, &p);
        for s in &r.samples {
            csv.row([
                mode.label().to_string(),
                format!("{:.3}", s.t as f64 / 1e6),
                format!("{:.2}", s.rss as f64 / (1 << 20) as f64),
                format!("{:.2}", s.gpu_used as f64 / (1 << 20) as f64),
            ]);
        }
    }
    csv
}

/// Ramp duration (ms): from the first sample where GPU usage moved above
/// the driver baseline to the first sample at `frac` of the peak. This
/// isolates the initialization ramp from the 250 ms context-init offset
/// shared by both versions.
pub fn ramp_time(csv: &Csv, mode: &str, frac: f64) -> f64 {
    let rows: Vec<(f64, f64)> = csv
        .render()
        .lines()
        .skip(1)
        .filter_map(|l| {
            let c: Vec<&str> = l.split(',').collect();
            (c[0] == mode).then(|| (c[1].parse().unwrap(), c[3].parse().unwrap()))
        })
        .collect();
    let base = rows.first().map(|r| r.1).unwrap_or(0.0);
    let peak = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let start = rows
        .iter()
        .find(|r| r.1 > base + (peak - base) * 0.02)
        .map(|r| r.0)
        .unwrap_or(0.0);
    let hit = rows
        .iter()
        .find(|r| r.1 >= base + (peak - base) * frac)
        .map(|r| r.0)
        .unwrap_or(f64::INFINITY);
    (hit - start).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_gpu_usage_ramps_slower_than_managed() {
        // Paper Fig 5: GPU memory ramps slowly in the system version
        // (ATS fault per page, serviced by the CPU) but jumps to peak
        // almost immediately in the managed version (block population).
        let csv = run(true);
        let sys = ramp_time(&csv, "system", 0.9);
        let man = ramp_time(&csv, "managed", 0.9);
        assert!(
            sys > man * 2.0,
            "system ramp {sys} ms must be much slower than managed {man} ms"
        );
    }

    #[test]
    fn rss_stays_low_for_gpu_initialized_workload() {
        // No CPU-side init: RSS should stay near zero in both versions.
        let csv = run(true);
        for line in csv.render().lines().skip(1) {
            let c: Vec<&str> = line.split(',').collect();
            let rss: f64 = c[2].parse().unwrap();
            assert!(rss < 2.0, "RSS should stay near zero, got {rss} MiB");
        }
    }
}
