//! Figure 11: relative speedup of system memory over managed memory at
//! increasing GPU-memory oversubscription (simulated via a cudaMalloc
//! balloon, §3.2). 4 KB system pages, as in the paper.

use gh_apps::{AppId, MemMode};
use gh_profiler::Csv;
use gh_qsim::{run_qv, QsimParams};

use crate::util::{machine, peak_gpu_usage};

/// Oversubscription ratios swept.
pub const RATIOS: [f64; 4] = [1.0, 1.25, 1.5, 2.0];

/// Rows: (app, ratio, system_ms, managed_ms, speedup).
///
/// Even the fast path keeps full-size inputs: the balloon's 2 MiB
/// `cudaMalloc` granularity only produces meaningful pressure when the
/// working set is tens of MiB. `fast` just trims the ratio sweep.
pub fn run(fast: bool) -> Csv {
    let mut csv = Csv::new(["app", "ratio", "system_ms", "managed_ms", "speedup"]);
    let ratios: &[f64] = if fast { &[1.0, 1.5] } else { &RATIOS };

    for app in AppId::ALL {
        let peak = peak_gpu_usage(app, false);
        for &ratio in ratios {
            let mut times = [0u64; 2];
            for (i, mode) in [MemMode::System, MemMode::Managed].into_iter().enumerate() {
                let mut m = machine(true, true);
                m.oversubscribe(peak, ratio);
                let r = app.run(m, mode);
                times[i] = r.reported_total();
            }
            csv.row([
                app.name().to_string(),
                format!("{ratio}"),
                format!("{:.3}", times[0] as f64 / 1e6),
                format!("{:.3}", times[1] as f64 / 1e6),
                format!("{:.3}", times[1] as f64 / times[0] as f64),
            ]);
        }
    }

    // Qiskit: simulated oversubscription on the paper-30q (sim-20q) run.
    let qp = QsimParams {
        sim_qubits: 20,
        compute_amplitudes: false,
        ..Default::default()
    };
    let sv = gh_qsim::statevector_bytes(qp.sim_qubits);
    for &ratio in ratios {
        let mut times = [0u64; 2];
        for (i, mode) in [MemMode::System, MemMode::Managed].into_iter().enumerate() {
            let mut m = machine(true, true);
            m.oversubscribe(sv, ratio);
            times[i] = run_qv(m, mode, &qp).reported_total();
        }
        csv.row([
            "qiskit-qv".to_string(),
            format!("{ratio}"),
            format!("{:.3}", times[0] as f64 / 1e6),
            format!("{:.3}", times[1] as f64 / 1e6),
            format!("{:.3}", times[1] as f64 / times[0] as f64),
        ]);
    }
    csv
}

/// Speedup (managed_time / system_time) for one (app, ratio).
pub fn speedup(csv: &Csv, app: &str, ratio: f64) -> f64 {
    csv.render()
        .lines()
        .find(|l| l.starts_with(&format!("{app},{ratio},")))
        .and_then(|l| l.split(',').nth(4))
        .and_then(|s| s.parse().ok())
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_oversubscription() {
        // Paper Fig 11: the system version becomes increasingly faster
        // relative to managed as oversubscription grows (eviction +
        // re-migration churn hits managed; system reads remotely).
        let csv = run(true);
        let mut grew = 0;
        for app in AppId::ALL {
            let base = speedup(&csv, app.name(), 1.0);
            let over = speedup(&csv, app.name(), 1.5);
            if over > base {
                grew += 1;
            }
        }
        assert!(
            grew >= 3,
            "most apps must favour system memory more under oversubscription\n{}",
            csv.render()
        );
    }

    #[test]
    fn all_apps_and_ratios_present() {
        let csv = run(true);
        assert_eq!(csv.len(), (AppId::ALL.len() + 1) * 2);
    }
}
