//! Ablation studies beyond the paper's figures: design-choice sweeps the
//! paper motivates (§2.2.1 threshold tuning, §5.1.2 host-register
//! strategy, driver knobs).

use gh_apps::{srad, MemMode};
use gh_profiler::Csv;
use gh_sim::{platform, Machine, MachineConfig, KIB};

/// Sweep of the access-counter notification threshold (paper default
/// 256; §5.2 suggests tuning it to delay migrations). SRAD, system mode.
pub fn threshold_sweep(fast: bool) -> Csv {
    let p = srad_params(fast);
    let mut csv = Csv::new(["threshold", "compute_ms", "migrated_mib"]);
    // A 2 MiB region collects ~16k 128 B line accesses per full sweep,
    // so thresholds must span well past that to delay or suppress
    // migration.
    for threshold in [256u32, 16_384, 65_536, 262_144, 2_000_000] {
        let m = platform::gh200()
            .machine_tweaked(&MachineConfig::default(), &|c| {
                c.counter_threshold = threshold
            })
            .expect("threshold tweak keeps parameters valid");
        let r = srad::run(m, MemMode::System, &p);
        csv.row([
            threshold.to_string(),
            format!("{:.3}", r.phases.compute as f64 / 1e6),
            format!(
                "{:.2}",
                r.traffic.bytes_migrated_in as f64 / (1 << 20) as f64
            ),
        ]);
    }
    csv
}

/// Driver migration budget (notifications serviced per kernel): how fast
/// the working set migrates in Fig 10's setting.
pub fn budget_sweep(fast: bool) -> Csv {
    let p = srad_params(fast);
    let mut csv = Csv::new(["budget", "compute_ms", "iter1_c2c_mib", "iter4_c2c_mib"]);
    for budget in [1usize, 2, 4, 8, 64] {
        let m = platform::gh200()
            .machine_tweaked(&MachineConfig::default(), &|c| {
                c.counter_budget_per_kernel = budget
            })
            .expect("budget tweak keeps parameters valid");
        let r = srad::run(m, MemMode::System, &p);
        let srads: Vec<_> = r
            .kernel_history
            .iter()
            .filter(|(n, _)| n.starts_with("srad"))
            .collect();
        let iter_c2c = |it: usize| -> f64 {
            (srads[2 * it].1.c2c_read + srads[2 * it + 1].1.c2c_read) as f64 / (1 << 20) as f64
        };
        csv.row([
            budget.to_string(),
            format!("{:.3}", r.phases.compute as f64 / 1e6),
            format!("{:.2}", iter_c2c(0)),
            format!("{:.2}", iter_c2c(3.min(p.iterations - 1))),
        ]);
    }
    csv
}

/// UVM fault-batch cost sensitivity (managed memory): the literature's
/// 20–50 µs range and beyond.
pub fn fault_batch_sweep(fast: bool) -> Csv {
    let p = srad_params(fast);
    let mut csv = Csv::new(["uvm_fault_batch_us", "compute_ms"]);
    for us in [5u64, 15, 28, 45, 90] {
        let m = platform::gh200()
            .machine_tweaked(&MachineConfig::default(), &|c| {
                c.uvm_fault_batch = us * 1_000
            })
            .expect("fault-batch tweak keeps parameters valid");
        let r = srad::run(m, MemMode::Managed, &p);
        csv.row([
            us.to_string(),
            format!("{:.3}", r.phases.compute as f64 / 1e6),
        ]);
    }
    csv
}

/// The §5.1.2 pre-population strategy: `cudaHostRegister` the buffers
/// the GPU would otherwise first-touch through expensive ATS faults.
/// SRAD-shaped workload: a CPU-initialized image plus five
/// GPU-first-written derivative arrays, iterated twice.
pub fn host_register(fast: bool) -> Csv {
    let p = srad_params(fast);
    let bytes = (p.size * p.size * 4) as u64;
    let mut csv = Csv::new(["strategy", "page", "total_ms", "register_ms"]);
    for (page4k, label) in [(true, "4k"), (false, "64k")] {
        for register in [false, true] {
            let mut m = machine_for(page4k);
            m.rt.cuda_init();
            let j = m.rt.malloc_system(gh_units::Bytes::new(bytes), "J");
            let derivs: Vec<_> = (0..5)
                .map(|i| {
                    m.rt.malloc_system(gh_units::Bytes::new(bytes), &format!("d{i}"))
                })
                .collect();
            m.rt.cpu_write(&j, 0, bytes);
            let mut reg_cost = 0;
            if register {
                for d in &derivs {
                    reg_cost += m.rt.cuda_host_register(d);
                }
            }
            let t0 = m.now();
            for _ in 0..p.iterations.min(4) {
                let mut k = m.rt.launch("srad_like");
                k.read(&j, 0, bytes);
                for d in &derivs {
                    k.write(d, 0, bytes);
                }
                k.finish();
                let mut k = m.rt.launch("srad_like2");
                for d in &derivs {
                    k.read(d, 0, bytes);
                }
                k.write(&j, 0, bytes);
                k.finish();
            }
            let total = m.now() - t0 + reg_cost;
            csv.row([
                if register { "host_register" } else { "plain" }.to_string(),
                label.to_string(),
                format!("{:.3}", total as f64 / 1e6),
                format!("{:.3}", reg_cost as f64 / 1e6),
            ]);
        }
    }
    csv
}

/// NUMA placement study (beyond the paper; enabled by the Grace tuning
/// guide's `numactl` advice): CPU-initialized data bound to the GPU node
/// means initialization writes cross NVLink-C2C once, but every compute
/// access is HBM-local — compare with first-touch placement (all compute
/// remote when migration is off).
pub fn numa_placement(fast: bool) -> Csv {
    use gh_apps::hotspot::HotspotParams;
    use gh_sim::Node;
    let p = if fast {
        HotspotParams {
            size: 512,
            iterations: 6,
            ..Default::default()
        }
    } else {
        HotspotParams::default()
    };
    let bytes = (p.size * p.size * 4) as u64;
    let mut csv = Csv::new(["placement", "cpu_init_ms", "compute_ms"]);
    for (name, policy) in [
        ("first_touch", gh_os::NumaPolicy::FirstTouch),
        ("bind_gpu", gh_os::NumaPolicy::Bind(Node::Gpu)),
        ("interleave", gh_os::NumaPolicy::Interleave),
    ] {
        // Hand-rolled hotspot-like loop so the placement policy can be
        // applied (the app API defaults to first touch).
        let mut m = platform::gh200()
            .machine_cfg(&MachineConfig::without_migration())
            .expect("default GH200 configuration is valid");
        m.rt.cuda_init();
        let temp =
            m.rt.malloc_system_with_policy(gh_units::Bytes::new(bytes), policy, "temp");
        let power =
            m.rt.malloc_system_with_policy(gh_units::Bytes::new(bytes), policy, "power");
        let scratch =
            m.rt.cuda_malloc(gh_units::Bytes::new(bytes), "scratch")
                .unwrap();
        m.phase(gh_profiler::Phase::CpuInit);
        m.rt.cpu_write(&temp, 0, bytes);
        m.rt.cpu_write(&power, 0, bytes);
        m.phase(gh_profiler::Phase::Compute);
        for it in 0..p.iterations {
            let mut k = m.rt.launch("hotspot");
            if it % 2 == 0 {
                k.read(&temp, 0, bytes);
                k.write(&scratch, 0, bytes);
            } else {
                k.read(&scratch, 0, bytes);
                k.write(&temp, 0, bytes);
            }
            k.read(&power, 0, bytes);
            k.compute((p.size * p.size * 12) as u64);
            k.finish();
        }
        m.phase(gh_profiler::Phase::Dealloc);
        m.rt.free(scratch);
        m.rt.free(temp);
        m.rt.free(power);
        let r = m.finish();
        csv.row([
            name.to_string(),
            format!("{:.3}", r.phases.cpu_init as f64 / 1e6),
            format!("{:.3}", r.phases.compute as f64 / 1e6),
        ]);
    }
    csv
}

/// Gate-fusion ablation (Aer's bandwidth optimization): fused Quantum
/// Volume circuits issue fewer statevector sweeps; the win multiplies
/// whatever the memory path delivers.
pub fn fusion_sweep(fast: bool) -> Csv {
    use gh_qsim::{run_qv, QsimParams};
    let q = if fast { 16 } else { 21 };
    let mut csv = Csv::new(["mode", "fused", "gates", "compute_ms"]);
    for mode in [MemMode::Explicit, MemMode::System, MemMode::Managed] {
        for fuse in [false, true] {
            let p = QsimParams {
                sim_qubits: q,
                compute_amplitudes: false,
                fuse,
                ..Default::default()
            };
            let m = platform::gh200().machine();
            let r = run_qv(m, mode, &p);
            let gates = r
                .kernel_times
                .iter()
                .filter(|(n, _)| n.starts_with("qv_gate"))
                .count();
            csv.row([
                mode.label().to_string(),
                fuse.to_string(),
                gates.to_string(),
                format!("{:.3}", r.phases.compute as f64 / 1e6),
            ]);
        }
    }
    csv
}

fn srad_params(fast: bool) -> srad::SradParams {
    if fast {
        srad::SradParams {
            size: 256,
            iterations: 6,
            ..Default::default()
        }
    } else {
        srad::SradParams::default()
    }
}

fn machine_for(page4k: bool) -> Machine {
    let page = if page4k { 4 * KIB } else { 64 * KIB };
    platform::gh200()
        .machine_cfg(&MachineConfig::with_page_size(page))
        .expect("GH200 supports both paper page sizes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_threshold_migrates_less() {
        let csv = threshold_sweep(true);
        let rows: Vec<f64> = csv
            .render()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().parse().unwrap())
            .collect();
        assert!(
            rows.first().unwrap() >= rows.last().unwrap(),
            "migrated bytes must not grow with the threshold\n{}",
            csv.render()
        );
    }

    #[test]
    fn bigger_budget_drains_remote_reads_faster() {
        let csv = budget_sweep(true);
        let iter4: Vec<f64> = csv
            .render()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(3).unwrap().parse().unwrap())
            .collect();
        assert!(
            iter4.first().unwrap() >= iter4.last().unwrap(),
            "larger budgets must leave fewer remote reads by iteration 4\n{}",
            csv.render()
        );
    }

    #[test]
    fn fault_batch_cost_slows_managed_compute() {
        let csv = fault_batch_sweep(true);
        let times: Vec<f64> = csv
            .render()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1] * 1.001));
    }

    #[test]
    fn host_register_table_has_four_rows() {
        let csv = host_register(true);
        assert_eq!(csv.len(), 4);
    }

    #[test]
    fn fusion_never_slows_any_mode() {
        let csv = fusion_sweep(true);
        for mode in ["explicit", "system", "managed"] {
            let get = |fused: &str| -> f64 {
                csv.render()
                    .lines()
                    .find(|l| l.starts_with(&format!("{mode},{fused},")))
                    .and_then(|l| l.split(',').nth(3))
                    .and_then(|s| s.parse().ok())
                    .unwrap()
            };
            assert!(
                get("true") <= get("false") * 1.01,
                "{mode}: fusion must not slow execution\n{}",
                csv.render()
            );
        }
    }

    #[test]
    fn gpu_bound_placement_trades_init_for_compute() {
        let csv = numa_placement(true);
        let get = |name: &str, col: usize| -> f64 {
            csv.render()
                .lines()
                .find(|l| l.starts_with(name))
                .and_then(|l| l.split(',').nth(col))
                .and_then(|s| s.parse().ok())
                .unwrap()
        };
        // Binding to the GPU makes CPU init slower (writes cross the
        // link) but iterative compute much faster (HBM-local).
        assert!(get("bind_gpu", 1) > get("first_touch", 1));
        assert!(
            get("bind_gpu", 2) < get("first_touch", 2),
            "\n{}",
            csv.render()
        );
        // Interleave sits between the extremes for compute.
        assert!(get("interleave", 2) <= get("first_touch", 2));
    }
}
