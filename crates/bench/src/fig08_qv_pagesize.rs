//! Figure 8: Quantum Volume speedup of 64 KB system pages relative to
//! 4 KB, for the system and managed versions, at increasing qubit count.

use gh_apps::MemMode;
use gh_profiler::Csv;
use gh_qsim::{paper_qubits, run_qv, QsimParams};

use crate::util::machine;

/// Sweep range (simulated qubits; paper = +10).
pub fn qubit_range(fast: bool) -> Vec<u32> {
    if fast {
        vec![14, 17]
    } else {
        (13..=23).collect()
    }
}

/// Rows: (paper_qubits, mode, t4k_ms, t64k_ms, speedup_64k).
pub fn run(fast: bool) -> Csv {
    let mut csv = Csv::new(["paper_qubits", "mode", "t4k_ms", "t64k_ms", "speedup_64k"]);
    for q in qubit_range(fast) {
        for mode in [MemMode::System, MemMode::Managed] {
            let p = QsimParams {
                sim_qubits: q,
                compute_amplitudes: false,
                ..Default::default()
            };
            let t4 = run_qv(machine(true, false), mode, &p).reported_total();
            let t64 = run_qv(machine(false, false), mode, &p).reported_total();
            csv.row([
                paper_qubits(q).to_string(),
                mode.label().to_string(),
                format!("{:.3}", t4 as f64 / 1e6),
                format!("{:.3}", t64 as f64 / 1e6),
                format!("{:.3}", t4 as f64 / t64 as f64),
            ]);
        }
    }
    csv
}

/// Extracts the 64 KB speedup for (paper qubits, mode).
pub fn speedup(csv: &Csv, paper_q: u32, mode: &str) -> f64 {
    csv.render()
        .lines()
        .find(|l| l.starts_with(&format!("{paper_q},{mode},")))
        .and_then(|l| l.split(',').nth(4))
        .and_then(|s| s.parse().ok())
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_speedup_grows_with_problem_size() {
        // Paper Fig 8: the 64 KB speedup of the system version increases
        // with qubit count (up to ~4×), as GPU-side first-touch fault
        // counts scale with page count.
        let csv = run(true);
        let small = speedup(&csv, 24, "system");
        let large = speedup(&csv, 27, "system");
        assert!(
            large > small,
            "system speedup must grow: {small} → {large}\n{}",
            csv.render()
        );
        assert!(large > 1.5, "large sizes must clearly favour 64 KB");
    }

    #[test]
    fn managed_is_less_page_size_sensitive_at_scale() {
        // Paper: from 25 qubits on, managed runs similarly under both
        // page sizes (GPU-resident managed pages use the 2 MB GPU page
        // table regardless of the system page size).
        let csv = run(true);
        let sys = speedup(&csv, 27, "system");
        let man = speedup(&csv, 27, "managed");
        assert!(
            sys > man,
            "system must be more page-size sensitive: sys {sys} vs man {man}"
        );
        assert!(man < 2.0, "managed sensitivity should stay mild: {man}");
    }
}
