//! Platform comparison: every application on every registered backend.
//!
//! The GH200 column is the paper's machine (two tiers, migration on);
//! the MI300A column is the unified-physical-memory contrast point — one
//! HBM3 pool shared by CPU and GPU, so data never migrates and every
//! access is local after the initial mapping fault. The ratio column
//! makes the architectural trade visible per access pattern.
//!
//! The matrix runs **concurrently by default** on the `gh-jobs` executor
//! (one worker per core, `GH_JOBS=<n>` overrides): sessions are per-run,
//! so the parallel sweep's reports are bitwise-identical to a serial one.

use gh_apps::{AppId, MemMode};
use gh_jobs::{JobCache, JobSpec};
use gh_profiler::Csv;
use gh_sim::platform;
use std::sync::Arc;

use crate::util::{export_trace, jobs_requested, ratio, session_opts};

/// Rows: (app, mode, <name>_ms per platform..., mi300a_over_gh200).
pub fn run(fast: bool) -> Csv {
    let platforms = platform::all();
    let mut header: Vec<String> = vec!["app".into(), "mode".into()];
    for p in platforms {
        header.push(format!("{}_ms", p.caps().name));
    }
    header.push("mi300a_over_gh200".into());
    let mut csv = Csv::new(header);

    let so = session_opts();
    let workers = jobs_requested(gh_par::default_parallelism());
    let mut specs: Vec<JobSpec> = Vec::new();
    for app in AppId::ALL {
        for mode in [MemMode::System, MemMode::Managed] {
            for p in platforms {
                specs.push(JobSpec {
                    app,
                    platform: p.caps().name.to_string(),
                    mode,
                    page_size: None,
                    small: fast,
                    session: so.clone(),
                });
            }
        }
    }
    let cache = Arc::new(JobCache::new());
    let mut outcomes = gh_jobs::run_suite(&specs, workers, &cache).into_iter();

    for app in AppId::ALL {
        for mode in [MemMode::System, MemMode::Managed] {
            let mut totals = Vec::with_capacity(platforms.len());
            let mut checksums = Vec::with_capacity(platforms.len());
            for p in platforms {
                let label = format!("{}-{}-{}", app.name(), mode.label(), p.caps().name);
                let r = outcomes
                    .next()
                    .expect("one outcome per spec")
                    .expect("matrix specs name registered platforms")
                    .report;
                if so.trace {
                    export_trace(&label, &r);
                }
                totals.push(r.reported_total());
                checksums.push(r.checksum);
            }
            // The platforms change the cost model, never the numerics.
            for c in &checksums[1..] {
                assert_eq!(
                    c.to_bits(),
                    checksums[0].to_bits(),
                    "{}: checksum must be platform-independent",
                    app.name()
                );
            }
            let mut row: Vec<String> = vec![app.name().to_string(), mode.label().to_string()];
            for t in &totals {
                row.push(format!("{:.3}", *t as f64 / 1e6));
            }
            row.push(ratio(totals[1], totals[0]));
            csv.row(row);
        }
    }
    csv
}

/// Looks up a column for one (app, mode) row.
pub fn col(csv: &Csv, app: &str, mode: &str, idx: usize) -> f64 {
    csv.render()
        .lines()
        .find(|l| l.starts_with(&format!("{app},{mode},")))
        .and_then(|l| l.split(',').nth(idx))
        .and_then(|s| s.parse().ok())
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_app_and_mode() {
        let csv = run(true);
        assert_eq!(csv.len(), AppId::ALL.len() * 2);
        let text = csv.render();
        for app in AppId::ALL {
            assert!(text.contains(app.name()), "{} missing\n{text}", app.name());
        }
    }

    #[test]
    fn every_cell_is_finite_and_positive() {
        let csv = run(true);
        for line in csv.render().lines().skip(1) {
            for cell in line.split(',').skip(2) {
                let v: f64 = cell.parse().unwrap();
                assert!(v.is_finite() && v > 0.0, "bad cell {cell} in {line}");
            }
        }
    }

    #[test]
    fn managed_hotspot_avoids_migration_cost_on_mi300a() {
        // Managed memory on GH200 migrates the CPU-initialized grids to
        // HBM through fault batches; on MI300A the pool is shared, so the
        // kernel starts without any migration transient.
        let csv = run(true);
        let gh = col(&csv, "hotspot", "managed", 2);
        let mi = col(&csv, "hotspot", "managed", 3);
        assert!(
            mi < gh,
            "unified pool must skip the migration transient: gh200 {gh} vs mi300a {mi}\n{}",
            csv.render()
        );
    }
}
