//! The metrics registry: monotone counters, gauges, and log-2 histograms.
//!
//! Names are flat dotted strings (`os.cpu_faults`, `uvm.bytes_migrated_in`,
//! `link.xfer_bytes`); see `docs/observability.md` for the full inventory.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds zero-valued observations,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, so a `u64` value always
/// lands in a bucket (`2^63 ≤ v` falls in bucket 64).
pub const HIST_BUCKETS: usize = 65;

/// A log-2 histogram of `u64` observations (latencies in ns, sizes in
/// bytes). Power-of-two buckets keep it O(1) to record and compact to dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u128,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index a value lands in.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            v.ilog2() as usize + 1
        }
    }

    /// Inclusive-exclusive value range `[lo, hi)` covered by bucket `idx`
    /// (bucket 0 is the single value 0; the last bucket's `hi` saturates).
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        if idx == 0 {
            (0, 1)
        } else {
            (
                1u64 << (idx - 1),
                1u64.checked_shl(idx as u32).unwrap_or(u64::MAX),
            )
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Arithmetic mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `p`-th percentile (`p` in `[0, 1]`), interpolated
    /// linearly inside the log-2 bucket holding the rank and clamped to
    /// the observed `[min, max]` so the estimate never leaves the data's
    /// actual range. `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        // 1-based rank of the percentile observation (nearest-rank).
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if idx == 0 {
                    // Bucket 0 holds exactly the value 0.
                    return Some(0.0);
                }
                let (lo, hi) = Self::bucket_bounds(idx);
                // Position of the rank inside this bucket, (0, 1].
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return Some(est.clamp(self.min as f64, self.max as f64));
            }
            seen += c;
        }
        Some(self.max as f64)
    }

    /// The conventional summary trio `(p50, p95, p99)`; `None` when empty.
    pub fn summary_percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.percentile(0.50)?,
            self.percentile(0.95)?,
            self.percentile(0.99)?,
        ))
    }

    /// Non-empty buckets as `(bucket_lo, count)` pairs, for dumps.
    pub fn occupied(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bounds(i).0, c))
    }
}

/// A registry of named counters, gauges, and histograms. Deterministic
/// iteration order (BTreeMap) keeps dumps diffable across runs.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Adds `delta` to the monotone counter `name`.
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `v` (last-write-wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` into the log-2 histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_string()).or_default().record(v);
    }

    /// Current value of counter `name` (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Every bucket's hi equals the next bucket's lo.
        for idx in 0..HIST_BUCKETS - 1 {
            let (_, hi) = Histogram::bucket_bounds(idx);
            let (lo_next, _) = Histogram::bucket_bounds(idx + 1);
            assert_eq!(hi, lo_next, "bucket {idx}");
        }
        // And each sample value falls inside its own bucket's bounds.
        for v in [0u64, 1, 2, 7, 4096, u64::MAX / 2, u64::MAX] {
            let idx = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!(lo <= v, "{v} under lo {lo}");
            assert!(v < hi || (idx == 64 && hi == u64::MAX), "{v} over hi {hi}");
        }
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Histogram::default();
        for v in [5u64, 0, 100, 7] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 112);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert_eq!(h.mean(), 28.0);
        let occ: Vec<_> = h.occupied().collect();
        // 0 → bucket 0; 5,7 → [4,8); 100 → [64,128).
        assert_eq!(occ, vec![(0, 1), (4, 2), (64, 1)]);
    }

    #[test]
    fn percentiles_of_empty_histogram_are_none() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.summary_percentiles(), None);
    }

    #[test]
    fn percentile_of_constant_data_is_exact() {
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.record(4096);
        }
        // Interpolation would wander inside [4096, 8192); the min/max
        // clamp pins a constant stream to its one value.
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(p), Some(4096.0), "p={p}");
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_data() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p95, p99) = h.summary_percentiles().unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!((1.0..=1000.0).contains(&p50), "{p50}");
        assert!((1.0..=1000.0).contains(&p99), "{p99}");
        // With log-2 buckets the p50 of uniform 1..=1000 must land in
        // the [256, 1024) region (ranks 500 of 1000 → bucket [256,512)).
        assert!((256.0..1024.0).contains(&p50), "{p50}");
        assert!(p99 >= 512.0, "{p99}");
    }

    #[test]
    fn percentile_rank_walks_buckets() {
        let mut h = Histogram::default();
        // 9 zeros and one huge value: p50 is 0, p99+ reaches the outlier.
        for _ in 0..9 {
            h.record(0);
        }
        h.record(1 << 20);
        assert_eq!(h.percentile(0.5), Some(0.0));
        assert_eq!(h.percentile(1.0), Some((1u64 << 20) as f64));
    }

    #[test]
    fn registry_counts_and_gauges() {
        let mut m = Metrics::default();
        m.count("os.cpu_faults", 3);
        m.count("os.cpu_faults", 2);
        m.gauge("gpu.used_bytes", 42.0);
        m.observe("fault.cost_ns", 1000);
        assert_eq!(m.counter("os.cpu_faults"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge_value("gpu.used_bytes"), Some(42.0));
        assert_eq!(m.histogram("fault.cost_ns").unwrap().count, 1);
        assert!(!m.is_empty());
    }
}
