//! Exporters: Chrome/Perfetto trace JSON, CSV and JSON metrics dumps, and
//! the human-readable per-phase "run explain" table.

use crate::collector::{SpanRec, TraceData};
use crate::event::{Dir, Event};
use crate::json;
use std::fmt::Write as _;

/// Track (tid) a span category renders on in the Chrome trace viewer.
fn span_tid(cat: &str) -> u32 {
    match cat {
        "phase" => 0,
        "kernel" => 1,
        "copy" => 2,
        "migration" => 3,
        "api" => 4,
        _ => 5,
    }
}

/// Track an instant event renders on, grouped by subsystem.
fn event_tid(ev: &Event) -> u32 {
    match ev {
        Event::PageFault { .. } => 6,
        Event::Migration { .. } | Event::Evict { .. } | Event::Pin { .. } => 3,
        Event::LinkXfer { .. } => 7,
        Event::TlbEvict { .. } => 8,
        Event::CounterNotify { .. } => 9,
        Event::VmaCreate { .. } | Event::VmaDestroy { .. } => 10,
    }
}

fn push_ts(out: &mut String, ns: u64) {
    // Chrome trace timestamps are microseconds; keep ns resolution with
    // three decimals.
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Renders the trace as Chrome trace-event JSON (load in Perfetto or
/// `chrome://tracing`). Spans become `"X"` complete events on per-category
/// tracks; bus events become `"i"` instants with their payload as `args`.
pub fn chrome_trace(data: &TraceData) -> String {
    let mut out = String::with_capacity(256 + data.spans.len() * 96 + data.events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  ");
    };
    for s in &data.spans {
        sep(&mut out);
        out.push_str("{\"name\":");
        json::quote_into(&mut out, &s.name);
        out.push_str(",\"cat\":");
        json::quote_into(&mut out, s.cat);
        out.push_str(",\"ph\":\"X\",\"ts\":");
        push_ts(&mut out, s.start);
        out.push_str(",\"dur\":");
        push_ts(&mut out, (s.end - s.start).max(1));
        let _ = write!(out, ",\"pid\":1,\"tid\":{}}}", span_tid(s.cat));
    }
    for e in &data.events {
        sep(&mut out);
        out.push_str("{\"name\":");
        json::quote_into(&mut out, e.event.name());
        out.push_str(",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
        push_ts(&mut out, e.ns);
        let _ = write!(
            out,
            ",\"pid\":1,\"tid\":{},\"args\":{}}}",
            event_tid(&e.event),
            e.event.args_json()
        );
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{}}}}}",
        data.dropped
    );
    out
}

/// Dumps the metrics registry as CSV: `kind,name,field,value` rows.
/// Histograms expand to `count`/`sum`/`min`/`max`/`mean`/`p50`/`p95`/
/// `p99` plus one `bucket_<lo>` row per occupied bucket.
pub fn metrics_csv(data: &TraceData) -> String {
    let mut out = String::from("kind,name,field,value\n");
    for (name, v) in data.metrics.counters() {
        let _ = writeln!(out, "counter,{name},value,{v}");
    }
    for (name, v) in data.metrics.gauges() {
        let _ = writeln!(out, "gauge,{name},value,{v}");
    }
    for (name, h) in data.metrics.histograms() {
        let _ = writeln!(out, "histogram,{name},count,{}", h.count);
        let _ = writeln!(out, "histogram,{name},sum,{}", h.sum);
        let _ = writeln!(out, "histogram,{name},min,{}", h.min);
        let _ = writeln!(out, "histogram,{name},max,{}", h.max);
        let _ = writeln!(out, "histogram,{name},mean,{}", h.mean());
        if let Some((p50, p95, p99)) = h.summary_percentiles() {
            let _ = writeln!(out, "histogram,{name},p50,{p50}");
            let _ = writeln!(out, "histogram,{name},p95,{p95}");
            let _ = writeln!(out, "histogram,{name},p99,{p99}");
        }
        for (lo, c) in h.occupied() {
            let _ = writeln!(out, "histogram,{name},bucket_{lo},{c}");
        }
    }
    let _ = writeln!(out, "meta,events,recorded,{}", data.events.len());
    let _ = writeln!(out, "meta,events,dropped,{}", data.dropped);
    out
}

/// Dumps the metrics registry as a JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{...},"events":{...}}`.
pub fn metrics_json(data: &TraceData) -> String {
    let mut out = String::from("{\"counters\":{");
    let mut first = true;
    for (name, v) in data.metrics.counters() {
        if !first {
            out.push(',');
        }
        first = false;
        json::quote_into(&mut out, name);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"gauges\":{");
    first = true;
    for (name, v) in data.metrics.gauges() {
        if !first {
            out.push(',');
        }
        first = false;
        json::quote_into(&mut out, name);
        out.push(':');
        out.push_str(&json::f64_value(v));
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for (name, h) in data.metrics.histograms() {
        if !first {
            out.push(',');
        }
        first = false;
        json::quote_into(&mut out, name);
        let _ = write!(
            out,
            ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
            h.count, h.sum, h.min, h.max
        );
        if let Some((p50, p95, p99)) = h.summary_percentiles() {
            let _ = write!(
                out,
                ",\"p50\":{},\"p95\":{},\"p99\":{}",
                json::f64_value(p50),
                json::f64_value(p95),
                json::f64_value(p99)
            );
        }
        out.push_str(",\"buckets\":{");
        let mut bfirst = true;
        for (lo, c) in h.occupied() {
            if !bfirst {
                out.push(',');
            }
            bfirst = false;
            let _ = write!(out, "\"{lo}\":{c}");
        }
        out.push_str("}}");
    }
    let _ = write!(
        out,
        "}},\"events\":{{\"recorded\":{},\"dropped\":{}}}}}",
        data.events.len(),
        data.dropped
    );
    out
}

/// Per-phase aggregates behind the explain table; also usable
/// programmatically (the advisor cites these counts in its rationale).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseExplain {
    /// Phase label.
    pub name: String,
    /// Virtual duration in ns.
    pub dur: u64,
    /// CPU first-touch faults inside the phase.
    pub cpu_faults: u64,
    /// ATS faults inside the phase.
    pub ats_faults: u64,
    /// GPU replayable faults inside the phase.
    pub gpu_faults: u64,
    /// Bytes migrated host→device inside the phase (any engine).
    pub bytes_in: u64,
    /// Bytes migrated device→host inside the phase.
    pub bytes_out: u64,
    /// Bytes crossing NVLink-C2C inside the phase.
    pub link_bytes: u64,
    /// Busy time of the link inside the phase (sum of transfer durations).
    pub link_busy: u64,
}

impl PhaseExplain {
    /// Link utilization in `[0, 1]`: busy time over phase duration.
    pub fn link_utilization(&self) -> f64 {
        if self.dur == 0 {
            0.0
        } else {
            self.link_busy as f64 / self.dur as f64
        }
    }
}

fn in_span(span: &SpanRec, ns: u64) -> bool {
    ns >= span.start && ns < span.end.max(span.start + 1)
}

/// Aggregates bus events into per-phase rows ("phase"-category spans).
pub fn explain_rows(data: &TraceData) -> Vec<PhaseExplain> {
    let mut phases: Vec<&SpanRec> = data.spans_in("phase").collect();
    phases.sort_by_key(|s| s.start);
    let mut rows: Vec<PhaseExplain> = phases
        .iter()
        .map(|s| PhaseExplain {
            name: s.name.clone(),
            dur: s.end - s.start,
            ..Default::default()
        })
        .collect();
    for ev in &data.events {
        let Some(idx) = phases.iter().position(|s| in_span(s, ev.ns)) else {
            continue;
        };
        let row = &mut rows[idx];
        match &ev.event {
            Event::PageFault { kind, .. } => match kind {
                crate::event::FaultKind::Cpu => row.cpu_faults += 1,
                crate::event::FaultKind::Ats => row.ats_faults += 1,
                crate::event::FaultKind::Gpu => row.gpu_faults += 1,
            },
            Event::Migration { dir, bytes, .. } => match dir {
                Dir::H2D => row.bytes_in += *bytes,
                Dir::D2H => row.bytes_out += *bytes,
            },
            Event::LinkXfer { bytes, dur, .. } => {
                row.link_bytes += *bytes;
                row.link_busy += *dur;
            }
            _ => {}
        }
    }
    rows
}

fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

/// Renders the per-phase explain table: time, faults by kind, bytes moved
/// each direction, and link utilization.
pub fn explain(data: &TraceData) -> String {
    let rows = explain_rows(data);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>9} {:>9} {:>9} {:>10} {:>10} {:>7}",
        "phase", "time_ms", "cpu_flt", "ats_flt", "gpu_flt", "bytes_in", "bytes_out", "link%"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<12} {:>10.3} {:>9} {:>9} {:>9} {:>10} {:>10} {:>6.1}%",
            r.name,
            r.dur as f64 / 1e6,
            r.cpu_faults,
            r.ats_faults,
            r.gpu_faults,
            human_bytes(r.bytes_in),
            human_bytes(r.bytes_out),
            r.link_utilization() * 100.0
        );
    }
    if data.dropped > 0 {
        let _ = writeln!(
            out,
            "(ring overflow: {} events dropped; counts above may undercount)",
            data.dropped
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{SpanRec, Stamped, TraceData};
    use crate::event::{Engine, FaultKind};

    fn sample_data() -> TraceData {
        let mut d = TraceData::default();
        d.spans.push(SpanRec {
            name: "compute".into(),
            cat: "phase",
            start: 0,
            end: 1_000_000,
            depth: 0,
        });
        d.spans.push(SpanRec {
            name: "k\"1\"".into(),
            cat: "kernel",
            start: 100,
            end: 500_000,
            depth: 1,
        });
        d.events.push(Stamped {
            ns: 200,
            seq: 0,
            event: Event::PageFault {
                kind: FaultKind::Ats,
                va: 4096,
                cost: 700,
            },
        });
        d.events.push(Stamped {
            ns: 300,
            seq: 1,
            event: Event::Migration {
                engine: Engine::Fault,
                dir: Dir::H2D,
                pages: 2,
                bytes: 8192,
            },
        });
        d.events.push(Stamped {
            ns: 400,
            seq: 2,
            event: Event::LinkXfer {
                dir: Dir::H2D,
                bytes: 8192,
                dur: 100_000,
            },
        });
        d.metrics.count("os.ats_faults", 1);
        d.metrics.observe("fault.cost_ns", 700);
        d
    }

    #[test]
    fn chrome_trace_is_balanced_and_escaped() {
        let j = chrome_trace(&sample_data());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("k\\\"1\\\""), "kernel name escaped: {j}");
        assert!(j.contains("\"name\":\"migration\""));
        assert!(j.contains("\"dropped_events\":0"));
    }

    #[test]
    fn metrics_csv_lists_counters() {
        let csv = metrics_csv(&sample_data());
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,os.ats_faults,value,1\n"));
        assert!(csv.contains("meta,events,recorded,3\n"));
    }

    #[test]
    fn metrics_csv_includes_percentiles() {
        let csv = metrics_csv(&sample_data());
        // One observation of 700: every percentile clamps to it exactly.
        assert!(csv.contains("histogram,fault.cost_ns,p50,700\n"), "{csv}");
        assert!(csv.contains("histogram,fault.cost_ns,p95,700\n"), "{csv}");
        assert!(csv.contains("histogram,fault.cost_ns,p99,700\n"), "{csv}");
    }

    #[test]
    fn metrics_json_is_balanced() {
        let j = metrics_json(&sample_data());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"os.ats_faults\":1"));
        assert!(j.contains("\"recorded\":3"));
        assert!(j.contains("\"p50\":700"), "{j}");
        assert!(j.contains("\"p99\":700"), "{j}");
    }

    #[test]
    fn explain_attributes_events_to_phases() {
        let rows = explain_rows(&sample_data());
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.name, "compute");
        assert_eq!(r.ats_faults, 1);
        assert_eq!(r.bytes_in, 8192);
        assert_eq!(r.link_bytes, 8192);
        assert!((r.link_utilization() - 0.1).abs() < 1e-9);
        let table = explain(&sample_data());
        assert!(table.contains("compute"));
        assert!(table.contains("cpu_flt"));
    }
}
