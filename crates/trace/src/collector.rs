//! The thread-local collector behind the bus facade.
//!
//! The simulator is single-threaded by design (the virtual clock is a plain
//! counter), so the collector is a `thread_local!` — no locks on the hot
//! path and no cross-thread ordering questions. The *application kernels*
//! run on `gh-par` worker threads, but all metering happens on the
//! simulation thread, which is the only thread that emits.
//!
//! Determinism contract: nothing in this module reads or writes simulator
//! state. Emitting is record-only, so enabling tracing cannot change any
//! virtual-time result. When disabled, every entry point returns after one
//! thread-local flag load.

use crate::event::{Event, Ns};
use crate::metrics::Metrics;
use crate::ring::Ring;
use std::cell::{Cell, RefCell};

/// Default event-ring capacity (events kept before drop-oldest kicks in).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// An event stamped with the virtual time and a per-run sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamped {
    /// Virtual time at emit.
    pub ns: Ns,
    /// Monotone sequence number (stable sort key for equal timestamps).
    pub seq: u64,
    /// The payload.
    pub event: Event,
}

/// A completed span: a named interval on the virtual timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name (phase label, kernel name, API call).
    pub name: String,
    /// Category: `"phase"`, `"kernel"`, `"api"`, `"copy"`, `"migration"`, …
    pub cat: &'static str,
    /// Virtual start time.
    pub start: Ns,
    /// Virtual end time.
    pub end: Ns,
    /// Nesting depth at which the span was opened (0 = top level).
    pub depth: u16,
}

/// Everything one traced run produced, drained via [`take`].
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// Events oldest-first (post ring eviction).
    pub events: Vec<Stamped>,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Completed spans in close order.
    pub spans: Vec<SpanRec>,
    /// The metrics registry snapshot.
    pub metrics: Metrics,
}

impl TraceData {
    /// Convenience: counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// Spans of one category, in close order.
    pub fn spans_in<'a>(&'a self, cat: &'a str) -> impl Iterator<Item = &'a SpanRec> + 'a {
        self.spans.iter().filter(move |s| s.cat == cat)
    }
}

struct Collector {
    now: Ns,
    seq: u64,
    events: Ring<Stamped>,
    spans: Vec<SpanRec>,
    open: Vec<(String, &'static str, Ns)>,
}

impl Collector {
    fn new(cap: usize) -> Self {
        Self {
            now: 0,
            seq: 0,
            events: Ring::new(cap),
            spans: Vec::new(),
            open: Vec::new(),
        }
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::new(DEFAULT_RING_CAPACITY));
    static METRICS: RefCell<Metrics> = RefCell::new(Metrics::default());
}

/// Turns the bus on with the default ring capacity, clearing prior state.
pub fn enable() {
    enable_with_capacity(DEFAULT_RING_CAPACITY);
}

/// Turns the bus on with an explicit ring capacity, clearing prior state.
pub fn enable_with_capacity(cap: usize) {
    COLLECTOR.with(|c| *c.borrow_mut() = Collector::new(cap));
    METRICS.with(|m| *m.borrow_mut() = Metrics::default());
    ENABLED.with(|e| e.set(true));
}

/// Turns the bus off. Recorded data stays available to [`take`].
pub fn disable() {
    ENABLED.with(|e| e.set(false));
}

/// True when the bus is recording.
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Advances the bus's notion of virtual time (called from the clock owner;
/// monotone by construction there).
pub fn set_now(ns: Ns) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| c.borrow_mut().now = ns);
}

/// The bus's current virtual time (0 when disabled or never set).
pub fn now() -> Ns {
    COLLECTOR.with(|c| c.borrow().now)
}

/// Records an event. No-op when disabled.
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let ns = c.now;
        let seq = c.seq;
        c.seq += 1;
        c.events.push(Stamped { ns, seq, event });
    });
}

/// Bumps the monotone counter `name` by `delta`. No-op when disabled.
pub fn count(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    METRICS.with(|m| m.borrow_mut().count(name, delta));
}

/// Current value of the monotone counter `name` without draining the bus
/// (0 when never bumped). The invariant sanitizer peeks at migration and
/// copy counters between phases through this; unlike [`take`], the data
/// stays in place for the exporter at end of run.
pub fn counter_value(name: &str) -> u64 {
    METRICS.with(|m| m.borrow().counter(name))
}

/// Sets the gauge `name`. No-op when disabled.
pub fn gauge(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    METRICS.with(|m| m.borrow_mut().gauge(name, v));
}

/// Records `v` into the log-2 histogram `name`. No-op when disabled.
pub fn observe(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    METRICS.with(|m| m.borrow_mut().observe(name, v));
}

/// Opens a span at the current virtual time. Pair with [`span_exit`], or
/// use the RAII [`span`] wrapper.
pub fn span_enter(name: &str, cat: &'static str) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let start = c.now;
        c.open.push((name.to_string(), cat, start));
    });
}

/// Closes the innermost open span at the current virtual time.
pub fn span_exit() {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        if let Some((name, cat, start)) = c.open.pop() {
            let end = c.now;
            let depth = c.open.len() as u16;
            c.spans.push(SpanRec {
                name,
                cat,
                start,
                end,
                depth,
            });
        }
    });
}

/// Records an already-measured interval `[start, now]` as a completed span
/// (for call sites that know the start time, e.g. kernel launches).
pub fn span_closed(name: &str, cat: &'static str, start: Ns) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let end = c.now;
        let depth = c.open.len() as u16;
        c.spans.push(SpanRec {
            name: name.to_string(),
            cat,
            start: start.min(end),
            end,
            depth,
        });
    });
}

/// RAII span: open on construction, closed on drop.
pub fn span(name: &str, cat: &'static str) -> SpanGuard {
    let active = enabled();
    if active {
        span_enter(name, cat);
    }
    SpanGuard { active }
}

/// Guard returned by [`span`]; closes the span when dropped (only if the
/// bus was enabled at open time, so enable/disable mid-span stays balanced).
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            span_exit();
        }
    }
}

/// Drains everything recorded so far (events, spans, metrics), leaving the
/// bus in its current enabled/disabled state with fresh empty storage.
/// Still-open spans are closed at the current virtual time.
pub fn take() -> TraceData {
    // Close dangling spans so exports are well-formed.
    let open_count = COLLECTOR.with(|c| c.borrow().open.len());
    for _ in 0..open_count {
        span_exit();
    }
    let (events, dropped, spans) = COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let cap = c.events.capacity();
        let now = c.now;
        let taken = std::mem::replace(&mut *c, Collector::new(cap));
        c.now = now;
        let dropped = taken.events.dropped();
        (taken.events.into_vec(), dropped, taken.spans)
    });
    let metrics = METRICS.with(|m| std::mem::take(&mut *m.borrow_mut()));
    TraceData {
        events,
        dropped,
        spans,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultKind;

    fn fault(cost: Ns) -> Event {
        Event::PageFault {
            kind: FaultKind::Cpu,
            va: 0,
            cost,
        }
    }

    #[test]
    fn counter_value_peeks_without_draining() {
        enable();
        count("peek.bytes", 100);
        count("peek.bytes", 28);
        assert_eq!(counter_value("peek.bytes"), 128);
        assert_eq!(counter_value("peek.missing"), 0);
        // Peeking left the data in place for the exporter.
        let d = take();
        assert_eq!(d.metrics.counter("peek.bytes"), 128);
        disable();
    }

    #[test]
    fn disabled_bus_records_nothing() {
        disable();
        emit(fault(1));
        count("x", 1);
        span_enter("s", "phase");
        span_exit();
        let d = take();
        assert!(d.events.is_empty());
        assert!(d.spans.is_empty());
        assert!(d.metrics.is_empty());
    }

    #[test]
    fn events_are_stamped_with_virtual_time() {
        enable();
        set_now(100);
        emit(fault(1));
        set_now(250);
        emit(fault(2));
        let d = take();
        disable();
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].ns, 100);
        assert_eq!(d.events[1].ns, 250);
        assert!(d.events[0].seq < d.events[1].seq);
    }

    #[test]
    fn span_nesting_tracks_depth() {
        enable();
        set_now(0);
        span_enter("outer", "phase");
        set_now(10);
        span_enter("inner", "kernel");
        set_now(30);
        span_exit();
        set_now(50);
        span_exit();
        let d = take();
        disable();
        // Close order: inner first.
        assert_eq!(d.spans.len(), 2);
        assert_eq!(d.spans[0].name, "inner");
        assert_eq!(d.spans[0].depth, 1);
        assert_eq!((d.spans[0].start, d.spans[0].end), (10, 30));
        assert_eq!(d.spans[1].name, "outer");
        assert_eq!(d.spans[1].depth, 0);
        assert_eq!((d.spans[1].start, d.spans[1].end), (0, 50));
    }

    #[test]
    fn raii_guard_closes_span() {
        enable();
        set_now(5);
        {
            let _g = span("scoped", "api");
            set_now(9);
        }
        let d = take();
        disable();
        assert_eq!(d.spans.len(), 1);
        assert_eq!((d.spans[0].start, d.spans[0].end), (5, 9));
    }

    #[test]
    fn take_closes_dangling_spans() {
        enable();
        set_now(1);
        span_enter("never-closed", "phase");
        set_now(7);
        let d = take();
        disable();
        assert_eq!(d.spans.len(), 1);
        assert_eq!(d.spans[0].end, 7);
    }

    #[test]
    fn ring_overflow_surfaces_dropped_count() {
        enable_with_capacity(4);
        for i in 0..10 {
            set_now(i);
            emit(fault(i));
        }
        let d = take();
        disable();
        assert_eq!(d.events.len(), 4);
        assert_eq!(d.dropped, 6);
        // Oldest dropped, newest kept.
        assert_eq!(d.events[0].ns, 6);
        assert_eq!(d.events[3].ns, 9);
    }

    #[test]
    fn take_resets_for_next_run() {
        enable();
        set_now(3);
        emit(fault(1));
        count("c", 2);
        let first = take();
        assert_eq!(first.events.len(), 1);
        assert_eq!(first.counter("c"), 2);
        let second = take();
        disable();
        assert!(second.events.is_empty());
        assert_eq!(second.counter("c"), 0);
    }
}
