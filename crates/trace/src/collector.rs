//! The session-owned collector behind the [`Bus`] handle.
//!
//! PR 9 evicted the former `thread_local!` collector: observability state
//! is no longer ambient. A [`Bus`] is a cheap cloneable handle
//! (`Option<Rc<..>>`) to one run's collector; every simulator component
//! that emits holds a clone, all sharing the same ring, span stack, and
//! metrics registry. A session that does not trace hands out [`Bus::off`]
//! handles, and every entry point returns after one `Option` check — the
//! hot path costs the same branch the old thread-local flag did.
//!
//! Because the state lives in the handle, two runs with different trace
//! options can execute concurrently in one process (each on its own
//! worker thread with its own `Bus`), which is what the `gh-jobs`
//! executor does. `Rc` (not `Arc`): a session is single-threaded by
//! design — the virtual clock is a plain counter — so handles never
//! cross threads; jobs are scheduled by moving the *spec* and building
//! the session on the executing worker.
//!
//! Determinism contract: nothing in this module reads or writes simulator
//! state. Emitting is record-only, so enabling tracing cannot change any
//! virtual-time result.

use crate::event::{Event, Ns};
use crate::metrics::Metrics;
use crate::ring::Ring;
use std::cell::RefCell;
use std::rc::Rc;

/// Default event-ring capacity (events kept before drop-oldest kicks in).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// An event stamped with the virtual time and a per-run sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamped {
    /// Virtual time at emit.
    pub ns: Ns,
    /// Monotone sequence number (stable sort key for equal timestamps).
    pub seq: u64,
    /// The payload.
    pub event: Event,
}

/// A completed span: a named interval on the virtual timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name (phase label, kernel name, API call).
    pub name: String,
    /// Category: `"phase"`, `"kernel"`, `"api"`, `"copy"`, `"migration"`, …
    pub cat: &'static str,
    /// Virtual start time.
    pub start: Ns,
    /// Virtual end time.
    pub end: Ns,
    /// Nesting depth at which the span was opened (0 = top level).
    pub depth: u16,
}

/// Everything one traced run produced, drained via [`Bus::take`].
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// Events oldest-first (post ring eviction).
    pub events: Vec<Stamped>,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Completed spans in close order.
    pub spans: Vec<SpanRec>,
    /// The metrics registry snapshot.
    pub metrics: Metrics,
}

impl TraceData {
    /// Convenience: counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// Spans of one category, in close order.
    pub fn spans_in<'a>(&'a self, cat: &'a str) -> impl Iterator<Item = &'a SpanRec> + 'a {
        self.spans.iter().filter(move |s| s.cat == cat)
    }
}

struct Collector {
    now: Ns,
    seq: u64,
    events: Ring<Stamped>,
    spans: Vec<SpanRec>,
    open: Vec<(String, &'static str, Ns)>,
}

impl Collector {
    fn new(cap: usize) -> Self {
        Self {
            now: 0,
            seq: 0,
            events: Ring::new(cap),
            spans: Vec::new(),
            open: Vec::new(),
        }
    }
}

struct BusInner {
    collector: RefCell<Collector>,
    metrics: RefCell<Metrics>,
}

/// A handle to one run's observability collector.
///
/// Cloning is cheap (one `Rc` bump) and every clone shares the same
/// storage, so the session owner and the components it instruments all
/// see one event stream. [`Bus::off`] (also `Default`) is the disabled
/// sink: every method is a no-op after a single `Option` check.
#[derive(Clone, Default)]
pub struct Bus {
    inner: Option<Rc<BusInner>>,
}

impl std::fmt::Debug for Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bus")
            .field("on", &self.is_on())
            .finish_non_exhaustive()
    }
}

impl Bus {
    /// A disabled bus: records nothing, costs one branch per call.
    pub fn off() -> Bus {
        Bus { inner: None }
    }

    /// A recording bus with the default ring capacity.
    pub fn on() -> Bus {
        Bus::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recording bus with an explicit event-ring capacity.
    pub fn with_capacity(cap: usize) -> Bus {
        Bus {
            inner: Some(Rc::new(BusInner {
                collector: RefCell::new(Collector::new(cap)),
                metrics: RefCell::new(Metrics::default()),
            })),
        }
    }

    /// True when this handle records.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the bus's notion of virtual time (called from the clock
    /// owner; monotone by construction there).
    pub fn set_now(&self, ns: Ns) {
        if let Some(i) = &self.inner {
            i.collector.borrow_mut().now = ns;
        }
    }

    /// The bus's current virtual time (0 when off or never set).
    pub fn now(&self) -> Ns {
        self.inner.as_ref().map_or(0, |i| i.collector.borrow().now)
    }

    /// Records an event. No-op when off.
    pub fn emit(&self, event: Event) {
        let Some(i) = &self.inner else { return };
        let mut c = i.collector.borrow_mut();
        let ns = c.now;
        let seq = c.seq;
        c.seq += 1;
        c.events.push(Stamped { ns, seq, event });
    }

    /// Bumps the monotone counter `name` by `delta`. No-op when off.
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(i) = &self.inner {
            i.metrics.borrow_mut().count(name, delta);
        }
    }

    /// Current value of the monotone counter `name` without draining the
    /// bus (0 when never bumped). The invariant sanitizer peeks at
    /// migration and copy counters between phases through this; unlike
    /// [`Bus::take`], the data stays in place for the exporter at end of
    /// run.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.metrics.borrow().counter(name))
    }

    /// Sets the gauge `name`. No-op when off.
    pub fn gauge(&self, name: &str, v: f64) {
        if let Some(i) = &self.inner {
            i.metrics.borrow_mut().gauge(name, v);
        }
    }

    /// Records `v` into the log-2 histogram `name`. No-op when off.
    pub fn observe(&self, name: &str, v: u64) {
        if let Some(i) = &self.inner {
            i.metrics.borrow_mut().observe(name, v);
        }
    }

    /// Opens a span at the current virtual time. Pair with
    /// [`Bus::span_exit`], or use the RAII [`Bus::span`] wrapper.
    pub fn span_enter(&self, name: &str, cat: &'static str) {
        let Some(i) = &self.inner else { return };
        let mut c = i.collector.borrow_mut();
        let start = c.now;
        c.open.push((name.to_string(), cat, start));
    }

    /// Closes the innermost open span at the current virtual time.
    pub fn span_exit(&self) {
        let Some(i) = &self.inner else { return };
        let mut c = i.collector.borrow_mut();
        if let Some((name, cat, start)) = c.open.pop() {
            let end = c.now;
            let depth = c.open.len() as u16;
            c.spans.push(SpanRec {
                name,
                cat,
                start,
                end,
                depth,
            });
        }
    }

    /// Records an already-measured interval `[start, now]` as a completed
    /// span (for call sites that know the start time, e.g. kernel
    /// launches).
    pub fn span_closed(&self, name: &str, cat: &'static str, start: Ns) {
        let Some(i) = &self.inner else { return };
        let mut c = i.collector.borrow_mut();
        let end = c.now;
        let depth = c.open.len() as u16;
        c.spans.push(SpanRec {
            name: name.to_string(),
            cat,
            start: start.min(end),
            end,
            depth,
        });
    }

    /// RAII span: open on construction, closed on drop.
    pub fn span(&self, name: &str, cat: &'static str) -> SpanGuard {
        self.span_enter(name, cat);
        SpanGuard { bus: self.clone() }
    }

    /// Drains everything recorded so far (events, spans, metrics),
    /// leaving this bus (and every clone of it) recording into fresh
    /// empty storage. Still-open spans are closed at the current virtual
    /// time. Returns the default empty data when off.
    pub fn take(&self) -> TraceData {
        let Some(i) = &self.inner else {
            return TraceData::default();
        };
        // Close dangling spans so exports are well-formed.
        let open_count = i.collector.borrow().open.len();
        for _ in 0..open_count {
            self.span_exit();
        }
        let (events, dropped, spans) = {
            let mut c = i.collector.borrow_mut();
            let cap = c.events.capacity();
            let now = c.now;
            let taken = std::mem::replace(&mut *c, Collector::new(cap));
            c.now = now;
            let dropped = taken.events.dropped();
            (taken.events.into_vec(), dropped, taken.spans)
        };
        let metrics = std::mem::take(&mut *i.metrics.borrow_mut());
        TraceData {
            events,
            dropped,
            spans,
            metrics,
        }
    }
}

/// Guard returned by [`Bus::span`]; closes the span when dropped. Holds
/// its own handle, so the guard stays balanced even if the caller's
/// handle is dropped first.
#[derive(Debug)]
pub struct SpanGuard {
    bus: Bus,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.bus.span_exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultKind;

    fn fault(cost: Ns) -> Event {
        Event::PageFault {
            kind: FaultKind::Cpu,
            va: 0,
            cost,
        }
    }

    #[test]
    fn counter_value_peeks_without_draining() {
        let bus = Bus::on();
        bus.count("peek.bytes", 100);
        bus.count("peek.bytes", 28);
        assert_eq!(bus.counter_value("peek.bytes"), 128);
        assert_eq!(bus.counter_value("peek.missing"), 0);
        // Peeking left the data in place for the exporter.
        let d = bus.take();
        assert_eq!(d.metrics.counter("peek.bytes"), 128);
    }

    #[test]
    fn off_bus_records_nothing() {
        let bus = Bus::off();
        bus.emit(fault(1));
        bus.count("x", 1);
        bus.span_enter("s", "phase");
        bus.span_exit();
        let d = bus.take();
        assert!(d.events.is_empty());
        assert!(d.spans.is_empty());
        assert!(d.metrics.is_empty());
        assert!(!bus.is_on());
    }

    #[test]
    fn clones_share_one_collector() {
        let bus = Bus::on();
        let emitter = bus.clone();
        emitter.set_now(5);
        emitter.emit(fault(1));
        emitter.count("shared", 2);
        let d = bus.take();
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.counter("shared"), 2);
    }

    #[test]
    fn two_buses_are_isolated() {
        let a = Bus::on();
        let b = Bus::on();
        a.count("c", 1);
        b.count("c", 10);
        assert_eq!(a.take().counter("c"), 1);
        assert_eq!(b.take().counter("c"), 10);
    }

    #[test]
    fn events_are_stamped_with_virtual_time() {
        let bus = Bus::on();
        bus.set_now(100);
        bus.emit(fault(1));
        bus.set_now(250);
        bus.emit(fault(2));
        let d = bus.take();
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].ns, 100);
        assert_eq!(d.events[1].ns, 250);
        assert!(d.events[0].seq < d.events[1].seq);
    }

    #[test]
    fn span_nesting_tracks_depth() {
        let bus = Bus::on();
        bus.set_now(0);
        bus.span_enter("outer", "phase");
        bus.set_now(10);
        bus.span_enter("inner", "kernel");
        bus.set_now(30);
        bus.span_exit();
        bus.set_now(50);
        bus.span_exit();
        let d = bus.take();
        // Close order: inner first.
        assert_eq!(d.spans.len(), 2);
        assert_eq!(d.spans[0].name, "inner");
        assert_eq!(d.spans[0].depth, 1);
        assert_eq!((d.spans[0].start, d.spans[0].end), (10, 30));
        assert_eq!(d.spans[1].name, "outer");
        assert_eq!(d.spans[1].depth, 0);
        assert_eq!((d.spans[1].start, d.spans[1].end), (0, 50));
    }

    #[test]
    fn raii_guard_closes_span() {
        let bus = Bus::on();
        bus.set_now(5);
        {
            let _g = bus.span("scoped", "api");
            bus.set_now(9);
        }
        let d = bus.take();
        assert_eq!(d.spans.len(), 1);
        assert_eq!((d.spans[0].start, d.spans[0].end), (5, 9));
    }

    #[test]
    fn take_closes_dangling_spans() {
        let bus = Bus::on();
        bus.set_now(1);
        bus.span_enter("never-closed", "phase");
        bus.set_now(7);
        let d = bus.take();
        assert_eq!(d.spans.len(), 1);
        assert_eq!(d.spans[0].end, 7);
    }

    #[test]
    fn ring_overflow_surfaces_dropped_count() {
        let bus = Bus::with_capacity(4);
        for i in 0..10 {
            bus.set_now(i);
            bus.emit(fault(i));
        }
        let d = bus.take();
        assert_eq!(d.events.len(), 4);
        assert_eq!(d.dropped, 6);
        // Oldest dropped, newest kept.
        assert_eq!(d.events[0].ns, 6);
        assert_eq!(d.events[3].ns, 9);
    }

    #[test]
    fn take_resets_for_next_run() {
        let bus = Bus::on();
        bus.set_now(3);
        bus.emit(fault(1));
        bus.count("c", 2);
        let first = bus.take();
        assert_eq!(first.events.len(), 1);
        assert_eq!(first.counter("c"), 2);
        let second = bus.take();
        assert!(second.events.is_empty());
        assert_eq!(second.counter("c"), 0);
    }
}
