//! Typed simulator events.
//!
//! Every layer of the simulator emits these through the bus: the OS fault
//! handler, the SMMU/TLB models, the NVLink-C2C model, the UVM driver, and
//! the CUDA runtime. Events carry virtual-clock timestamps only — wall time
//! never appears anywhere in a trace.

/// Virtual nanoseconds (mirrors `gh_mem::clock::Ns`; redefined here so the
/// bus stays dependency-free and `gh-mem` itself can emit events).
pub type Ns = u64;

/// Which side serviced a page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// CPU first-touch minor fault (system-allocated memory).
    Cpu,
    /// SMMU/ATS fault: GPU touched an unmapped system page.
    Ats,
    /// GPU replayable fault on managed memory (UVM).
    Gpu,
}

impl FaultKind {
    /// Stable lowercase label used in metric names and exports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Cpu => "cpu",
            FaultKind::Ats => "ats",
            FaultKind::Gpu => "gpu",
        }
    }
}

/// Which engine moved the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Fault-driven migration (GPU replayable fault path).
    Fault,
    /// Access-counter-driven migration (delayed, threshold-based).
    Counter,
    /// Explicit `cudaMemPrefetchAsync`.
    Prefetch,
    /// Capacity eviction (LRU under memory pressure).
    Evict,
    /// First-touch placement at initial access.
    FirstTouch,
    /// Explicit `cudaMemcpy`.
    Memcpy,
}

impl Engine {
    /// Stable lowercase label used in metric names and exports.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Fault => "fault",
            Engine::Counter => "counter",
            Engine::Prefetch => "prefetch",
            Engine::Evict => "evict",
            Engine::FirstTouch => "first_touch",
            Engine::Memcpy => "memcpy",
        }
    }
}

/// Transfer direction, GPU-centric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Host (LPDDR5X) to device (HBM3).
    H2D,
    /// Device to host.
    D2H,
}

impl Dir {
    /// Stable label used in metric names and exports.
    pub fn label(self) -> &'static str {
        match self {
            Dir::H2D => "h2d",
            Dir::D2H => "d2h",
        }
    }
}

/// A structured simulator event. Timestamps are attached by the collector
/// ([`crate::Stamped`]), so variants carry payload only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A page fault was serviced at `cost` virtual ns.
    PageFault { kind: FaultKind, va: u64, cost: Ns },
    /// Pages moved between CPU and GPU memory.
    Migration {
        engine: Engine,
        dir: Dir,
        pages: u64,
        bytes: u64,
    },
    /// A GPU TLB entry was evicted.
    TlbEvict { va: u64 },
    /// Bytes crossed NVLink-C2C, taking `dur` virtual ns.
    LinkXfer { dir: Dir, bytes: u64, dur: Ns },
    /// The access-counter aggregator crossed its threshold for a region.
    CounterNotify { va: u64 },
    /// Pages were evicted from GPU memory under capacity pressure.
    Evict { pages: u64, bytes: u64 },
    /// A range was pinned to CPU memory (thrash guard or host_register).
    Pin { va: u64, bytes: u64 },
    /// A VMA was created by `mmap`.
    VmaCreate { va: u64, bytes: u64 },
    /// A VMA was destroyed by `munmap`, tearing down `ptes` page-table
    /// entries (the paper's exit-cost phenomenon).
    VmaDestroy { ptes: u64 },
}

impl Event {
    /// Short stable name for exports and track labels.
    pub fn name(&self) -> &'static str {
        match self {
            Event::PageFault {
                kind: FaultKind::Cpu,
                ..
            } => "fault.cpu",
            Event::PageFault {
                kind: FaultKind::Ats,
                ..
            } => "fault.ats",
            Event::PageFault {
                kind: FaultKind::Gpu,
                ..
            } => "fault.gpu",
            Event::Migration { .. } => "migration",
            Event::TlbEvict { .. } => "tlb.evict",
            Event::LinkXfer { .. } => "link.xfer",
            Event::CounterNotify { .. } => "counter.notify",
            Event::Evict { .. } => "evict",
            Event::Pin { .. } => "pin",
            Event::VmaCreate { .. } => "vma.create",
            Event::VmaDestroy { .. } => "vma.destroy",
        }
    }

    /// JSON object with the event's payload fields (for Chrome-trace args).
    pub fn args_json(&self) -> String {
        match self {
            Event::PageFault { kind, va, cost } => {
                format!(
                    "{{\"kind\":\"{}\",\"va\":{va},\"cost_ns\":{cost}}}",
                    kind.label()
                )
            }
            Event::Migration {
                engine,
                dir,
                pages,
                bytes,
            } => format!(
                "{{\"engine\":\"{}\",\"dir\":\"{}\",\"pages\":{pages},\"bytes\":{bytes}}}",
                engine.label(),
                dir.label()
            ),
            Event::TlbEvict { va } => format!("{{\"va\":{va}}}"),
            Event::LinkXfer { dir, bytes, dur } => format!(
                "{{\"dir\":\"{}\",\"bytes\":{bytes},\"dur_ns\":{dur}}}",
                dir.label()
            ),
            Event::CounterNotify { va } => format!("{{\"va\":{va}}}"),
            Event::Evict { pages, bytes } => {
                format!("{{\"pages\":{pages},\"bytes\":{bytes}}}")
            }
            Event::Pin { va, bytes } => format!("{{\"va\":{va},\"bytes\":{bytes}}}"),
            Event::VmaCreate { va, bytes } => format!("{{\"va\":{va},\"bytes\":{bytes}}}"),
            Event::VmaDestroy { ptes } => format!("{{\"ptes\":{ptes}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        let e = Event::PageFault {
            kind: FaultKind::Ats,
            va: 0x1000,
            cost: 5,
        };
        assert_eq!(e.name(), "fault.ats");
        assert_eq!(
            Event::Migration {
                engine: Engine::Counter,
                dir: Dir::H2D,
                pages: 1,
                bytes: 4096
            }
            .name(),
            "migration"
        );
    }

    #[test]
    fn args_are_json_objects() {
        let e = Event::Migration {
            engine: Engine::Fault,
            dir: Dir::D2H,
            pages: 2,
            bytes: 8192,
        };
        assert_eq!(
            e.args_json(),
            "{\"engine\":\"fault\",\"dir\":\"d2h\",\"pages\":2,\"bytes\":8192}"
        );
    }
}
