//! Minimal JSON writing helpers shared by every exporter in the workspace
//! (`gh-trace` exporters, `gh-profiler`'s Chrome trace, `gh-sim`'s run
//! report), so string escaping lives in exactly one place — plus a small
//! recursive-descent reader ([`Value::parse`]) for the consumers that
//! load those dumps back (the perf-suite baseline comparator, the
//! exporter roundtrip tests). No external crates: the build is offline.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters are escaped, not dropped).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends `s` as a quoted JSON string.
pub fn quote_into(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Returns `s` as a quoted JSON string.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    quote_into(&mut out, s);
    out
}

/// Formats an `f64` as a JSON value (`null` for non-finite values, which
/// JSON cannot represent).
pub fn f64_value(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Objects use `BTreeMap` so re-serialization and
/// comparison are deterministic regardless of input key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; exporter integers fit exactly
    /// up to 2^53, far beyond any count or ns total we compare).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: src.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object member by key (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number in this value, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string in this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array in this value, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object map in this value, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn require(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                c as char,
                self.i,
                self.b.get(self.i).map(|&x| x as char)
            ))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|&x| x as char),
                self.i
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.require(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Exporters only emit \u for control chars;
                            // surrogate pairs fall back to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|&x| x as char))),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("empty string tail")?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let txt = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        txt.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{txt}` at byte {start}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.require(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.require(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.require(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(quoted(r#"a"b\c"#), r#""a\"b\\c""#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(quoted("a\nb\tc\u{1}d"), "\"a\\nb\\tc\\u0001d\"");
    }

    #[test]
    fn passes_unicode_through() {
        assert_eq!(quoted("π≈3"), "\"π≈3\"");
    }

    #[test]
    fn f64_non_finite_is_null() {
        assert_eq!(f64_value(1.5), "1.5");
        assert_eq!(f64_value(f64::NAN), "null");
        assert_eq!(f64_value(f64::INFINITY), "null");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(Value::parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(
            Value::parse("\"hi\"").unwrap(),
            Value::Str("hi".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#).unwrap();
        let a = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].get("b"), Some(&Value::Null));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn parses_empty_containers() {
        assert_eq!(Value::parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(Value::parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(Value::parse("[ ]").unwrap(), Value::Arr(vec![]));
    }

    #[test]
    fn roundtrips_escaped_strings() {
        let original = "a\"b\\c\nd\u{1}e π";
        let v = Value::parse(&quoted(original)).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"open").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn parses_own_exporter_output_shape() {
        // The shape metrics_json / chrome_trace emit: nested objects
        // keyed by dotted names, numeric leaves, null for non-finite.
        let doc = r#"{"counters":{"os.cpu_faults":3},"gauges":{"g":null},
                      "histograms":{"h":{"count":1,"p50":700,"buckets":{"512":1}}}}"#;
        let v = Value::parse(doc).unwrap();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("os.cpu_faults"))
                .and_then(Value::as_f64),
            Some(3.0)
        );
        assert_eq!(v.get("gauges").and_then(|g| g.get("g")), Some(&Value::Null));
        let h = v.get("histograms").and_then(|h| h.get("h")).unwrap();
        assert_eq!(h.get("p50").and_then(Value::as_f64), Some(700.0));
        assert_eq!(h.get("buckets").and_then(Value::as_obj).unwrap().len(), 1);
    }
}
