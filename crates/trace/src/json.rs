//! Minimal JSON writing helpers shared by every exporter in the workspace
//! (`gh-trace` exporters, `gh-profiler`'s Chrome trace, `gh-sim`'s run
//! report), so string escaping lives in exactly one place.

use std::fmt::Write as _;

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters are escaped, not dropped).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends `s` as a quoted JSON string.
pub fn quote_into(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Returns `s` as a quoted JSON string.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    quote_into(&mut out, s);
    out
}

/// Formats an `f64` as a JSON value (`null` for non-finite values, which
/// JSON cannot represent).
pub fn f64_value(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(quoted(r#"a"b\c"#), r#""a\"b\\c""#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(quoted("a\nb\tc\u{1}d"), "\"a\\nb\\tc\\u0001d\"");
    }

    #[test]
    fn passes_unicode_through() {
        assert_eq!(quoted("π≈3"), "\"π≈3\"");
    }

    #[test]
    fn f64_non_finite_is_null() {
        assert_eq!(f64_value(1.5), "1.5");
        assert_eq!(f64_value(f64::NAN), "null");
        assert_eq!(f64_value(f64::INFINITY), "null");
    }
}
