//! Fixed-capacity ring buffer with a drop-oldest overflow policy.
//!
//! Long runs can emit millions of events; the ring bounds memory while the
//! `dropped` count keeps the loss observable (exporters print it so a
//! truncated trace is never mistaken for a complete one).

use std::collections::VecDeque;

/// A bounded FIFO that evicts the oldest element on overflow.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    cap: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `cap` elements (at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            buf: VecDeque::with_capacity(cap.min(4096)),
            cap,
            dropped: 0,
        }
    }

    /// Appends `v`, evicting the oldest element if full.
    pub fn push(&mut self, v: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(v);
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no elements are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of elements evicted due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Consumes the ring, returning surviving elements oldest-first.
    pub fn into_vec(self) -> Vec<T> {
        self.buf.into_iter().collect()
    }

    /// Iterates surviving elements oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_on_overflow() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.into_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn no_drops_under_capacity() {
        let mut r = Ring::new(10);
        r.push(1);
        r.push(2);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.into_vec(), vec![1, 2]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = Ring::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.into_vec(), vec![2]);
    }
}
