//! `gh-trace` — the simulator's observability bus.
//!
//! The paper's conclusions are driven by counts and costs: page faults,
//! migration bytes, NVLink-C2C traffic, page-table teardown work. This
//! crate gives every simulator layer one place to report those quantities:
//!
//! * a **structured event bus** keyed to the *virtual* clock (wall time
//!   never appears): typed [`Event`]s flow into a bounded [`ring::Ring`]
//!   with a drop-oldest overflow policy and an observable dropped count;
//! * a **metrics registry** ([`metrics::Metrics`]) of monotone counters,
//!   gauges, and log-2 histograms;
//! * **hierarchical spans** (phase → API call → kernel → fault batch) via
//!   [`Bus::span`]/[`Bus::span_enter`]/[`Bus::span_exit`]/[`Bus::span_closed`];
//! * **exporters**: Chrome/Perfetto trace JSON ([`export::chrome_trace`]),
//!   CSV/JSON metrics dumps, and a per-phase "run explain" table
//!   ([`export::explain`]).
//!
//! The collector is **session-scoped, not ambient**: a [`Bus`] is a
//! cloneable handle owned by one run's session context and injected into
//! each component that emits. There is no process or thread global, so
//! runs with different trace options coexist in one process. A disabled
//! handle ([`Bus::off`]) makes every call a no-op after one branch, and
//! recording never touches simulator state, so enabling tracing cannot
//! change any virtual-time result. See `docs/observability.md` for the
//! event taxonomy and metric-name inventory, and `docs/sessions.md` for
//! how sessions own the bus.
//!
//! ```
//! use gh_trace::{Bus, Event, FaultKind};
//!
//! let bus = Bus::on();
//! bus.set_now(100);
//! bus.span_enter("compute", "phase");
//! bus.emit(Event::PageFault {
//!     kind: FaultKind::Ats,
//!     va: 0x1000,
//!     cost: 700,
//! });
//! bus.count("os.ats_faults", 1);
//! bus.set_now(1_000);
//! bus.span_exit();
//! let data = bus.take();
//! assert_eq!(data.counter("os.ats_faults"), 1);
//! let perfetto_json = gh_trace::export::chrome_trace(&data);
//! assert!(perfetto_json.contains("fault.ats"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod collector;
pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod ring;

pub use collector::{Bus, SpanGuard, SpanRec, Stamped, TraceData, DEFAULT_RING_CAPACITY};
pub use event::{Dir, Engine, Event, FaultKind, Ns};
pub use metrics::{Histogram, Metrics};
