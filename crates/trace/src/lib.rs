//! `gh-trace` — the simulator-wide observability bus.
//!
//! The paper's conclusions are driven by counts and costs: page faults,
//! migration bytes, NVLink-C2C traffic, page-table teardown work. This
//! crate gives every simulator layer one place to report those quantities:
//!
//! * a **structured event bus** keyed to the *virtual* clock (wall time
//!   never appears): typed [`Event`]s flow into a bounded [`ring::Ring`]
//!   with a drop-oldest overflow policy and an observable dropped count;
//! * a **metrics registry** ([`metrics::Metrics`]) of monotone counters,
//!   gauges, and log-2 histograms;
//! * **hierarchical spans** (phase → API call → kernel → fault batch) via
//!   [`span`]/[`span_enter`]/[`span_exit`]/[`span_closed`];
//! * **exporters**: Chrome/Perfetto trace JSON ([`export::chrome_trace`]),
//!   CSV/JSON metrics dumps, and a per-phase "run explain" table
//!   ([`export::explain`]).
//!
//! Everything is a no-op while disabled (one thread-local flag load), and
//! recording never touches simulator state, so enabling tracing cannot
//! change any virtual-time result. See `docs/observability.md` for the
//! event taxonomy and metric-name inventory.
//!
//! ```
//! use gh_trace as trace;
//!
//! trace::enable();
//! trace::set_now(100);
//! trace::span_enter("compute", "phase");
//! trace::emit(trace::Event::PageFault {
//!     kind: trace::FaultKind::Ats,
//!     va: 0x1000,
//!     cost: 700,
//! });
//! trace::count("os.ats_faults", 1);
//! trace::set_now(1_000);
//! trace::span_exit();
//! let data = trace::take();
//! trace::disable();
//! assert_eq!(data.counter("os.ats_faults"), 1);
//! let perfetto_json = trace::export::chrome_trace(&data);
//! assert!(perfetto_json.contains("fault.ats"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod collector;
pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod ring;

pub use collector::{
    count, counter_value, disable, emit, enable, enable_with_capacity, enabled, gauge, now,
    observe, set_now, span, span_closed, span_enter, span_exit, take, SpanGuard, SpanRec, Stamped,
    TraceData, DEFAULT_RING_CAPACITY,
};
pub use event::{Dir, Engine, Event, FaultKind, Ns};
pub use metrics::{Histogram, Metrics};
