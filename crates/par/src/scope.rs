//! Borrowing, dynamically scheduled loop primitives.
//!
//! These are built on `std::thread::scope`, so closures may capture
//! non-`'static` references (slices owned by the caller). Load balance comes
//! from *dynamic chunk scheduling*: the iteration space is cut into chunks
//! of [`Grain`] size and workers claim chunks from a shared atomic cursor,
//! so an uneven workload (e.g. BFS frontiers) does not leave threads idle.

// gh-audit: allow-file(no-unwrap-in-lib) -- mutex poisoning means a worker panicked; propagating the panic is the only sound response
use std::sync::atomic::{AtomicUsize, Ordering};

/// Chunking policy for the scoped loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grain {
    /// Fixed number of iterations per claimed chunk.
    Fixed(usize),
    /// Split the range into roughly `4 × workers` chunks (a good default:
    /// large enough to amortize the claim, small enough to balance).
    Auto,
}

impl Grain {
    fn chunk_len(self, total: usize, workers: usize) -> usize {
        match self {
            Grain::Fixed(n) => n.max(1),
            Grain::Auto => (total / (workers * 4).max(1)).max(1),
        }
    }
}

fn effective_workers(total: usize) -> usize {
    crate::default_parallelism().min(total.max(1))
}

/// Runs `f(i)` for every `i` in `range`, in parallel, with dynamic
/// scheduling. Blocks until every iteration has completed.
pub fn par_for<F>(range: std::ops::Range<usize>, grain: Grain, f: F)
where
    F: Fn(usize) + Sync,
{
    let total = range.len();
    if total == 0 {
        return;
    }
    let workers = effective_workers(total);
    if workers == 1 {
        for i in range {
            f(i);
        }
        return;
    }
    let chunk = grain.chunk_len(total, workers);
    let cursor = AtomicUsize::new(0);
    let start = range.start;
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                if lo >= total {
                    return;
                }
                let hi = (lo + chunk).min(total);
                for i in lo..hi {
                    f(start + i);
                }
            });
        }
    });
}

/// Runs `f(chunk_index, chunk)` over disjoint mutable chunks of `data`,
/// `chunk_len` elements each (last chunk may be shorter), in parallel.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    if n_chunks == 0 {
        return;
    }
    let workers = effective_workers(n_chunks);
    if workers == 1 {
        for (idx, c) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, c);
        }
        return;
    }
    // Pre-split into raw chunk descriptors so each worker can claim chunks
    // dynamically. Safety: chunks are disjoint by construction, each chunk
    // index is claimed exactly once via the atomic cursor, and the scope
    // outlives no reference.
    let base = data.as_mut_ptr();
    let len = data.len();
    let cursor = AtomicUsize::new(0);
    struct SendPtr<T>(*mut T);
    // SAFETY: the pointer is only dereferenced through disjoint [lo, hi)
    // ranges claimed via the atomic cursor, within the enclosing scope.
    unsafe impl<T> Send for SendPtr<T> {}
    unsafe impl<T> Sync for SendPtr<T> {}
    let base = SendPtr(base);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let base = &base;
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n_chunks {
                        return;
                    }
                    let lo = idx * chunk_len;
                    let hi = (lo + chunk_len).min(len);
                    // SAFETY: [lo, hi) ranges for distinct idx are disjoint
                    // and within bounds; idx is claimed exactly once.
                    let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(lo), hi - lo) };
                    f(idx, chunk);
                }
            });
        }
    });
}

/// Runs `f(chunk_index, chunk)` over disjoint shared chunks of `data`.
pub fn par_chunks<T, F>(data: &[T], chunk_len: usize, f: F)
where
    T: Sync,
    F: Fn(usize, &[T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    if n_chunks == 0 {
        return;
    }
    par_for(0..n_chunks, Grain::Fixed(1), |idx| {
        let lo = idx * chunk_len;
        let hi = (lo + chunk_len).min(data.len());
        f(idx, &data[lo..hi]);
    });
}

/// Parallel map-reduce over an index range. `map(i)` produces a value per
/// iteration; values are folded with `reduce`, starting from `identity`.
/// `reduce` must be associative and commutative.
pub fn par_map_reduce<A, M, R>(range: std::ops::Range<usize>, identity: A, map: M, reduce: R) -> A
where
    A: Send + Sync + Clone,
    M: Fn(usize) -> A + Sync,
    R: Fn(A, A) -> A + Sync + Send,
{
    let total = range.len();
    if total == 0 {
        return identity;
    }
    let workers = effective_workers(total);
    if workers == 1 {
        let mut acc = identity;
        for i in range {
            acc = reduce(acc, map(i));
        }
        return acc;
    }
    let chunk = Grain::Auto.chunk_len(total, workers);
    let cursor = AtomicUsize::new(0);
    let start = range.start;
    let partials = std::sync::Mutex::new(Vec::with_capacity(workers));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut acc = identity.clone();
                let mut touched = false;
                loop {
                    let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= total {
                        break;
                    }
                    let hi = (lo + chunk).min(total);
                    for i in lo..hi {
                        acc = reduce(acc, map(start + i));
                        touched = true;
                    }
                }
                if touched {
                    partials.lock().unwrap().push(acc);
                }
            });
        }
    });
    partials
        .into_inner()
        .unwrap()
        .into_iter()
        .fold(identity, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_for_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_for(0..n, Grain::Auto, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_respects_range_offset() {
        let seen = std::sync::Mutex::new(Vec::new());
        par_for(100..110, Grain::Fixed(3), |i| {
            seen.lock().unwrap().push(i);
        });
        let mut v = seen.into_inner().unwrap();
        v.sort_unstable();
        assert_eq!(v, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn par_for_empty_range_is_noop() {
        par_for(5..5, Grain::Auto, |_| panic!("must not run"));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        let mut data = vec![0u32; 1000];
        par_chunks_mut(&mut data, 64, |idx, chunk| {
            for x in chunk.iter_mut() {
                *x = idx as u32 + 1;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, (i / 64) as u32 + 1);
        }
    }

    #[test]
    fn par_chunks_mut_handles_non_divisible_len() {
        let mut data = vec![0u8; 103];
        par_chunks_mut(&mut data, 10, |_, chunk| {
            for x in chunk.iter_mut() {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn par_chunks_shared_reads_all() {
        let data: Vec<u64> = (0..5000).collect();
        let sum = AtomicU64::new(0);
        par_chunks(&data, 128, |_, chunk| {
            sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5000 * 4999 / 2);
    }

    #[test]
    fn par_map_reduce_sums_correctly() {
        let s = par_map_reduce(0..100_000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(s, 100_000 * 99_999 / 2);
    }

    #[test]
    fn par_map_reduce_empty_returns_identity() {
        let s = par_map_reduce(0..0, 42u64, |_| 0, |a, b| a + b);
        assert_eq!(s, 42);
    }

    #[test]
    fn par_map_reduce_max() {
        let m = par_map_reduce(0..9999, 0usize, |i| (i * 7919) % 4096, |a, b| a.max(b));
        let expected = (0..9999).map(|i| (i * 7919) % 4096).max().unwrap();
        assert_eq!(m, expected);
    }
}
