//! A minimal work-stealing deque trio (`Injector` / `Worker` / `Stealer`)
//! with the same API shape as `crossbeam::deque`, built on
//! `std::sync::Mutex<VecDeque<T>>`.
//!
//! The build environment is fully offline, so external lock-free deques are
//! unavailable; throughput here is bounded by the mutex, which is fine for
//! the simulator's job sizes (kernels meter whole chunks, not single
//! elements). Semantics match what [`crate::pool`] relies on: the injector
//! is a FIFO shared queue, each worker owns a LIFO deque, and stealers take
//! from the opposite end of a victim's deque.

// gh-audit: allow-file(no-unwrap-in-lib) -- mutex poisoning means a worker panicked; propagating the panic is the only sound response
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// A job was taken.
    Success(T),
    /// Transient contention; the caller should retry. Never produced by the
    /// mutex-backed implementation but kept so call sites keep the standard
    /// retry-loop shape.
    Retry,
}

impl<T> Steal<T> {
    /// True if the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// A shared FIFO queue that receives jobs from outside the pool.
#[derive(Debug)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a job at the tail.
    pub fn push(&self, job: T) {
        self.queue.lock().unwrap().push_back(job);
    }

    /// True if no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    /// Moves a small batch of jobs into `dest`'s local deque and pops one of
    /// them for immediate execution.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.queue.lock().unwrap();
        let Some(first) = q.pop_front() else {
            return Steal::Empty;
        };
        // Take up to half the remaining queue (capped) so siblings still
        // find work in the injector.
        let extra = (q.len() / 2).min(16);
        if extra > 0 {
            let mut local = dest.deque.lock().unwrap();
            for _ in 0..extra {
                if let Some(job) = q.pop_front() {
                    local.push_back(job);
                }
            }
        }
        Steal::Success(first)
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A worker-owned LIFO deque.
#[derive(Debug)]
pub struct Worker<T> {
    deque: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates an empty LIFO worker deque.
    pub fn new_lifo() -> Self {
        Self {
            deque: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pops the most recently pushed job (LIFO end).
    pub fn pop(&self) -> Option<T> {
        self.deque.lock().unwrap().pop_back()
    }

    /// Creates a handle siblings use to steal from this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            deque: Arc::clone(&self.deque),
        }
    }
}

/// A handle for stealing from another worker's deque (FIFO end).
#[derive(Debug, Clone)]
pub struct Stealer<T> {
    deque: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Takes the oldest job from the victim's deque.
    pub fn steal(&self) -> Steal<T> {
        match self.deque.lock().unwrap().pop_front() {
            Some(job) => Steal::Success(job),
            None => Steal::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        inj.push(3);
        inj.push(4);
        // First steal_batch_and_pop returns the FIFO head and may move some
        // of the rest into the local deque.
        let Steal::Success(first) = inj.steal_batch_and_pop(&w) else {
            panic!("expected a job");
        };
        assert_eq!(first, 1);
        let mut seen = vec![first];
        while let Some(j) = w.pop() {
            seen.push(j);
        }
        while let Steal::Success(j) = s.steal() {
            seen.push(j);
        }
        while let Steal::Success(j) = inj.steal_batch_and_pop(&w) {
            seen.push(j);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_queues_report_empty() {
        let inj: Injector<u32> = Injector::new();
        assert!(inj.is_empty());
        let w: Worker<u32> = Worker::new_lifo();
        assert!(w.pop().is_none());
        assert!(matches!(w.stealer().steal(), Steal::Empty));
        assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Empty));
    }
}
