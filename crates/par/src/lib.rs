//! `gh-par` — a small data-parallel execution substrate.
//!
//! The Grace Hopper simulator executes *real* application kernels on host
//! memory while a cost model meters every buffer access. The kernels need a
//! parallel runtime to play the role of the GPU's streaming multiprocessors;
//! this crate provides it without pulling in a full framework.
//!
//! Two layers are offered:
//!
//! * [`pool::WorkStealingPool`] — a persistent pool of worker threads with
//!   per-worker LIFO deques and random stealing, for `'static` jobs. This is
//!   the long-lived engine behind the global [`pool::global`] handle.
//! * [`scope`] — borrowing, dynamically scheduled loop primitives
//!   ([`scope::par_for`], [`scope::par_chunks_mut`],
//!   [`scope::par_map_reduce`]) built on `std::thread::scope`, which is what
//!   application kernels use: they can capture plain `&mut [T]` slices with
//!   no `Arc` ceremony and still get work-stealing-style load balance via a
//!   shared chunk counter.
//!
//! Determinism note: scheduling is non-deterministic, so only *associative
//! and commutative* reductions should be used with [`scope::par_map_reduce`]
//! when bit-exact reproducibility matters. The simulator's virtual-time
//! accounting never depends on scheduling order.
//!
//! ```
//! use gh_par::{par_for, par_map_reduce, Grain};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let hits = AtomicU64::new(0);
//! par_for(0..10_000, Grain::Auto, |_| {
//!     hits.fetch_add(1, Ordering::Relaxed);
//! });
//! assert_eq!(hits.into_inner(), 10_000);
//!
//! let sum = par_map_reduce(0..1000, 0u64, |i| i as u64, |a, b| a + b);
//! assert_eq!(sum, 499_500);
//! ```

#![deny(missing_debug_implementations)]

pub mod deque;
pub mod pool;
pub mod scope;
pub mod sort;

pub use pool::{global, WorkStealingPool};
pub use scope::{par_chunks, par_chunks_mut, par_for, par_map_reduce, Grain};
pub use sort::par_sort_unstable;

/// Returns the degree of parallelism used by default: the number of
/// available CPUs, capped at 16 so simulation runs stay well-behaved on
/// large shared machines.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parallelism_is_positive_and_capped() {
        let p = default_parallelism();
        assert!(p >= 1);
        assert!(p <= 16);
    }
}
