//! A persistent work-stealing thread pool for `'static` jobs.
//!
//! Architecture: one global [`crate::deque::Injector`] receives jobs
//! submitted from outside the pool; each worker owns a LIFO
//! [`crate::deque::Worker`] deque and, when idle, first drains
//! its own deque, then batches from the injector, then steals from siblings
//! in a rotating order. Idle workers park on a condvar-backed gate so an
//! empty pool costs no CPU.
//!
//! Jobs submitted with [`WorkStealingPool::spawn`] are fire-and-forget;
//! [`WorkStealingPool::join_batch`] submits a batch and blocks until every
//! job in the batch has completed, which is the shape kernel launches use.

// gh-audit: allow-file(no-unwrap-in-lib) -- mutex poisoning means a worker panicked; propagating the panic is the only sound response, and spawn failure at boot is fatal
use crate::deque::{Injector, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    /// Number of jobs submitted but not yet finished; used by `join_batch`.
    pending: AtomicUsize,
    shutdown: AtomicBool,
    /// Sleep gate: workers park here when no work is visible.
    gate: Mutex<()>,
    gate_cv: Condvar,
    /// Completion gate: `join_batch` waiters park here.
    done_cv: Condvar,
}

impl Shared {
    fn wake_all(&self) {
        let _g = self.gate.lock().unwrap();
        self.gate_cv.notify_all();
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool signals shutdown and joins every worker; jobs still in
/// the queues are executed before the workers exit.
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkStealingPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkStealingPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl WorkStealingPool {
    /// Creates a pool with `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let locals: Vec<Worker<Job>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            gate: Mutex::new(()),
            gate_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = locals
            .into_iter()
            .enumerate()
            .map(|(idx, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gh-par-{idx}"))
                    .spawn(move || worker_loop(idx, local, shared))
                    .expect("failed to spawn gh-par worker")
            })
            .collect();
        Self {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of submitted-but-unfinished jobs (approximate; racy by nature).
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Submits a fire-and-forget job.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.shared.injector.push(Box::new(f));
        self.shared.wake_all();
    }

    /// Submits every job in `jobs` and blocks until **all jobs in the pool**
    /// (including previously spawned ones) have completed.
    pub fn join_batch<I>(&self, jobs: I)
    where
        I: IntoIterator<Item = Job>,
    {
        let mut n = 0usize;
        for job in jobs {
            n += 1;
            self.shared.injector.push(job);
        }
        self.shared.pending.fetch_add(n, Ordering::AcqRel);
        self.shared.wake_all();
        self.wait_idle();
    }

    /// Blocks until the pool has no pending jobs.
    pub fn wait_idle(&self) {
        let mut gate = self.shared.gate.lock().unwrap();
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            gate = self.shared.done_cv.wait(gate).unwrap();
        }
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn find_job(idx: usize, local: &Worker<Job>, shared: &Shared) -> Option<Job> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    // Batch-steal from the injector into the local deque to amortize
    // contention, then try siblings in rotating order.
    loop {
        let steal = shared.injector.steal_batch_and_pop(local);
        if let Steal::Success(job) = steal {
            return Some(job);
        }
        if !steal.is_retry() {
            break;
        }
    }
    let n = shared.stealers.len();
    for off in 1..n {
        let victim = (idx + off) % n;
        loop {
            match shared.stealers[victim].steal() {
                Steal::Success(job) => return Some(job),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
    }
    None
}

fn worker_loop(idx: usize, local: Worker<Job>, shared: Arc<Shared>) {
    loop {
        if let Some(job) = find_job(idx, &local, &shared) {
            job();
            if shared.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _g = shared.gate.lock().unwrap();
                shared.done_cv.notify_all();
            }
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Park until new work or shutdown. Re-check under the lock to avoid
        // a lost wakeup between the failed find_job and the wait.
        let gate = shared.gate.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.injector.is_empty() && shared.pending.load(Ordering::Acquire) == 0 {
            let _gate = shared.gate_cv.wait(gate).unwrap();
        } else {
            // Work may exist in sibling deques; spin again without waiting.
            drop(gate);
            std::thread::yield_now();
        }
    }
}

/// Returns the process-wide shared pool, created on first use with
/// [`crate::default_parallelism`] workers.
pub fn global() -> &'static WorkStealingPool {
    static POOL: OnceLock<WorkStealingPool> = OnceLock::new();
    POOL.get_or_init(|| WorkStealingPool::new(crate::default_parallelism()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_spawned_jobs() {
        let pool = WorkStealingPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn join_batch_waits_for_completion() {
        let pool = WorkStealingPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<Job> = (0..64)
            .map(|i| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    // Uneven job sizes to exercise stealing.
                    std::thread::sleep(std::time::Duration::from_micros(i % 7 * 50));
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        pool.join_batch(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn single_worker_pool_is_functional() {
        let pool = WorkStealingPool::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_joins_workers_after_draining() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkStealingPool::new(2);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = global() as *const _;
        let b = global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn nested_spawn_from_worker_completes() {
        let pool = Arc::new(WorkStealingPool::new(4));
        let counter = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let c = Arc::clone(&counter);
            let d = Arc::clone(&done);
            let p = Arc::clone(&pool);
            pool.spawn(move || {
                for _ in 0..4 {
                    let c2 = Arc::clone(&c);
                    p.spawn(move || {
                        c2.fetch_add(1, Ordering::Relaxed);
                    });
                }
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 16);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }
}
