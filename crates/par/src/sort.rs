//! Parallel sorting: chunk-sort + pairwise parallel merge.
//!
//! Used by the application layer to coalesce large access-offset lists
//! (BFS frontiers reach millions of entries per level). The algorithm is
//! the classic two-phase parallel merge sort: split into per-worker
//! chunks sorted with the standard library's pdqsort, then merge pairs
//! of runs in parallel until one run remains.

use crate::scope::par_for;
use crate::Grain;

/// Sorts `data` in parallel (unstable). Falls back to `sort_unstable`
/// below a practical threshold.
pub fn par_sort_unstable<T: Ord + Send + Sync + Copy>(data: &mut [T]) {
    const SEQUENTIAL_BELOW: usize = 16_384;
    if data.len() < SEQUENTIAL_BELOW {
        data.sort_unstable();
        return;
    }
    let workers = crate::default_parallelism();
    let chunk = data.len().div_ceil(workers).max(1);
    // Phase 1: sort chunks in parallel.
    crate::scope::par_chunks_mut(data, chunk, |_, c| c.sort_unstable());

    // Phase 2: merge neighbouring runs until a single run remains.
    let mut run = chunk;
    let mut src: Vec<T> = data.to_vec();
    let mut dst: Vec<T> = Vec::with_capacity(data.len());
    // SAFETY: every element of `dst` is written exactly once per pass
    // (each merge writes its own disjoint output range).
    #[allow(clippy::uninit_vec)]
    unsafe {
        dst.set_len(data.len());
    }
    while run < src.len() {
        let n = src.len();
        let pairs = n.div_ceil(2 * run);
        {
            let src_ref = &src;
            let dst_ptr = SendPtr(dst.as_mut_ptr());
            par_for(0..pairs, Grain::Fixed(1), |p| {
                let lo = p * 2 * run;
                let mid = (lo + run).min(n);
                let hi = (lo + 2 * run).min(n);
                // SAFETY: [lo, hi) output ranges are disjoint per pair.
                let out = unsafe { std::slice::from_raw_parts_mut(dst_ptr.get().add(lo), hi - lo) };
                merge(&src_ref[lo..mid], &src_ref[mid..hi], out);
            });
        }
        std::mem::swap(&mut src, &mut dst);
        run *= 2;
    }
    data.copy_from_slice(&src);
}

struct SendPtr<T>(*mut T);
// SAFETY: workers write only their own disjoint [lo, hi) output range of
// the destination buffer; the buffer outlives the parallel region.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    // Accessor so closures capture `&SendPtr` (Sync) rather than the raw
    // pointer field (2021 disjoint capture would grab `*mut T` itself).
    fn get(&self) -> *mut T {
        self.0
    }
}

fn merge<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = j >= b.len() || (i < a.len() && a[i] <= b[j]);
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrambled(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13)
            .collect()
    }

    #[test]
    fn sorts_large_input() {
        let mut v = scrambled(200_000);
        let mut expected = v.clone();
        expected.sort_unstable();
        par_sort_unstable(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn sorts_small_input_via_fallback() {
        let mut v = vec![5u64, 1, 4, 2, 3];
        par_sort_unstable(&mut v);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let mut e: Vec<u64> = vec![];
        par_sort_unstable(&mut e);
        assert!(e.is_empty());
        let mut s = vec![9u64];
        par_sort_unstable(&mut s);
        assert_eq!(s, vec![9]);
    }

    #[test]
    fn sorts_with_duplicates() {
        let mut v: Vec<u64> = (0..100_000).map(|i| i % 7).collect();
        par_sort_unstable(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v.iter().filter(|&&x| x == 3).count(), 100_000 / 7 + 1);
    }

    #[test]
    fn already_sorted_is_preserved() {
        let mut v: Vec<u64> = (0..50_000).collect();
        let expected = v.clone();
        par_sort_unstable(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn merge_is_correct() {
        let mut out = vec![0u64; 7];
        merge(&[1, 4, 6], &[2, 3, 5, 7], &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn sorts_tuples_lexicographically() {
        let mut v: Vec<(u64, u64)> = (0..70_000u64)
            .map(|i| (i.wrapping_mul(2654435761) % 997, i))
            .collect();
        par_sort_unstable(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
