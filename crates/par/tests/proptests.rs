//! Property tests: parallel primitives must agree with their sequential
//! counterparts for any input shape.

use gh_par::{par_chunks_mut, par_for, par_map_reduce, Grain};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

proptest! {
    #[test]
    fn par_for_matches_sequential_sum(lo in 0usize..1000, len in 0usize..4000, grain in 1usize..300) {
        let seq: u64 = (lo..lo + len).map(|i| i as u64 * 3 + 1).sum();
        let acc = AtomicU64::new(0);
        par_for(lo..lo + len, Grain::Fixed(grain), |i| {
            acc.fetch_add(i as u64 * 3 + 1, Ordering::Relaxed);
        });
        prop_assert_eq!(acc.load(Ordering::Relaxed), seq);
    }

    #[test]
    fn par_chunks_mut_applies_exactly_once(len in 0usize..5000, chunk in 1usize..512) {
        let mut data = vec![0u32; len];
        par_chunks_mut(&mut data, chunk, |_, c| {
            for x in c.iter_mut() { *x += 1; }
        });
        prop_assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn par_map_reduce_matches_fold(len in 0usize..3000) {
        let par = par_map_reduce(0..len, 0u64, |i| (i as u64).wrapping_mul(2654435761), |a, b| a.wrapping_add(b));
        let seq = (0..len).fold(0u64, |a, i| a.wrapping_add((i as u64).wrapping_mul(2654435761)));
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_chunks_mut_chunk_indices_cover_data(len in 1usize..3000, chunk in 1usize..256) {
        let mut data = vec![u32::MAX; len];
        par_chunks_mut(&mut data, chunk, |idx, c| {
            for x in c.iter_mut() { *x = idx as u32; }
        });
        for (i, &x) in data.iter().enumerate() {
            prop_assert_eq!(x as usize, i / chunk);
        }
    }
}

proptest! {
    /// Parallel sort must agree with the standard library's for any
    /// content, including duplicates and presorted runs.
    #[test]
    fn par_sort_matches_std(mut v in proptest::collection::vec(0u64..1000, 0..60_000)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        gh_par::par_sort_unstable(&mut v);
        prop_assert_eq!(v, expected);
    }
}
