//! Property tests for the quantum simulator: unitarity and exactness
//! must hold for arbitrary circuits.

use gh_qsim::{fusion, Gate2, QvCircuit, StateVector, C32};
use proptest::prelude::*;

fn close(a: C32, b: C32) -> bool {
    (a.re - b.re).abs() < 2e-4 && (a.im - b.im).abs() < 2e-4
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Norm is preserved by any random gate sequence.
    #[test]
    fn norm_preserved(seeds in proptest::collection::vec(0u64..1_000_000, 1..30),
                      n in 2u32..9) {
        let mut s = StateVector::zero_state(n);
        for seed in seeds {
            let q0 = (seed % n as u64) as u32;
            let q1 = ((seed / 7 + 1) % n as u64) as u32;
            if q0 == q1 {
                continue;
            }
            s.apply_gate2(&Gate2::random_su4(seed), q0, q1);
        }
        let norm = s.norm_sqr();
        prop_assert!((norm - 1.0).abs() < 1e-3, "norm {norm}");
    }

    /// Applying a gate then its inverse (conjugate transpose) restores
    /// the state.
    #[test]
    fn gate_inverse_roundtrip(seed in 0u64..100_000, n in 2u32..7) {
        let g = Gate2::random_su4(seed);
        let mut inv = Gate2::identity();
        for r in 0..4 {
            for c in 0..4 {
                inv.m[r][c] = g.m[c][r].conj();
            }
        }
        let q0 = (seed % n as u64) as u32;
        let q1 = ((seed + 1) % n as u64) as u32;
        prop_assume!(q0 != q1);
        let mut s = StateVector::zero_state(n);
        s.apply_gate2(&Gate2::random_su4(seed + 7), 0, 1); // scramble
        let before: Vec<C32> = s.amps().to_vec();
        s.apply_gate2(&g, q0, q1);
        s.apply_gate2(&inv, q0, q1);
        for (i, &b) in before.iter().enumerate() {
            prop_assert!(close(s.amp(i), b), "index {i}");
        }
    }

    /// Fusion never changes circuit semantics, for any interleaving.
    #[test]
    fn fusion_is_semantics_preserving(n in 2u32..6, seed in 0u64..10_000,
                                      repeats in 0usize..4) {
        let mut c = QvCircuit::generate(n, seed);
        // Inject same-pair repeats to exercise the fusion path.
        let mut gates = Vec::new();
        for g in c.gates.iter().take(6) {
            gates.push(g.clone());
            for r in 0..repeats {
                gates.push(gh_qsim::qv::QvGate {
                    gate: Gate2::random_su4(seed + 100 + r as u64),
                    q0: if r % 2 == 0 { g.q0 } else { g.q1 },
                    q1: if r % 2 == 0 { g.q1 } else { g.q0 },
                });
            }
        }
        c.gates = gates;
        let fused = fusion::fuse(&c);
        prop_assert!(fused.len() <= c.len());
        let mut a = StateVector::zero_state(n);
        let mut b = StateVector::zero_state(n);
        for g in &c.gates {
            a.apply_gate2(&g.gate, g.q0, g.q1);
        }
        for g in &fused.gates {
            b.apply_gate2(&g.gate, g.q0, g.q1);
        }
        for i in 0..a.amps().len() {
            prop_assert!(close(a.amp(i), b.amp(i)), "amp {i}");
        }
    }

    /// The probability distribution over basis states sums to one.
    #[test]
    fn probabilities_sum_to_one(seed in 0u64..10_000, n in 2u32..8) {
        let c = QvCircuit::generate(n, seed);
        let mut s = StateVector::zero_state(n);
        for g in c.gates.iter().take(12) {
            s.apply_gate2(&g.gate, g.q0, g.q1);
        }
        let total: f64 = (0..1usize << n).map(|i| s.probability(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-3, "total {total}");
    }
}
