//! Gate fusion: Qiskit-Aer's memory-bandwidth optimization.
//!
//! A statevector simulator is memory-bound — every gate sweeps the whole
//! vector. Aer therefore *fuses* consecutive gates that act on the same
//! qubit pair into a single 4×4 unitary (matrix product), halving (or
//! better) the number of sweeps. Because the paper's Quantum Volume
//! workload is bandwidth-limited on every memory path (HBM, C2C, chunked
//! pipeline), fusion's benefit multiplies whatever the memory system
//! delivers — which makes it a useful ablation axis here.

use crate::complex::C32;
use crate::gates::Gate2;
use crate::qv::{QvCircuit, QvGate};

/// Multiplies two gates: `second · first` (apply `first`, then
/// `second`).
pub fn compose(first: &Gate2, second: &Gate2) -> Gate2 {
    let mut m = [[C32::ZERO; 4]; 4];
    for (r, row) in m.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            let mut acc = C32::ZERO;
            for k in 0..4 {
                acc += second.m[r][k] * first.m[k][c];
            }
            *cell = acc;
        }
    }
    Gate2 { m }
}

/// Swaps a gate's operand order: returns the unitary equivalent to
/// applying `g` with `(q0, q1)` exchanged (permutes basis |01⟩ ↔ |10⟩ on
/// both sides).
pub fn swap_operands(g: &Gate2) -> Gate2 {
    let p = [0usize, 2, 1, 3];
    let mut m = [[C32::ZERO; 4]; 4];
    for r in 0..4 {
        for c in 0..4 {
            m[r][c] = g.m[p[r]][p[c]];
        }
    }
    Gate2 { m }
}

/// Fuses consecutive circuit gates acting on the same (unordered) qubit
/// pair. Returns the optimized circuit; semantics are identical.
pub fn fuse(circuit: &QvCircuit) -> QvCircuit {
    let mut out: Vec<QvGate> = Vec::with_capacity(circuit.gates.len());
    for g in &circuit.gates {
        if let Some(last) = out.last_mut() {
            if (last.q0, last.q1) == (g.q0, g.q1) {
                last.gate = compose(&last.gate, &g.gate);
                continue;
            }
            if (last.q0, last.q1) == (g.q1, g.q0) {
                // Same pair, swapped operand order: align then fuse.
                last.gate = compose(&last.gate, &swap_operands(&g.gate));
                continue;
            }
        }
        out.push(g.clone());
    }
    QvCircuit {
        n_qubits: circuit.n_qubits,
        gates: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    fn close(a: C32, b: C32) -> bool {
        (a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4
    }

    fn states_match(a: &StateVector, b: &StateVector) -> bool {
        (0..a.amps().len()).all(|i| close(a.amp(i), b.amp(i)))
    }

    #[test]
    fn compose_identity_is_noop() {
        let g = Gate2::random_su4(5);
        let id = Gate2::identity();
        assert_eq!(compose(&g, &id), g);
        assert_eq!(compose(&id, &g), g);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = Gate2::random_su4(1);
        let b = Gate2::random_su4(2);
        let fused = compose(&a, &b);
        let mut s1 = StateVector::zero_state(4);
        s1.apply_gate2(&Gate2::random_su4(9), 1, 3); // scramble
        let mut s2 = s1.clone();
        s1.apply_gate2(&a, 0, 2);
        s1.apply_gate2(&b, 0, 2);
        s2.apply_gate2(&fused, 0, 2);
        assert!(states_match(&s1, &s2));
    }

    #[test]
    fn swap_operands_matches_swapped_application() {
        let g = Gate2::random_su4(7);
        let sw = swap_operands(&g);
        let mut s1 = StateVector::zero_state(3);
        s1.apply_gate2(&Gate2::random_su4(11), 0, 1);
        let mut s2 = s1.clone();
        s1.apply_gate2(&g, 0, 2);
        s2.apply_gate2(&sw, 2, 0);
        assert!(states_match(&s1, &s2));
    }

    #[test]
    fn fused_circuit_preserves_semantics() {
        // Build a circuit with deliberate same-pair repeats.
        let mut c = QvCircuit::generate(5, 3);
        let extra: Vec<QvGate> = c
            .gates
            .iter()
            .take(4)
            .map(|g| QvGate {
                gate: Gate2::random_su4(999),
                q0: g.q1,
                q1: g.q0,
            })
            .collect();
        // Interleave: g0, g0', g1, g1', ...
        let mut interleaved = Vec::new();
        for (i, g) in c.gates.iter().take(4).enumerate() {
            interleaved.push(g.clone());
            interleaved.push(extra[i].clone());
        }
        c.gates = interleaved;

        let fused = fuse(&c);
        assert!(fused.len() < c.len(), "repeats must fuse");
        let mut s1 = StateVector::zero_state(5);
        let mut s2 = StateVector::zero_state(5);
        for g in &c.gates {
            s1.apply_gate2(&g.gate, g.q0, g.q1);
        }
        for g in &fused.gates {
            s2.apply_gate2(&g.gate, g.q0, g.q1);
        }
        assert!(states_match(&s1, &s2));
    }

    #[test]
    fn fusion_keeps_unitarity() {
        let a = Gate2::random_su4(21);
        let b = Gate2::random_su4(22);
        assert!(compose(&a, &b).unitarity_error() < 1e-4);
        assert!(swap_operands(&a).unitarity_error() < 1e-4);
    }

    #[test]
    fn qv_circuits_rarely_fuse() {
        // QV layers permute qubits, so adjacent same-pair repeats are
        // rare — fusion should be nearly a no-op on them.
        let c = QvCircuit::generate(8, 1);
        let f = fuse(&c);
        assert!(f.len() as f64 > c.len() as f64 * 0.8);
    }
}
