//! Two-qubit gates: Haar-random SU(4) construction and unitarity checks.

use crate::complex::C32;

/// A 4×4 unitary acting on an ordered qubit pair. Row-major.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gate2 {
    /// The matrix, `m[row][col]`.
    pub m: [[C32; 4]; 4],
}

fn rng_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn rng_gauss(state: &mut u64) -> f32 {
    // Box–Muller on SplitMix uniforms.
    let u1 = ((rng_next(state) >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
    let u2 = (rng_next(state) >> 11) as f64 / (1u64 << 53) as f64;
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

impl Gate2 {
    /// The identity gate.
    pub fn identity() -> Gate2 {
        let mut m = [[C32::ZERO; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = C32::ONE;
        }
        Gate2 { m }
    }

    /// CNOT with the first qubit as control (for tests with a known
    /// truth table).
    pub fn cnot() -> Gate2 {
        // Basis order |q1 q0⟩ = |00⟩,|01⟩,|10⟩,|11⟩; control = second
        // index qubit (row-major permutation swapping |10⟩ ↔ |11⟩).
        let mut m = [[C32::ZERO; 4]; 4];
        m[0][0] = C32::ONE;
        m[1][1] = C32::ONE;
        m[2][3] = C32::ONE;
        m[3][2] = C32::ONE;
        Gate2 { m }
    }

    /// Controlled-phase: adds phase e^{iθ} to |11⟩ (symmetric in its
    /// operands; the QFT's two-qubit primitive).
    pub fn controlled_phase(theta: f32) -> Gate2 {
        let mut g = Gate2::identity();
        g.m[3][3] = crate::complex::C32::new(theta.cos(), theta.sin());
        g
    }

    /// A Haar-random SU(4) unitary: Gaussian complex matrix → Gram-Schmidt
    /// (QR with phase correction). Deterministic in `seed`.
    #[allow(clippy::needless_range_loop)] // Gram-Schmidt indexes two columns of `cols` at once
    pub fn random_su4(seed: u64) -> Gate2 {
        let mut st = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut cols: Vec<[C32; 4]> = (0..4)
            .map(|_| {
                [
                    C32::new(rng_gauss(&mut st), rng_gauss(&mut st)),
                    C32::new(rng_gauss(&mut st), rng_gauss(&mut st)),
                    C32::new(rng_gauss(&mut st), rng_gauss(&mut st)),
                    C32::new(rng_gauss(&mut st), rng_gauss(&mut st)),
                ]
            })
            .collect();
        // Modified Gram-Schmidt.
        for i in 0..4 {
            for j in 0..i {
                let proj: C32 = (0..4)
                    .map(|k| cols[j][k].conj() * cols[i][k])
                    .fold(C32::ZERO, |a, b| a + b);
                for k in 0..4 {
                    let d = proj * cols[j][k];
                    cols[i][k] = cols[i][k] - d;
                }
            }
            let norm: f32 = cols[i].iter().map(|z| z.norm_sqr()).sum::<f32>().sqrt();
            assert!(norm > 1e-6, "degenerate random matrix (seed {seed})");
            for k in 0..4 {
                cols[i][k] = cols[i][k].scale(1.0 / norm);
            }
        }
        let mut m = [[C32::ZERO; 4]; 4];
        for (c, col) in cols.iter().enumerate() {
            for r in 0..4 {
                m[r][c] = col[r];
            }
        }
        Gate2 { m }
    }

    /// Max deviation of `U† U` from the identity.
    pub fn unitarity_error(&self) -> f32 {
        let mut worst = 0.0f32;
        for i in 0..4 {
            for j in 0..4 {
                let mut dot = C32::ZERO;
                for k in 0..4 {
                    dot += self.m[k][i].conj() * self.m[k][j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((dot.re - expect).abs()).max(dot.im.abs());
            }
        }
        worst
    }

    /// Applies the gate to a 4-amplitude group (in the gate's basis
    /// order).
    #[inline]
    pub fn apply(&self, v: [C32; 4]) -> [C32; 4] {
        let mut out = [C32::ZERO; 4];
        for (r, row) in self.m.iter().enumerate() {
            let mut acc = C32::ZERO;
            for (c, g) in row.iter().enumerate() {
                acc += *g * v[c];
            }
            out[r] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_preserves_vectors() {
        let g = Gate2::identity();
        let v = [
            C32::new(0.1, 0.2),
            C32::new(0.3, -0.4),
            C32::new(-0.5, 0.6),
            C32::new(0.7, 0.0),
        ];
        assert_eq!(g.apply(v), v);
        assert!(g.unitarity_error() < 1e-7);
    }

    #[test]
    fn cnot_truth_table() {
        let g = Gate2::cnot();
        // |10⟩ → |11⟩
        let v = [C32::ZERO, C32::ZERO, C32::ONE, C32::ZERO];
        let out = g.apply(v);
        assert_eq!(out[3], C32::ONE);
        assert_eq!(out[2], C32::ZERO);
        assert!(g.unitarity_error() < 1e-7);
    }

    #[test]
    fn random_su4_is_unitary() {
        for seed in 0..50 {
            let g = Gate2::random_su4(seed);
            assert!(
                g.unitarity_error() < 1e-4,
                "seed {seed}: error {}",
                g.unitarity_error()
            );
        }
    }

    #[test]
    fn random_su4_is_deterministic_and_seed_sensitive() {
        assert_eq!(Gate2::random_su4(7), Gate2::random_su4(7));
        assert_ne!(Gate2::random_su4(7), Gate2::random_su4(8));
    }

    #[test]
    fn gate_application_preserves_norm() {
        let g = Gate2::random_su4(42);
        let v = [
            C32::new(0.5, 0.0),
            C32::new(0.0, 0.5),
            C32::new(0.5, 0.0),
            C32::new(0.0, 0.5),
        ];
        let before: f32 = v.iter().map(|z| z.norm_sqr()).sum();
        let after: f32 = g.apply(v).iter().map(|z| z.norm_sqr()).sum();
        assert!((before - after).abs() < 1e-5);
    }
}
