//! Named benchmark circuits beyond Quantum Volume: GHZ state
//! preparation and the Quantum Fourier Transform. Both are standard
//! memory-bandwidth-bound statevector workloads and serve as additional
//! verification targets (their outputs have closed forms).

use crate::gates::Gate2;
use crate::gates1::Gate1;
use crate::state::StateVector;

/// Prepares the n-qubit GHZ state (|0…0⟩ + |1…1⟩)/√2 in place.
pub fn ghz(state: &mut StateVector) {
    let n = state.n_qubits();
    state.apply_gate1(&Gate1::h(), 0);
    for q in 1..n {
        // CNOT with control q-1, target q. Gate2::cnot flips the *first*
        // operand when the second is |1⟩.
        state.apply_gate2(&Gate2::cnot(), q, q - 1);
    }
}

/// Applies the Quantum Fourier Transform (without the final qubit
/// reversal, as is conventional for benchmark use).
pub fn qft(state: &mut StateVector) {
    let n = state.n_qubits();
    for target in (0..n).rev() {
        state.apply_gate1(&Gate1::h(), target);
        for (k, control) in (0..target).rev().enumerate() {
            let theta = std::f32::consts::PI / (1 << (k + 1)) as f32;
            state.apply_gate2(&Gate2::controlled_phase(theta), control, target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_has_two_equal_peaks() {
        for n in [2u32, 3, 6, 10] {
            let mut s = StateVector::zero_state(n);
            ghz(&mut s);
            let all_ones = (1usize << n) - 1;
            assert!((s.probability(0) - 0.5).abs() < 1e-5, "n={n}");
            assert!((s.probability(all_ones) - 0.5).abs() < 1e-5, "n={n}");
            // Everything else is zero.
            let rest: f64 = (1..all_ones).map(|i| s.probability(i)).sum();
            assert!(rest < 1e-5, "n={n}: leakage {rest}");
        }
    }

    #[test]
    fn qft_of_zero_state_is_uniform() {
        let n = 6;
        let mut s = StateVector::zero_state(n);
        qft(&mut s);
        let expect = 1.0 / (1u64 << n) as f64;
        for i in 0..(1usize << n) {
            assert!(
                (s.probability(i) - expect).abs() < 1e-5,
                "i={i}: {}",
                s.probability(i)
            );
        }
    }

    #[test]
    fn qft_preserves_norm_on_random_input() {
        let mut s = StateVector::zero_state(8);
        s.apply_gate2(&Gate2::random_su4(5), 1, 6);
        s.apply_gate2(&Gate2::random_su4(9), 0, 3);
        qft(&mut s);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn ghz_sampling_matches_distribution() {
        let mut s = StateVector::zero_state(5);
        ghz(&mut s);
        let shots = s.sample(42, 4000);
        let ones = shots.iter().filter(|&&x| x == 31).count();
        let zeros = shots.iter().filter(|&&x| x == 0).count();
        assert_eq!(ones + zeros, 4000, "only the two GHZ outcomes occur");
        assert!((1700..=2300).contains(&ones), "balance: {ones}");
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let mut s = StateVector::zero_state(4);
        ghz(&mut s);
        assert_eq!(s.sample(7, 100), s.sample(7, 100));
        assert_ne!(s.sample(7, 100), s.sample(8, 100));
    }
}
