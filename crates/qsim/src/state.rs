//! The statevector and exact gate application.

use crate::complex::C32;
use crate::gates::Gate2;
use gh_par::par_map_reduce;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An `n`-qubit statevector of `2^n` single-precision amplitudes.
#[derive(Debug, Clone)]
pub struct StateVector {
    n: u32,
    amps: Vec<C32>,
}

impl StateVector {
    /// |0…0⟩ on `n` qubits.
    pub fn zero_state(n: u32) -> StateVector {
        assert!(n >= 2, "need at least 2 qubits for 2-qubit gates");
        assert!(n <= 30, "statevector would not fit in host memory");
        let mut amps = vec![C32::ZERO; 1usize << n];
        amps[0] = C32::ONE;
        StateVector { n, amps }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> u32 {
        self.n
    }

    /// Amplitude of a basis state.
    pub fn amp(&self, basis: usize) -> C32 {
        self.amps[basis]
    }

    /// The amplitudes slice.
    pub fn amps(&self) -> &[C32] {
        &self.amps
    }

    /// Mutable amplitudes (gate kernels).
    pub(crate) fn amps_mut(&mut self) -> &mut Vec<C32> {
        &mut self.amps
    }

    /// Draws `shots` measurement outcomes (basis-state indices) from the
    /// state's distribution, deterministically in `seed`.
    pub fn sample(&self, seed: u64, shots: usize) -> Vec<usize> {
        // Prefix sums + binary search per shot.
        let mut cdf = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0f64;
        for a in &self.amps {
            acc += a.norm_sqr() as f64;
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        let mut st = seed | 1;
        (0..shots)
            .map(|_| {
                st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = st;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64 * total;
                cdf.partition_point(|&c| c < u).min(self.amps.len() - 1)
            })
            .collect()
    }

    /// Σ|aᵢ|² — must stay 1 under unitary evolution.
    pub fn norm_sqr(&self) -> f64 {
        par_map_reduce(
            0..self.amps.len(),
            0.0f64,
            |i| self.amps[i].norm_sqr() as f64,
            |a, b| a + b,
        )
    }

    /// Applies a two-qubit gate to qubits `(q0, q1)`, `q0 != q1`, exactly
    /// and in parallel. Basis order inside a group is |q1 q0⟩.
    pub fn apply_gate2(&mut self, g: &Gate2, q0: u32, q1: u32) {
        assert!(q0 < self.n && q1 < self.n && q0 != q1, "bad qubit pair");
        let (lo, hi) = (q0.min(q1), q0.max(q1));
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let groups = self.amps.len() / 4;
        let lo_mask = (1usize << lo) - 1;
        let mid_mask = ((1usize << (hi - 1)) - 1) & !lo_mask;

        // Each group owns 4 distinct indices; groups are pairwise
        // disjoint, so scattered parallel mutation is safe.
        struct SendPtr(*mut C32);
        // SAFETY: each group owns 4 unique indices and groups are pairwise
        // disjoint, so claimed ranges never alias; bounded by the scope.
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        let base = SendPtr(self.amps.as_mut_ptr());
        let workers = gh_par::default_parallelism().min(groups.max(1));
        let chunk = (groups / (workers * 4).max(1)).max(1024).min(groups.max(1));
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let base = &base;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= groups {
                            return;
                        }
                        let end = (start + chunk).min(groups);
                        for gidx in start..end {
                            // Expand gidx into a full index with zeros at
                            // bit positions lo and hi.
                            let low = gidx & lo_mask;
                            let mid = (gidx & mid_mask) << 1;
                            let high = (gidx & !(lo_mask | mid_mask)) << 2;
                            let i00 = high | mid | low;
                            let (i01, i10, i11) = (i00 | b0, i00 | b1, i00 | b0 | b1);
                            // SAFETY: i00..i11 are unique to this group.
                            unsafe {
                                let p = base.0;
                                let v = [*p.add(i00), *p.add(i01), *p.add(i10), *p.add(i11)];
                                let out = g.apply(v);
                                *p.add(i00) = out[0];
                                *p.add(i01) = out[1];
                                *p.add(i10) = out[2];
                                *p.add(i11) = out[3];
                            }
                        }
                    }
                });
            }
        });
    }

    /// Measurement probability of `basis`.
    pub fn probability(&self, basis: usize) -> f64 {
        self.amps[basis].norm_sqr() as f64
    }

    /// A scalar fingerprint of the state for cross-version checks.
    pub fn checksum(&self) -> f64 {
        par_map_reduce(
            0..self.amps.len(),
            0.0f64,
            |i| {
                let a = self.amps[i];
                (a.re as f64) * ((i % 97) as f64 + 1.0) + (a.im as f64) * ((i % 89) as f64 + 1.0)
            },
            |a, b| a + b,
        )
    }
}

/// Dense reference application (exponential; tests only): builds the full
/// `2^n × 2^n` operator for the gate and multiplies.
pub fn apply_gate2_dense(state: &[C32], g: &Gate2, q0: u32, q1: u32, n: u32) -> Vec<C32> {
    let dim = 1usize << n;
    let (b0, b1) = (1usize << q0, 1usize << q1);
    let mut out = vec![C32::ZERO; dim];
    for (row, o) in out.iter_mut().enumerate() {
        let r_sub = (((row & b1) != 0) as usize) << 1 | ((row & b0) != 0) as usize;
        let rest = row & !(b0 | b1);
        for c_sub in 0..4 {
            let col =
                rest | if c_sub & 1 != 0 { b0 } else { 0 } | if c_sub & 2 != 0 { b1 } else { 0 };
            *o += g.m[r_sub][c_sub] * state[col];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C32, b: C32) -> bool {
        (a.re - b.re).abs() < 1e-5 && (a.im - b.im).abs() < 1e-5
    }

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero_state(5);
        assert_eq!(s.amp(0), C32::ONE);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cnot_on_zero_state_is_identity() {
        let mut s = StateVector::zero_state(3);
        s.apply_gate2(&Gate2::cnot(), 0, 1);
        assert!(close(s.amp(0), C32::ONE));
    }

    #[test]
    fn matches_dense_reference_on_random_gates() {
        for n in [2u32, 3, 4, 5] {
            for seed in 0..5u64 {
                let g = Gate2::random_su4(seed);
                let q0 = (seed % n as u64) as u32;
                let q1 = ((seed + 1) % n as u64) as u32;
                if q0 == q1 {
                    continue;
                }
                let mut s = StateVector::zero_state(n);
                // Scramble with a first gate so the state is non-trivial.
                let pre = Gate2::random_su4(seed + 100);
                s.apply_gate2(&pre, 0, 1);
                let dense_in = s.amps().to_vec();
                let expected = apply_gate2_dense(&dense_in, &g, q0, q1, n);
                s.apply_gate2(&g, q0, q1);
                for (i, want) in expected.iter().enumerate() {
                    assert!(
                        close(s.amp(i), *want),
                        "n={n} seed={seed} q=({q0},{q1}) i={i}: {:?} vs {:?}",
                        s.amp(i),
                        want
                    );
                }
            }
        }
    }

    #[test]
    fn norm_preserved_under_random_circuit() {
        let mut s = StateVector::zero_state(8);
        for seed in 0..30u64 {
            let g = Gate2::random_su4(seed);
            let q0 = (seed % 8) as u32;
            let q1 = ((seed * 5 + 3) % 8) as u32;
            if q0 != q1 {
                s.apply_gate2(&g, q0, q1);
            }
        }
        assert!((s.norm_sqr() - 1.0).abs() < 1e-3, "norm {}", s.norm_sqr());
    }

    #[test]
    fn qubit_order_matters_for_asymmetric_gates() {
        // CNOT(control=q1, target=q0): flipping operand order changes the
        // result on |01⟩ vs |10⟩ states.
        let pre = Gate2::random_su4(9);
        let mut a = StateVector::zero_state(2);
        a.apply_gate2(&pre, 0, 1);
        let mut b = a.clone();
        a.apply_gate2(&Gate2::cnot(), 0, 1);
        b.apply_gate2(&Gate2::cnot(), 1, 0);
        let differs = (0..4).any(|i| !close(a.amp(i), b.amp(i)));
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "bad qubit pair")]
    fn same_qubit_pair_panics() {
        let mut s = StateVector::zero_state(3);
        s.apply_gate2(&Gate2::identity(), 1, 1);
    }

    #[test]
    fn checksum_distinguishes_states() {
        let mut a = StateVector::zero_state(6);
        let b = StateVector::zero_state(6);
        a.apply_gate2(&Gate2::random_su4(3), 2, 4);
        assert_ne!(a.checksum(), b.checksum());
    }
}
