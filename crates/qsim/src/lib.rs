//! `gh-qsim` — a statevector quantum-circuit simulator in the style of
//! Qiskit-Aer's GPU backend, running on the simulated Grace Hopper.
//!
//! The paper's sixth application (§3.1): Quantum Volume circuits of up
//! to 34 qubits, where the statevector (8 · 2^N bytes, single-precision
//! complex) is the dominant allocation — 33 qubits fit in GPU memory, 34
//! exceed it (natural oversubscription).
//!
//! Scaling: capacities are scaled 1:1024, so *simulated* qubit counts
//! map to the paper's as `paper_qubits = sim_qubits + 10` (the
//! statevector also shrinks by 2¹⁰). Harnesses report paper units.
//!
//! Three execution modes mirror the paper:
//!
//! * **Explicit** — the original Qiskit-Aer flow: `cudaMalloc` the
//!   statevector if it fits; otherwise the chunked host↔device exchange
//!   pipeline ("sophisticated data movement pipeline", §4);
//! * **System** / **Managed** — one unified statevector allocation,
//!   initialized by the GPU (GPU-side first touch, §5.1.2), with the
//!   maximum memory bound raised to system memory so no chunking happens.
//!
//! The quantum mechanics is real: gates are Haar-random SU(4) unitaries,
//! the statevector evolves exactly, and norm conservation is verified in
//! tests against a dense reference. For large sweeps the amplitude
//! arithmetic can be skipped (`compute_amplitudes = false`) without
//! changing the memory behaviour, since kernel timing comes from the
//! declared traffic and work either way.

//! ```
//! use gh_qsim::{StateVector, Gate2};
//!
//! let mut state = StateVector::zero_state(8);
//! state.apply_gate2(&Gate2::random_su4(1), 2, 5);
//! assert!((state.norm_sqr() - 1.0).abs() < 1e-5);
//!
//! // GHZ preparation and sampling:
//! let mut ghz = StateVector::zero_state(4);
//! gh_qsim::circuits::ghz(&mut ghz);
//! let shots = ghz.sample(7, 100);
//! assert!(shots.iter().all(|&s| s == 0 || s == 0b1111));
//! ```

#![deny(missing_debug_implementations)]

pub mod circuits;
pub mod complex;
pub mod fusion;
pub mod gates;
pub mod gates1;
pub mod qv;
pub mod sim;
pub mod state;

pub use complex::C32;
pub use fusion::fuse;
pub use gates::Gate2;
pub use gates1::Gate1;
pub use qv::QvCircuit;
pub use sim::{run_qv, QsimParams};
pub use state::StateVector;

/// Bytes per amplitude (single-precision complex, as the paper's
/// `8 · 2^N` formula implies).
pub const AMP_BYTES: u64 = 8;

/// Statevector size in bytes for `n` qubits.
pub fn statevector_bytes(n_qubits: u32) -> u64 {
    AMP_BYTES << n_qubits
}

/// Converts a simulated qubit count to the paper's scale (× 1024
/// capacity ⇒ +10 qubits).
pub fn paper_qubits(sim_qubits: u32) -> u32 {
    sim_qubits + 10
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statevector_sizes() {
        assert_eq!(statevector_bytes(0), 8);
        assert_eq!(statevector_bytes(20), 8 << 20); // 8 MiB (paper 30q: 8 GB)
        assert_eq!(statevector_bytes(24), 128 << 20); // 128 MiB > 96 MiB GPU
    }

    #[test]
    fn qubit_mapping() {
        assert_eq!(paper_qubits(23), 33);
        assert_eq!(paper_qubits(24), 34);
    }
}
