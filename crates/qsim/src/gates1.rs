//! Single-qubit gates and their exact application.

use crate::complex::C32;
use crate::state::StateVector;
use gh_par::default_parallelism;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A 2×2 unitary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gate1 {
    /// Matrix, `m[row][col]`.
    pub m: [[C32; 2]; 2],
}

const FRAC_1_SQRT_2: f32 = std::f32::consts::FRAC_1_SQRT_2;

impl Gate1 {
    /// Identity.
    pub fn identity() -> Gate1 {
        Gate1 {
            m: [[C32::ONE, C32::ZERO], [C32::ZERO, C32::ONE]],
        }
    }

    /// Hadamard.
    pub fn h() -> Gate1 {
        let s = C32::new(FRAC_1_SQRT_2, 0.0);
        Gate1 {
            m: [[s, s], [s, s.scale(-1.0)]],
        }
    }

    /// Pauli-X (NOT).
    pub fn x() -> Gate1 {
        Gate1 {
            m: [[C32::ZERO, C32::ONE], [C32::ONE, C32::ZERO]],
        }
    }

    /// Pauli-Z.
    pub fn z() -> Gate1 {
        Gate1 {
            m: [[C32::ONE, C32::ZERO], [C32::ZERO, C32::new(-1.0, 0.0)]],
        }
    }

    /// Z-rotation by `theta` radians.
    pub fn rz(theta: f32) -> Gate1 {
        let half = theta / 2.0;
        Gate1 {
            m: [
                [C32::new(half.cos(), -half.sin()), C32::ZERO],
                [C32::ZERO, C32::new(half.cos(), half.sin())],
            ],
        }
    }

    /// Controlled-phase angle gate's diagonal phase factor e^{iθ}
    /// (used by QFT); as a plain 1q phase gate.
    pub fn phase(theta: f32) -> Gate1 {
        Gate1 {
            m: [
                [C32::ONE, C32::ZERO],
                [C32::ZERO, C32::new(theta.cos(), theta.sin())],
            ],
        }
    }

    /// Max deviation of `U†U` from identity.
    pub fn unitarity_error(&self) -> f32 {
        let mut worst = 0.0f32;
        for i in 0..2 {
            for j in 0..2 {
                let mut dot = C32::ZERO;
                for k in 0..2 {
                    dot += self.m[k][i].conj() * self.m[k][j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((dot.re - expect).abs()).max(dot.im.abs());
            }
        }
        worst
    }
}

impl StateVector {
    /// Applies a single-qubit gate to qubit `q`, exactly and in parallel.
    pub fn apply_gate1(&mut self, g: &Gate1, q: u32) {
        assert!(q < self.n_qubits(), "qubit out of range");
        let bit = 1usize << q;
        let n = self.amps_mut().len();
        let pairs = n / 2;
        let low_mask = bit - 1;

        struct SendPtr(*mut C32);
        // SAFETY: each worker touches only the disjoint (i0, i1) pairs of
        // the ranges it claims via the cursor, within the thread scope.
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        impl SendPtr {
            fn get(&self) -> *mut C32 {
                self.0
            }
        }
        let base = SendPtr(self.amps_mut().as_mut_ptr());
        let workers = default_parallelism().min(pairs.max(1));
        let chunk = (pairs / (workers * 4).max(1)).max(1024).min(pairs.max(1));
        let cursor = AtomicUsize::new(0);
        let m = g.m;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= pairs {
                        return;
                    }
                    let end = (start + chunk).min(pairs);
                    for p in start..end {
                        let i0 = ((p & !low_mask) << 1) | (p & low_mask);
                        let i1 = i0 | bit;
                        // SAFETY: (i0, i1) pairs are disjoint across p.
                        unsafe {
                            let ptr = base.get();
                            let a = *ptr.add(i0);
                            let b = *ptr.add(i1);
                            *ptr.add(i0) = m[0][0] * a + m[0][1] * b;
                            *ptr.add(i1) = m[1][0] * a + m[1][1] * b;
                        }
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C32, b: C32) -> bool {
        (a.re - b.re).abs() < 1e-5 && (a.im - b.im).abs() < 1e-5
    }

    #[test]
    fn standard_gates_are_unitary() {
        for g in [
            Gate1::identity(),
            Gate1::h(),
            Gate1::x(),
            Gate1::z(),
            Gate1::rz(0.7),
            Gate1::phase(1.3),
        ] {
            assert!(g.unitarity_error() < 1e-6);
        }
    }

    #[test]
    fn x_flips_basis_state() {
        let mut s = StateVector::zero_state(3);
        s.apply_gate1(&Gate1::x(), 1);
        assert!(close(s.amp(0b010), C32::ONE));
        assert!(close(s.amp(0), C32::ZERO));
    }

    #[test]
    fn h_creates_equal_superposition() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate1(&Gate1::h(), 0);
        assert!((s.probability(0) - 0.5).abs() < 1e-6);
        assert!((s.probability(1) - 0.5).abs() < 1e-6);
        // H is self-inverse.
        s.apply_gate1(&Gate1::h(), 0);
        assert!(close(s.amp(0), C32::ONE));
    }

    #[test]
    fn z_phases_only_the_one_component() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate1(&Gate1::h(), 0);
        s.apply_gate1(&Gate1::z(), 0);
        assert!(close(s.amp(0), C32::new(FRAC_1_SQRT_2, 0.0)));
        assert!(close(s.amp(1), C32::new(-FRAC_1_SQRT_2, 0.0)));
    }

    #[test]
    fn rz_preserves_probabilities() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate1(&Gate1::h(), 1);
        let p_before: Vec<f64> = (0..4).map(|i| s.probability(i)).collect();
        s.apply_gate1(&Gate1::rz(0.9), 1);
        for (i, p) in p_before.iter().enumerate() {
            assert!((s.probability(i) - p).abs() < 1e-6);
        }
    }

    #[test]
    fn gate1_on_high_qubit() {
        let mut s = StateVector::zero_state(10);
        s.apply_gate1(&Gate1::x(), 9);
        assert!((s.probability(1 << 9) - 1.0).abs() < 1e-6);
    }
}
