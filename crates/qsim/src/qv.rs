//! Quantum Volume circuit generation.
//!
//! A QV circuit on `n` qubits has `n` layers; each layer applies a random
//! permutation of the qubits and a Haar-random SU(4) gate to each
//! adjacent pair of the permutation (⌊n/2⌋ gates per layer).

use crate::gates::Gate2;

/// One two-qubit operation of the circuit.
#[derive(Debug, Clone)]
pub struct QvGate {
    /// The unitary.
    pub gate: Gate2,
    /// Target qubits (order matters).
    pub q0: u32,
    /// Second target.
    pub q1: u32,
}

/// A generated Quantum Volume circuit.
#[derive(Debug, Clone)]
pub struct QvCircuit {
    /// Qubit count.
    pub n_qubits: u32,
    /// All gates in application order.
    pub gates: Vec<QvGate>,
}

fn rng_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl QvCircuit {
    /// Generates the depth-`n` QV circuit for `n` qubits, deterministic
    /// in `seed`.
    pub fn generate(n_qubits: u32, seed: u64) -> QvCircuit {
        assert!(n_qubits >= 2);
        let mut st = seed | 1;
        let mut gates = Vec::new();
        let mut perm: Vec<u32> = (0..n_qubits).collect();
        for layer in 0..n_qubits {
            // Fisher-Yates shuffle.
            for i in (1..perm.len()).rev() {
                let j = (rng_next(&mut st) % (i as u64 + 1)) as usize;
                perm.swap(i, j);
            }
            for pair in 0..(n_qubits / 2) {
                let q0 = perm[2 * pair as usize];
                let q1 = perm[2 * pair as usize + 1];
                let gseed = seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((layer as u64) << 32 | pair as u64);
                gates.push(QvGate {
                    gate: Gate2::random_su4(gseed),
                    q0,
                    q1,
                });
            }
        }
        QvCircuit { n_qubits, gates }
    }

    /// Number of two-qubit gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit is empty (never, for n ≥ 2).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_count_is_n_times_half_n() {
        for n in [2u32, 3, 5, 8] {
            let c = QvCircuit::generate(n, 1);
            assert_eq!(c.len() as u32, n * (n / 2));
        }
    }

    #[test]
    fn qubits_are_in_range_and_distinct() {
        let c = QvCircuit::generate(7, 3);
        for g in &c.gates {
            assert!(g.q0 < 7 && g.q1 < 7);
            assert_ne!(g.q0, g.q1);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = QvCircuit::generate(5, 42);
        let b = QvCircuit::generate(5, 42);
        for (x, y) in a.gates.iter().zip(&b.gates) {
            assert_eq!((x.q0, x.q1), (y.q0, y.q1));
            assert_eq!(x.gate, y.gate);
        }
        let c = QvCircuit::generate(5, 43);
        let same_layout = a
            .gates
            .iter()
            .zip(&c.gates)
            .all(|(x, y)| (x.q0, x.q1) == (y.q0, y.q1));
        assert!(!same_layout || a.gates[0].gate != c.gates[0].gate);
    }

    #[test]
    fn each_layer_touches_disjoint_pairs() {
        let n = 8u32;
        let c = QvCircuit::generate(n, 5);
        let per_layer = (n / 2) as usize;
        for layer in c.gates.chunks(per_layer) {
            let mut seen = std::collections::HashSet::new();
            for g in layer {
                assert!(seen.insert(g.q0));
                assert!(seen.insert(g.q1));
            }
        }
    }
}
