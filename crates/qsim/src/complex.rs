//! Minimal single-precision complex arithmetic (no external crate).

/// A single-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl C32 {
    /// 0 + 0i.
    pub const ZERO: C32 = C32 { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: C32 = C32 { re: 1.0, im: 0.0 };

    /// Constructs from parts.
    pub fn new(re: f32, im: f32) -> C32 {
        C32 { re, im }
    }

    /// |z|².
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> C32 {
        C32 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f32) -> C32 {
        C32 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl std::ops::Add for C32 {
    type Output = C32;
    fn add(self, o: C32) -> C32 {
        C32 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl std::ops::Sub for C32 {
    type Output = C32;
    fn sub(self, o: C32) -> C32 {
        C32 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl std::ops::Mul for C32 {
    type Output = C32;
    fn mul(self, o: C32) -> C32 {
        C32 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl std::ops::AddAssign for C32 {
    fn add_assign(&mut self, o: C32) {
        self.re += o.re;
        self.im += o.im;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = C32::new(1.0, 2.0);
        let b = C32::new(3.0, -1.0);
        assert_eq!(a + b, C32::new(4.0, 1.0));
        assert_eq!(a - b, C32::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, C32::new(5.0, 5.0));
    }

    #[test]
    fn norm_and_conj() {
        let z = C32::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z * z.conj(), C32::new(25.0, 0.0));
    }

    #[test]
    fn identity_element() {
        let z = C32::new(0.5, -0.7);
        assert_eq!(z * C32::ONE, z);
        assert_eq!(z + C32::ZERO, z);
    }

    #[test]
    fn scale_is_real_multiplication() {
        assert_eq!(C32::new(2.0, -4.0).scale(0.5), C32::new(1.0, -2.0));
    }
}
