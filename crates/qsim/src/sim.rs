//! Running Quantum Volume on the simulated Grace Hopper.

use gh_profiler::Phase;
use gh_sim::{Machine, MemMode, Node, RunReport};

use crate::qv::QvCircuit;
use crate::state::StateVector;
use crate::statevector_bytes;

/// Quantum Volume run parameters.
#[derive(Debug, Clone)]
pub struct QsimParams {
    /// Simulated qubit count (paper scale = this + 10).
    pub sim_qubits: u32,
    /// Circuit seed.
    pub seed: u64,
    /// Evolve the real statevector (exact, memory-hungry on the host) —
    /// used by tests and small runs. Large sweeps disable it; the memory
    /// behaviour and virtual timing are identical either way.
    pub compute_amplitudes: bool,
    /// Apply the explicit-prefetch optimization in managed mode
    /// (`cudaMemPrefetchAsync` windows, §7 / Figs 12-13).
    pub prefetch: bool,
    /// Chunk size for the explicit-copy pipeline when the statevector
    /// exceeds GPU memory.
    pub chunk_bytes: u64,
    /// Apply Aer-style gate fusion before execution (fewer statevector
    /// sweeps; semantics preserved).
    pub fuse: bool,
}

impl Default for QsimParams {
    fn default() -> Self {
        Self {
            sim_qubits: 20, // paper: 30 qubits
            seed: 2024,
            compute_amplitudes: false,
            prefetch: false,
            chunk_bytes: 8 << 20,
            fuse: false,
        }
    }
}

/// Window size for managed-memory prefetching. Must be comfortably
/// smaller than free GPU memory so that prefetching window *i+1* evicts
/// already-consumed blocks (LRU) instead of the window itself.
const PREFETCH_WINDOW: u64 = 4 << 20;

/// Runs a Quantum Volume simulation under `mode`. Checksum is the
/// statevector fingerprint when `compute_amplitudes` is set, else 0.
pub fn run_qv(mut m: Machine, mode: MemMode, p: &QsimParams) -> RunReport {
    let sv_bytes = statevector_bytes(p.sim_qubits);
    let mut circuit = QvCircuit::generate(p.sim_qubits, p.seed);
    if p.fuse {
        circuit = crate::fusion::fuse(&circuit);
    }
    let mut state = if p.compute_amplitudes {
        Some(StateVector::zero_state(p.sim_qubits))
    } else {
        None
    };

    // ---- allocation ----
    m.phase(Phase::Alloc);
    enum SvStorage {
        Device(gh_sim::Buffer),
        ChunkedHost {
            host: gh_sim::Buffer,
            chunks: [gh_sim::Buffer; 2],
            streams: [gh_sim::StreamId; 2],
        },
        Unified(gh_sim::Buffer),
    }
    let storage = match mode {
        MemMode::Explicit => {
            if sv_bytes + (2 << 20) <= m.rt.gpu_free() {
                SvStorage::Device(
                    m.rt.cuda_malloc(gh_units::Bytes::new(sv_bytes), "qv.sv")
                        .expect("fits by the check above"), // gh-audit: allow(no-unwrap-in-lib) -- fits by the branch guard above
                )
            } else {
                // Qiskit-Aer's chunked host-exchange pipeline: pinned
                // host statevector, double-buffered device chunks, two
                // streams so copies overlap compute — the paper's
                // "sophisticated data movement pipeline" (§4).
                let host =
                    m.rt.cuda_malloc_host(gh_units::Bytes::new(sv_bytes), "qv.sv.host");
                let chunks = [
                    m.rt.cuda_malloc(gh_units::Bytes::new(p.chunk_bytes), "qv.chunk0")
                        .expect("chunk buffer must fit"), // gh-audit: allow(no-unwrap-in-lib) -- chunk size is bounded by config validation
                    m.rt.cuda_malloc(gh_units::Bytes::new(p.chunk_bytes), "qv.chunk1")
                        .expect("chunk buffer must fit"), // gh-audit: allow(no-unwrap-in-lib) -- chunk size is bounded by config validation
                ];
                let streams = [m.rt.create_stream(), m.rt.create_stream()];
                SvStorage::ChunkedHost {
                    host,
                    chunks,
                    streams,
                }
            }
        }
        MemMode::System => {
            SvStorage::Unified(m.rt.malloc_system(gh_units::Bytes::new(sv_bytes), "qv.sv"))
        }
        MemMode::Managed => {
            SvStorage::Unified(m.rt.cuda_malloc_managed(gh_units::Bytes::new(sv_bytes), "qv.sv"))
        }
    };

    // ---- CPU init: none (GPU-side initialization, §5.1.2) ----
    m.phase(Phase::CpuInit);

    // ---- compute ----
    m.phase(Phase::Compute);
    match &storage {
        SvStorage::Device(sv) => {
            let mut k = m.rt.launch("qv_init");
            k.write(sv, 0, sv_bytes);
            k.compute(sv_bytes / 4);
            k.finish();
        }
        SvStorage::ChunkedHost {
            host,
            chunks,
            streams,
        } => {
            // Initialize chunks on the device and stream them out,
            // ping-ponging between the two buffers/streams.
            let mut off = 0;
            let mut i = 0;
            while off < sv_bytes {
                let len = p.chunk_bytes.min(sv_bytes - off);
                let (c, s) = (&chunks[i % 2], streams[i % 2]);
                m.rt.launch_async("qv_init", s, &[], &[(*c, 0, len)], len / 4);
                m.rt.memcpy_async(host, off, c, 0, len, s);
                off += len;
                i += 1;
            }
            m.rt.all_streams_synchronize();
        }
        SvStorage::Unified(sv) => {
            let mut k = m.rt.launch("qv_init");
            k.write(sv, 0, sv_bytes);
            k.compute(sv_bytes / 4);
            k.finish();
        }
    }

    for (gi, g) in circuit.gates.iter().enumerate() {
        if let Some(s) = state.as_mut() {
            s.apply_gate2(&g.gate, g.q0, g.q1);
        }
        let work = (sv_bytes / 8) * 30; // ~30 flops per amplitude
        match &storage {
            SvStorage::Device(sv) => {
                let mut k = m.rt.launch("qv_gate");
                k.read(sv, 0, sv_bytes);
                k.write(sv, 0, sv_bytes);
                k.compute(work);
                k.finish();
            }
            SvStorage::ChunkedHost {
                host,
                chunks,
                streams,
            } => {
                // Stream the statevector through the double-buffered
                // device chunks: while chunk i computes, chunk i+1 loads
                // and chunk i-1 stores. A gate on a *global* qubit (its
                // stride exceeds the chunk) pairs chunks, so Aer performs
                // an extra exchange pass: model it as a second full
                // stream of the vector.
                let chunk_amps = p.chunk_bytes / crate::AMP_BYTES;
                let global = (1u64 << g.q0.max(g.q1)) >= chunk_amps;
                let passes = if global { 2 } else { 1 };
                for _pass in 0..passes {
                    let mut off = 0;
                    let mut i = 0;
                    while off < sv_bytes {
                        let len = p.chunk_bytes.min(sv_bytes - off);
                        let (c, s) = (&chunks[i % 2], streams[i % 2]);
                        m.rt.memcpy_async(c, 0, host, off, len, s);
                        m.rt.launch_async(
                            "qv_gate",
                            s,
                            &[(*c, 0, len)],
                            &[(*c, 0, len)],
                            work * len / (sv_bytes * passes),
                        );
                        m.rt.memcpy_async(host, off, c, 0, len, s);
                        off += len;
                        i += 1;
                    }
                    m.rt.all_streams_synchronize();
                }
            }
            SvStorage::Unified(sv) => {
                if p.prefetch && mode == MemMode::Managed {
                    // Windowed prefetch: pull each window into HBM right
                    // before the kernel touches it (Fig 12's optimization).
                    let mut off = 0;
                    while off < sv_bytes {
                        let len = PREFETCH_WINDOW.min(sv_bytes - off);
                        m.rt.prefetch(sv, off, len, Node::Gpu);
                        let mut k = m.rt.launch("qv_gate");
                        k.read(sv, off, len);
                        k.write(sv, off, len);
                        k.compute(work * len / sv_bytes);
                        k.finish();
                        off += len;
                    }
                } else {
                    let mut k = m.rt.launch("qv_gate");
                    k.read(sv, 0, sv_bytes);
                    k.write(sv, 0, sv_bytes);
                    k.compute(work);
                    k.finish();
                }
            }
        }
        // A light norm-check every few layers, as Aer's validation does:
        // read-only pass, no writes.
        if gi % (p.sim_qubits as usize) == 0 {
            if let SvStorage::Unified(sv) = &storage {
                let mut k = m.rt.launch("qv_norm");
                k.read(sv, 0, sv_bytes.min(4 << 20));
                k.finish();
            }
        }
    }

    if let Some(s) = &state {
        m.set_checksum(s.checksum());
    }

    // ---- de-allocation ----
    m.phase(Phase::Dealloc);
    match storage {
        SvStorage::Device(sv) => {
            m.rt.free(sv);
        }
        SvStorage::ChunkedHost { host, chunks, .. } => {
            let [c0, c1] = chunks;
            m.rt.free(c0);
            m.rt.free(c1);
            m.rt.free(host);
        }
        SvStorage::Unified(sv) => {
            m.rt.free(sv);
        }
    }
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(qubits: u32) -> QsimParams {
        QsimParams {
            sim_qubits: qubits,
            seed: 77,
            compute_amplitudes: true,
            prefetch: false,
            chunk_bytes: 1 << 20,
            fuse: false,
        }
    }

    #[test]
    fn all_modes_produce_identical_state() {
        let p = small(8);
        let mut checks = Vec::new();
        for mode in MemMode::ALL {
            let r = run_qv(gh_sim::platform::gh200().machine(), mode, &p);
            checks.push(r.checksum);
        }
        assert!(checks[0] != 0.0);
        assert_eq!(checks[0], checks[1]);
        assert_eq!(checks[1], checks[2]);
    }

    #[test]
    fn norm_is_preserved_through_full_circuit() {
        let p = small(6);
        let circuit = QvCircuit::generate(p.sim_qubits, p.seed);
        let mut s = StateVector::zero_state(p.sim_qubits);
        for g in &circuit.gates {
            s.apply_gate2(&g.gate, g.q0, g.q1);
        }
        assert!((s.norm_sqr() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn system_mode_init_is_gpu_side() {
        let p = QsimParams {
            compute_amplitudes: false,
            ..small(16)
        };
        let r = run_qv(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        assert!(r.traffic.ats_faults > 0, "GPU first touch must fault");
        assert_eq!(r.phases.cpu_init, 0, "no CPU-side initialization");
    }

    #[test]
    fn managed_init_is_faster_than_system_init() {
        // Fig 5/9 shape: GPU-side init is the system-memory bottleneck.
        let p = QsimParams {
            compute_amplitudes: false,
            ..small(18)
        };
        let rs = run_qv(gh_sim::platform::gh200().machine(), MemMode::System, &p);
        let rm = run_qv(gh_sim::platform::gh200().machine(), MemMode::Managed, &p);
        let init_s = rs.kernel_time_named("qv_init");
        let init_m = rm.kernel_time_named("qv_init");
        assert!(
            init_s > init_m * 3,
            "system init {init_s} vs managed init {init_m}"
        );
    }

    #[test]
    fn natural_oversubscription_uses_chunked_pipeline() {
        // 24 sim-qubits = 128 MiB > 96 MiB GPU: explicit mode must fall
        // back to the chunked pipeline (memcpy traffic both directions).
        let p = QsimParams {
            sim_qubits: 24,
            compute_amplitudes: false,
            seed: 5,
            prefetch: false,
            chunk_bytes: 8 << 20,
            fuse: false,
        };
        let r = run_qv(gh_sim::platform::gh200().machine(), MemMode::Explicit, &p);
        assert!(r.traffic.hbm_read > 0);
        // Chunk streaming happened (init + per-gate).
        assert!(r.phases.compute > 0);
    }

    #[test]
    fn fusion_option_preserves_state_and_never_slows() {
        let base = small(9);
        let fused = QsimParams {
            fuse: true,
            ..base.clone()
        };
        let a = run_qv(gh_sim::platform::gh200().machine(), MemMode::Managed, &base);
        let b = run_qv(
            gh_sim::platform::gh200().machine(),
            MemMode::Managed,
            &fused,
        );
        let rel = (a.checksum - b.checksum).abs() / a.checksum.abs().max(1e-9);
        assert!(rel < 1e-3, "{} vs {}", a.checksum, b.checksum);
        assert!(b.kernel_times.len() <= a.kernel_times.len());
    }

    #[test]
    fn deterministic_virtual_time() {
        let p = QsimParams {
            compute_amplitudes: false,
            ..small(14)
        };
        let a = run_qv(gh_sim::platform::gh200().machine(), MemMode::Managed, &p);
        let b = run_qv(gh_sim::platform::gh200().machine(), MemMode::Managed, &p);
        assert_eq!(a.phases.compute, b.phases.compute);
        assert_eq!(a.traffic, b.traffic);
    }
}
