//! `gh-perf` — the simulator profiling *itself*.
//!
//! Everything else in this workspace observes the **simulated machine**
//! on the virtual clock (`gh-trace`, the sanitizer, the phase timers).
//! This crate observes the **simulator as a host program**: how many host
//! milliseconds each experiment phase costs, how fast the hot paths run
//! (TLB walks/s, faults/s, migrated pages/s), and the headline
//! **sim-speed ratio** — virtual nanoseconds advanced per host
//! millisecond. That trajectory is what `BENCH_*.json` at the repo root
//! tracks across PRs (see `docs/observability.md`).
//!
//! # The wall-clock carve-out
//!
//! The workspace's `no-wall-clock` audit rule bans host-time reads from
//! simulator code, because a single `Instant::now()` on a model path can
//! couple reported numbers to the machine the simulator runs on.
//! `gh-perf` is the one *sanctioned* exception: it is the only crate
//! allowed to read host time, and it is quarantined by construction —
//! nothing here reads or writes simulator state, and no virtual-time
//! result can depend on it. `tests/perf.rs` proves RunReports stay
//! bitwise identical with profiling on.
//!
//! # Session scoping
//!
//! Like `gh-trace`, the collector is **session-scoped, not ambient**
//! (PR 9): a [`Perf`] is a cloneable handle owned by one run's session
//! context and injected into each component that profiles. A disarmed
//! handle ([`Perf::off`]) makes every call a no-op after one branch, so
//! concurrent runs in one process profile independently or not at all.
//!
//! # Usage
//!
//! ```
//! use gh_perf::{Ctr, Perf};
//!
//! let perf = Perf::on();
//! // ... run a simulation; model crates mark phases/spans/counters ...
//! perf.phase_mark("compute", 0);
//! perf.count(Ctr::TlbWalks, 1);
//! perf.run_end(1_000_000);
//! let data = perf.take();
//! assert!(data.host_total_ns > 0);
//! println!("{}", gh_perf::export::table(&data));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod collector;
pub mod export;
mod host;
mod report;

pub use collector::{Ctr, Perf, SpanGuard};
pub use host::{host_date, peak_rss_bytes};
pub use report::{PerfData, PhasePerf, SpanAgg};
