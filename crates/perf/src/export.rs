//! Exporters for a drained [`PerfData`]: a human breakdown table, a
//! folded-stack text for flamegraph tools, and machine-readable JSON.

use std::fmt::Write as _;

use gh_trace::json::{f64_value, quote_into};

use crate::report::PerfData;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn speed_cell(s: Option<f64>) -> String {
    match s {
        Some(v) => format!("{v:.0}"),
        None => "-".to_string(),
    }
}

/// Renders the per-phase host-time breakdown table, counter rates, and
/// the headline sim-speed ratio. Intended for stderr next to the
/// deterministic report on stdout.
pub fn table(d: &PerfData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- gh-perf: host {:.3} ms | virtual {:.3} ms | sim-speed {} sim-ns/host-ms | peak RSS {} MiB | runs {} --",
        ms(d.host_total_ns),
        ms(d.sim_total_ns),
        speed_cell(d.sim_speed()),
        d.peak_rss_bytes >> 20,
        d.runs,
    );
    if !d.phases.is_empty() {
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>12} {:>12} {:>16}",
            "phase", "count", "host ms", "virtual ms", "sim-ns/host-ms"
        );
        for p in &d.phases {
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>12.3} {:>12.3} {:>16}",
                p.label,
                p.count,
                ms(p.host_ns),
                ms(p.sim_ns),
                speed_cell(p.sim_speed()),
            );
        }
    }
    let hot: Vec<_> = d.counters.iter().filter(|(_, v)| *v > 0).collect();
    if !hot.is_empty() {
        let _ = writeln!(out, "{:<24} {:>12} {:>14}", "counter", "count", "events/s");
        for (name, v) in hot {
            let rate = d
                .rate_per_sec(name)
                .map_or_else(|| "-".to_string(), |r| format!("{r:.0}"));
            let _ = writeln!(out, "{name:<24} {v:>12} {rate:>14}");
        }
    }
    out
}

/// Renders folded-stack lines (`path;to;frame <self-ns>`), the input
/// format of `flamegraph.pl` and friends. The "sample count" column is
/// exclusive host nanoseconds.
pub fn folded(d: &PerfData) -> String {
    let mut out = String::new();
    for s in &d.spans {
        if s.self_ns > 0 {
            let _ = writeln!(out, "{} {}", s.path, s.self_ns);
        }
    }
    // Phases appear as roots too, so a profile with no scoped spans
    // still produces a (flat) flame.
    for p in &d.phases {
        let nested: u64 = d
            .spans
            .iter()
            .filter(|s| {
                s.path
                    .strip_prefix(p.label.as_str())
                    .is_some_and(|rest| rest.starts_with(';'))
                    && !s.path[p.label.len() + 1..].contains(';')
            })
            .map(|s| s.total_ns)
            .sum();
        let self_ns = p.host_ns.saturating_sub(nested);
        if self_ns > 0 {
            let _ = writeln!(out, "{} {}", p.label, self_ns);
        }
    }
    out
}

/// Serializes the profile as JSON (`schema: "gh-perf/1"`). Field
/// reference lives in `docs/observability.md`.
pub fn json(d: &PerfData) -> String {
    let mut o = String::with_capacity(1024);
    o.push_str("{\"schema\":\"gh-perf/1\"");
    let _ = write!(
        o,
        ",\"host_total_ns\":{},\"sim_total_ns\":{},\"runs\":{}",
        d.host_total_ns, d.sim_total_ns, d.runs
    );
    let _ = write!(
        o,
        ",\"sim_ns_per_host_ms\":{}",
        d.sim_speed().map_or_else(|| "null".to_string(), f64_value)
    );
    let _ = write!(o, ",\"peak_rss_bytes\":{}", d.peak_rss_bytes);
    o.push_str(",\"phases\":[");
    for (i, p) in d.phases.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"label\":");
        quote_into(&mut o, &p.label);
        let _ = write!(
            o,
            ",\"count\":{},\"host_ns\":{},\"sim_ns\":{},\"sim_ns_per_host_ms\":{}}}",
            p.count,
            p.host_ns,
            p.sim_ns,
            p.sim_speed().map_or_else(|| "null".to_string(), f64_value)
        );
    }
    o.push_str("],\"spans\":[");
    for (i, s) in d.spans.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"path\":");
        quote_into(&mut o, &s.path);
        let _ = write!(
            o,
            ",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
            s.count, s.total_ns, s.self_ns
        );
    }
    o.push_str("],\"counters\":{");
    for (i, (name, v)) in d.counters.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        quote_into(&mut o, name);
        let _ = write!(o, ":{v}");
    }
    o.push_str("},\"rates_per_sec\":{");
    for (i, (name, _)) in d.counters.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        quote_into(&mut o, name);
        let _ = write!(
            o,
            ":{}",
            d.rate_per_sec(name)
                .map_or_else(|| "null".to_string(), f64_value)
        );
    }
    o.push_str("}}");
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{PhasePerf, SpanAgg};

    fn sample() -> PerfData {
        PerfData {
            host_total_ns: 2_000_000,
            sim_total_ns: 8_000_000,
            runs: 1,
            phases: vec![
                PhasePerf {
                    label: "alloc".into(),
                    count: 1,
                    host_ns: 500_000,
                    sim_ns: 1_000_000,
                },
                PhasePerf {
                    label: "compute".into(),
                    count: 1,
                    host_ns: 1_500_000,
                    sim_ns: 7_000_000,
                },
            ],
            spans: vec![
                SpanAgg {
                    path: "compute;kernel:k".into(),
                    count: 2,
                    total_ns: 1_000_000,
                    self_ns: 600_000,
                },
                SpanAgg {
                    path: "compute;kernel:k;translate".into(),
                    count: 8,
                    total_ns: 400_000,
                    self_ns: 400_000,
                },
            ],
            counters: vec![("tlb.walks", 1000), ("os.faults", 0)],
            peak_rss_bytes: 64 << 20,
        }
    }

    #[test]
    fn table_has_headline_and_phase_rows() {
        let t = table(&sample());
        assert!(t.contains("sim-speed 4000000 sim-ns/host-ms"), "{t}");
        assert!(t.contains("alloc"), "{t}");
        assert!(t.contains("compute"), "{t}");
        assert!(t.contains("tlb.walks"), "{t}");
        // Zero counters are elided from the table.
        assert!(!t.contains("os.faults"), "{t}");
    }

    #[test]
    fn folded_reports_self_time_per_path() {
        let f = folded(&sample());
        assert!(f.contains("compute;kernel:k 600000\n"), "{f}");
        assert!(f.contains("compute;kernel:k;translate 400000\n"), "{f}");
        // Phase root: 1_500_000 total minus the 1_000_000 direct child.
        assert!(f.contains("compute 500000\n"), "{f}");
        assert!(f.contains("alloc 500000\n"), "{f}");
    }

    #[test]
    fn json_has_schema_and_counters() {
        let j = json(&sample());
        assert!(j.starts_with("{\"schema\":\"gh-perf/1\""), "{j}");
        assert!(j.contains("\"sim_ns_per_host_ms\":4000000"), "{j}");
        assert!(j.contains("\"tlb.walks\":1000"), "{j}");
        assert!(j.contains("\"peak_rss_bytes\":67108864"), "{j}");
        assert!(j.contains("\"label\":\"compute\""), "{j}");
    }

    #[test]
    fn json_empty_profile_is_valid_shape() {
        let j = json(&PerfData::default());
        assert!(j.contains("\"sim_ns_per_host_ms\":null"), "{j}");
        assert!(j.contains("\"phases\":[]"), "{j}");
        assert!(j.contains("\"spans\":[]"), "{j}");
    }
}
