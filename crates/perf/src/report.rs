//! The drained profile: plain data, ready for the exporters.

/// Virtual nanoseconds advanced per host millisecond. `None` when either
/// side is zero (nothing ran, or the host clock did not tick).
fn speed(sim_ns: u64, host_ns: u64) -> Option<f64> {
    if sim_ns == 0 || host_ns == 0 {
        return None;
    }
    Some(sim_ns as f64 / (host_ns as f64 / 1e6))
}

/// Aggregated host/virtual time for one experiment phase label
/// (across every occurrence of that phase in the profiled window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhasePerf {
    /// Phase label as marked (`ctx_init`, `alloc`, `compute`, ...).
    pub label: String,
    /// How many times a phase with this label was entered.
    pub count: u64,
    /// Total host wall-clock spent inside the phase, in nanoseconds.
    pub host_ns: u64,
    /// Total virtual time the simulation advanced inside the phase.
    pub sim_ns: u64,
}

impl PhasePerf {
    /// Sim-speed ratio for this phase: virtual ns per host ms.
    pub fn sim_speed(&self) -> Option<f64> {
        speed(self.sim_ns, self.host_ns)
    }
}

/// Aggregated scoped-span timings keyed by the full stack path
/// (`;`-joined, flamegraph folded-stack style, phase label at the root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAgg {
    /// Folded stack path, e.g. `compute;kernel:srad1;translate`.
    pub path: String,
    /// Number of times this exact path was entered.
    pub count: u64,
    /// Inclusive host time: this span plus everything nested in it.
    pub total_ns: u64,
    /// Exclusive host time: `total_ns` minus time in child spans. This is
    /// the column a flamegraph consumes.
    pub self_ns: u64,
}

/// Everything one armed [`Perf`](crate::Perf) handle observed up to its
/// `take()`. Quarantine note: none of this ever reaches a `RunReport` —
/// callers drain and export it on a separate channel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfData {
    /// Host wall-clock from `enable()` to `take()`, in nanoseconds.
    pub host_total_ns: u64,
    /// Virtual time advanced across all completed runs (`run_end` sums).
    pub sim_total_ns: u64,
    /// Number of completed simulation runs (`run_end` calls) observed.
    pub runs: u64,
    /// Per-phase breakdown in first-seen order.
    pub phases: Vec<PhasePerf>,
    /// Folded-stack span aggregation, sorted by path.
    pub spans: Vec<SpanAgg>,
    /// Hot-path counters in [`Ctr`](crate::Ctr) order, `(name, count)`.
    pub counters: Vec<(&'static str, u64)>,
    /// Peak resident set size of the process, in bytes (0 if unknown).
    pub peak_rss_bytes: u64,
}

impl PerfData {
    /// Headline sim-speed ratio: virtual ns advanced per host ms over the
    /// whole profiled window.
    pub fn sim_speed(&self) -> Option<f64> {
        speed(self.sim_total_ns, self.host_total_ns)
    }

    /// Counter value by name (0 when the counter never fired).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Counter rate in events per host second over the profiled window.
    /// `None` when the host clock did not tick.
    pub fn rate_per_sec(&self, name: &str) -> Option<f64> {
        if self.host_total_ns == 0 {
            return None;
        }
        Some(self.counter(name) as f64 / (self.host_total_ns as f64 / 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_speed_is_virtual_ns_per_host_ms() {
        let d = PerfData {
            host_total_ns: 2_000_000, // 2 host ms
            sim_total_ns: 8_000_000,  // 8 virtual ms
            ..Default::default()
        };
        let s = d.sim_speed().unwrap();
        assert!((s - 4_000_000.0).abs() < 1e-6, "got {s}");
    }

    #[test]
    fn zero_sides_yield_none() {
        assert_eq!(PerfData::default().sim_speed(), None);
        let d = PerfData {
            host_total_ns: 5,
            ..Default::default()
        };
        assert_eq!(d.sim_speed(), None);
        assert_eq!(PerfData::default().rate_per_sec("x"), None);
    }

    #[test]
    fn counter_lookup_and_rate() {
        let d = PerfData {
            host_total_ns: 500_000_000, // 0.5 s
            counters: vec![("tlb.walks", 100)],
            ..Default::default()
        };
        assert_eq!(d.counter("tlb.walks"), 100);
        assert_eq!(d.counter("absent"), 0);
        let r = d.rate_per_sec("tlb.walks").unwrap();
        assert!((r - 200.0).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn phase_sim_speed() {
        let p = PhasePerf {
            label: "compute".into(),
            count: 1,
            host_ns: 1_000_000,
            sim_ns: 3_000_000,
        };
        let s = p.sim_speed().unwrap();
        assert!((s - 3_000_000.0).abs() < 1e-6, "got {s}");
    }
}
