//! The session-owned profiling collector behind the [`Perf`] handle,
//! mirroring the `gh-trace` `Bus` idiom: a cloneable `Option<Rc<..>>`
//! handle whose disabled form no-ops after one branch, and a drain
//! ([`Perf::take`]) that returns plain data.
//!
//! The former `thread_local!` collector is gone (PR 9): profiling state
//! belongs to one run's session context and is injected by handle, so
//! concurrent runs in one process profile independently. A session is
//! single-threaded by design (determinism), so `Rc` + `RefCell` is the
//! whole story — no atomics, no locks.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

use crate::report::{PerfData, PhasePerf, SpanAgg};

/// Hot-path rate counters. A fixed enum (not string keys) so counting on
/// the TLB walk / fault / migration paths is an array increment, never a
/// map lookup or an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ctr {
    /// TLB lookups in the simulated GMMU (`gh-mem`).
    TlbWalks,
    /// TLB lookups that missed and walked the page table.
    TlbMisses,
    /// OS-level faults handled (`gh-os`: CPU first-touch, ATS, register).
    Faults,
    /// Pages migrated by the UVM policy engine (`gh-cuda`), both ways.
    MigratedPages,
    /// Kernel launches through the `gh-cuda` runtime.
    KernelLaunches,
    /// `memcpy`/`memcpy_2d` calls through the `gh-cuda` runtime.
    Memcpys,
    /// Placement runs processed by the batched access core (`gh-cuda`):
    /// one classified resident/faulting run per increment. High
    /// runs-per-span ratios mean fragmented placement.
    BatchRuns,
    /// Kernel spans served whole by the stable-placement cache (buffer
    /// placement unchanged since the last epoch — no classification walk).
    FastSpans,
}

const N_CTRS: usize = 8;

impl Ctr {
    /// All counters in declaration (and export) order.
    pub const ALL: [Ctr; N_CTRS] = [
        Ctr::TlbWalks,
        Ctr::TlbMisses,
        Ctr::Faults,
        Ctr::MigratedPages,
        Ctr::KernelLaunches,
        Ctr::Memcpys,
        Ctr::BatchRuns,
        Ctr::FastSpans,
    ];

    /// Stable export name (dotted, matching the gh-trace counter style).
    pub fn name(self) -> &'static str {
        match self {
            Ctr::TlbWalks => "tlb.walks",
            Ctr::TlbMisses => "tlb.misses",
            Ctr::Faults => "os.faults",
            Ctr::MigratedPages => "uvm.migrated_pages",
            Ctr::KernelLaunches => "cuda.kernel_launches",
            Ctr::Memcpys => "cuda.memcpys",
            Ctr::BatchRuns => "access.batch_runs",
            Ctr::FastSpans => "access.fast_spans",
        }
    }

    fn index(self) -> usize {
        match self {
            Ctr::TlbWalks => 0,
            Ctr::TlbMisses => 1,
            Ctr::Faults => 2,
            Ctr::MigratedPages => 3,
            Ctr::KernelLaunches => 4,
            Ctr::Memcpys => 5,
            Ctr::BatchRuns => 6,
            Ctr::FastSpans => 7,
        }
    }
}

/// An open scoped span on the stack.
struct OpenSpan {
    /// Full folded path (`phase;parent;name`).
    path: String,
    /// Host ns (since `t0`) when the span opened.
    start: u64,
    /// Host ns consumed by already-closed children, for self-time.
    child_ns: u64,
}

#[derive(Default)]
struct SpanAcc {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

#[derive(Default)]
struct PhaseAcc {
    count: u64,
    host_ns: u64,
    sim_ns: u64,
}

struct Collector {
    t0: Instant,
    counters: [u64; N_CTRS],
    stack: Vec<OpenSpan>,
    spans: BTreeMap<String, SpanAcc>,
    /// Open phase: (label, host start ns, sim start ns).
    open_phase: Option<(String, u64, u64)>,
    /// First-seen phase order, for a stable breakdown table.
    phase_order: Vec<String>,
    phases: BTreeMap<String, PhaseAcc>,
    sim_total_ns: u64,
    runs: u64,
}

impl Collector {
    fn new() -> Self {
        Collector {
            t0: Instant::now(),
            counters: [0; N_CTRS],
            stack: Vec::new(),
            spans: BTreeMap::new(),
            open_phase: None,
            phase_order: Vec::new(),
            phases: BTreeMap::new(),
            sim_total_ns: 0,
            runs: 0,
        }
    }

    fn now_ns(&self) -> u64 {
        // u64 ns covers ~584 years of profiling; saturate rather than
        // panic if a host clock misbehaves.
        u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn close_phase(&mut self, now: u64, sim_now: u64) {
        let Some((label, h0, s0)) = self.open_phase.take() else {
            return;
        };
        let acc = self.phases.entry(label).or_default();
        acc.count += 1;
        acc.host_ns += now.saturating_sub(h0);
        acc.sim_ns += sim_now.saturating_sub(s0);
    }

    fn close_span(&mut self, now: u64) {
        let Some(open) = self.stack.pop() else { return };
        let total = now.saturating_sub(open.start);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += total;
        }
        let acc = self.spans.entry(open.path).or_default();
        acc.count += 1;
        acc.total_ns += total;
        acc.self_ns += total.saturating_sub(open.child_ns);
    }

    fn drain(mut self) -> PerfData {
        let now = self.now_ns();
        // Close anything left open so the drain never loses time.
        while !self.stack.is_empty() {
            self.close_span(now);
        }
        let sim_floor = self.open_phase.as_ref().map_or(0, |&(_, _, s0)| s0);
        self.close_phase(now, sim_floor);
        let phases = self
            .phase_order
            .iter()
            .filter_map(|label| {
                let acc = self.phases.get(label)?;
                Some(PhasePerf {
                    label: label.clone(),
                    count: acc.count,
                    host_ns: acc.host_ns,
                    sim_ns: acc.sim_ns,
                })
            })
            .collect();
        let spans = self
            .spans
            .into_iter()
            .map(|(path, acc)| SpanAgg {
                path,
                count: acc.count,
                total_ns: acc.total_ns,
                self_ns: acc.self_ns,
            })
            .collect();
        let counters = Ctr::ALL
            .iter()
            .map(|c| (c.name(), self.counters[c.index()]))
            .collect();
        PerfData {
            host_total_ns: now,
            sim_total_ns: self.sim_total_ns,
            runs: self.runs,
            phases,
            spans,
            counters,
            peak_rss_bytes: crate::host::peak_rss_bytes(),
        }
    }
}

/// A handle to one run's profiling collector.
///
/// Cloning is cheap (one `Rc` bump); every clone shares the same
/// counters, span stack, and phase table. [`Perf::off`] (also `Default`)
/// is the disarmed sink: every method is a no-op after a single
/// `Option` check.
#[derive(Clone, Default)]
pub struct Perf {
    inner: Option<Rc<RefCell<Collector>>>,
}

impl std::fmt::Debug for Perf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Perf")
            .field("on", &self.is_on())
            .finish_non_exhaustive()
    }
}

impl Perf {
    /// A disarmed profiler: records nothing, costs one branch per call.
    pub fn off() -> Perf {
        Perf { inner: None }
    }

    /// An armed profiler; the host clock starts now.
    pub fn on() -> Perf {
        Perf {
            inner: Some(Rc::new(RefCell::new(Collector::new()))),
        }
    }

    /// Whether this handle records.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Bumps a hot-path counter. A branch when disarmed.
    #[inline]
    pub fn count(&self, ctr: Ctr, n: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().counters[ctr.index()] += n;
        }
    }

    /// Marks the start of an experiment phase at virtual time `sim_ns`,
    /// closing the previously open phase (its sim delta is measured
    /// against the same clock reading). Labels repeat freely;
    /// occurrences aggregate.
    pub fn phase_mark(&self, label: &str, sim_ns: u64) {
        let Some(i) = &self.inner else { return };
        let mut c = i.borrow_mut();
        let now = c.now_ns();
        c.close_phase(now, sim_ns);
        if !c.phases.contains_key(label) {
            c.phase_order.push(label.to_string());
            c.phases.insert(label.to_string(), PhaseAcc::default());
        }
        c.open_phase = Some((label.to_string(), now, sim_ns));
    }

    /// Marks the end of a simulation run whose clock reached `sim_ns`:
    /// closes the open phase and folds the run's virtual time into the
    /// window's `sim_total_ns`. A profiled window may contain several
    /// runs (each run's virtual clock starts from its own zero).
    pub fn run_end(&self, sim_ns: u64) {
        let Some(i) = &self.inner else { return };
        let mut c = i.borrow_mut();
        let now = c.now_ns();
        c.close_phase(now, sim_ns);
        c.sim_total_ns += sim_ns;
        c.runs += 1;
    }

    /// Opens a scoped host-time span nested under the current span (or
    /// the open phase at the root). Dropping the guard closes it.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str) -> SpanGuard {
        if let Some(i) = &self.inner {
            let mut c = i.borrow_mut();
            let parent = match c.stack.last() {
                Some(s) => s.path.as_str(),
                None => c
                    .open_phase
                    .as_ref()
                    .map_or("run", |(label, _, _)| label.as_str()),
            };
            let path = format!("{parent};{name}");
            let start = c.now_ns();
            c.stack.push(OpenSpan {
                path,
                start,
                child_ns: 0,
            });
        }
        SpanGuard { perf: self.clone() }
    }

    /// Drains the profile collected so far, leaving this handle (and
    /// every clone of it) armed with a fresh window. Returns an empty
    /// default when disarmed.
    pub fn take(&self) -> PerfData {
        let Some(i) = &self.inner else {
            return PerfData::default();
        };
        let taken = std::mem::replace(&mut *i.borrow_mut(), Collector::new());
        taken.drain()
    }
}

/// RAII guard returned by [`Perf::span`]; closes the span on drop. Holds
/// its own handle, so the guard stays balanced even if the caller's
/// handle is dropped first. A guard from a disarmed handle is inert.
#[derive(Debug)]
pub struct SpanGuard {
    perf: Perf,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(i) = &self.perf.inner {
            let mut c = i.borrow_mut();
            let now = c.now_ns();
            c.close_span(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_wait_ns(ns: u64) {
        let t = Instant::now();
        while u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX) < ns {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disarmed_calls_are_noops() {
        let perf = Perf::off();
        perf.count(Ctr::TlbWalks, 5);
        perf.phase_mark("compute", 0);
        perf.run_end(100);
        let _g = perf.span("nothing");
        assert_eq!(perf.take(), PerfData::default());
        assert!(!perf.is_on());
    }

    #[test]
    fn counters_accumulate_in_export_order() {
        let perf = Perf::on();
        perf.count(Ctr::TlbWalks, 3);
        perf.count(Ctr::TlbWalks, 2);
        perf.count(Ctr::Faults, 1);
        let d = perf.take();
        assert_eq!(d.counter("tlb.walks"), 5);
        assert_eq!(d.counter("os.faults"), 1);
        assert_eq!(d.counters.len(), Ctr::ALL.len());
        assert_eq!(d.counters[0].0, "tlb.walks");
    }

    #[test]
    fn clones_share_one_collector() {
        let perf = Perf::on();
        let handle = perf.clone();
        handle.count(Ctr::Memcpys, 4);
        assert_eq!(perf.take().counter("cuda.memcpys"), 4);
    }

    #[test]
    fn two_handles_profile_independently() {
        let a = Perf::on();
        let b = Perf::on();
        a.count(Ctr::Faults, 1);
        b.count(Ctr::Faults, 10);
        assert_eq!(a.take().counter("os.faults"), 1);
        assert_eq!(b.take().counter("os.faults"), 10);
    }

    #[test]
    fn phases_track_host_and_sim_deltas() {
        let perf = Perf::on();
        perf.phase_mark("alloc", 0);
        busy_wait_ns(200_000);
        perf.phase_mark("compute", 1_000);
        busy_wait_ns(200_000);
        perf.run_end(5_000);
        let d = perf.take();
        assert_eq!(d.runs, 1);
        assert_eq!(d.sim_total_ns, 5_000);
        let labels: Vec<&str> = d.phases.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["alloc", "compute"]);
        assert_eq!(d.phases[0].sim_ns, 1_000);
        assert_eq!(d.phases[1].sim_ns, 4_000);
        assert!(d.phases.iter().all(|p| p.host_ns > 0), "{:?}", d.phases);
        assert!(d.host_total_ns > 0);
    }

    #[test]
    fn repeated_phase_labels_aggregate() {
        let perf = Perf::on();
        perf.phase_mark("compute", 0);
        perf.phase_mark("dealloc", 10);
        perf.phase_mark("compute", 20);
        perf.run_end(50);
        let d = perf.take();
        let compute = d.phases.iter().find(|p| p.label == "compute").unwrap();
        assert_eq!(compute.count, 2);
        assert_eq!(compute.sim_ns, 10 + 30);
    }

    #[test]
    fn spans_nest_and_fold_under_the_open_phase() {
        let perf = Perf::on();
        perf.phase_mark("compute", 0);
        {
            let _k = perf.span("kernel:srad1");
            busy_wait_ns(100_000);
            {
                let _t = perf.span("translate");
                busy_wait_ns(100_000);
            }
        }
        perf.run_end(1);
        let d = perf.take();
        let paths: Vec<&str> = d.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            ["compute;kernel:srad1", "compute;kernel:srad1;translate"]
        );
        let outer = &d.spans[0];
        let inner = &d.spans[1];
        assert!(outer.total_ns >= inner.total_ns);
        // Exclusive time excludes the nested child.
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        assert_eq!(inner.self_ns, inner.total_ns);
    }

    #[test]
    fn spans_outside_any_phase_root_at_run() {
        let perf = Perf::on();
        {
            let _g = perf.span("setup");
        }
        let d = perf.take();
        assert_eq!(d.spans[0].path, "run;setup");
    }

    #[test]
    fn take_leaves_profiler_armed_with_fresh_window() {
        let perf = Perf::on();
        perf.count(Ctr::Memcpys, 7);
        let first = perf.take();
        assert_eq!(first.counter("cuda.memcpys"), 7);
        let second = perf.take();
        assert_eq!(second.counter("cuda.memcpys"), 0);
        assert!(perf.is_on());
    }

    #[test]
    fn multiple_runs_sum_virtual_time() {
        let perf = Perf::on();
        perf.phase_mark("compute", 0);
        perf.run_end(100);
        perf.phase_mark("compute", 0);
        perf.run_end(250);
        let d = perf.take();
        assert_eq!(d.runs, 2);
        assert_eq!(d.sim_total_ns, 350);
        assert_eq!(d.phases[0].count, 2);
    }

    #[test]
    fn drain_closes_dangling_spans_and_phase() {
        let perf = Perf::on();
        perf.phase_mark("compute", 0);
        let g = perf.span("kernel:left-open");
        let d = perf.take();
        drop(g); // guard after drain: folds into the fresh window, harmless
        assert_eq!(d.spans.len(), 1);
        assert_eq!(d.phases.len(), 1);
    }
}
