//! Host-side probes: peak RSS and the civil date. Wall-clock reads are
//! sanctioned here and nowhere else in the workspace (see the crate docs
//! and the `no-wall-clock` audit rule's gh-perf exemption).

use std::time::{SystemTime, UNIX_EPOCH};

/// Peak resident set size of this process in bytes, from
/// `/proc/self/status` `VmHWM`. Returns 0 on platforms without procfs —
/// callers treat 0 as "unknown", never as a measurement.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    parse_vm_hwm(&status).unwrap_or(0)
}

/// Extracts `VmHWM:  <n> kB` from a `/proc/self/status` dump.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|n| n.parse().ok())?;
    Some(kib * 1024)
}

/// Today's civil date as `YYYY-MM-DD` (UTC), for `BENCH_<date>.json`
/// file names. Falls back to `1970-01-01` if the host clock is broken.
pub fn host_date() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to (year, month, day), Howard Hinnant's civil
/// algorithm (proleptic Gregorian).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tgrace-mem\nVmHWM:\t  123456 kB\nVmRSS:\t  1 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(123_456 * 1024));
    }

    #[test]
    fn missing_vm_hwm_is_none() {
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn civil_epoch_and_leap_days() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        // 2000-02-29 is day 11016 since the epoch.
        assert_eq!(civil_from_days(11_016), (2000, 2, 29));
        // 2026-08-08 is day 20673.
        assert_eq!(civil_from_days(20_673), (2026, 8, 8));
    }

    #[test]
    fn host_date_is_well_formed() {
        let d = host_date();
        assert_eq!(d.len(), 10, "{d}");
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        // On Linux this should report at least one page; elsewhere 0.
        let rss = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 4096, "got {rss}");
        }
    }
}
